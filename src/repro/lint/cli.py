"""``repro lint`` — the command-line front end.

Examples::

    repro lint src tests                     # config-driven baseline, text
    repro lint src --format json             # machine-readable report
    repro lint src tests --no-baseline       # show everything, incl. baselined
    repro lint src tests --write-baseline    # (re)capture + prune report
    repro lint --changed                     # only git-touched files, whole
                                             #   program graph from cache
    repro lint src --readiness               # per-driver ready/blocked gate
    repro lint src --effects mrbc_engine     # inferred effect summary
    repro lint src --sarif lint.sarif        # SARIF 2.1.0 artifact
    repro lint --list-rules

Exit status: 0 when no *new* findings remain after pragma and baseline
suppression, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.lint import dataflow
from repro.lint.baseline import Baseline
from repro.lint.config import find_project_root, load_config
from repro.lint.rules import RULES
from repro.lint.runner import (
    LintCache,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.sarif import write_sarif


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Domain-aware static analysis: determinism (RL1xx), CONGEST "
            "protocol conformance (RL2xx), delayed-sync safety (RL3xx), "
            "obs/resilience hygiene (RL4xx), interprocedural "
            "vectorization-readiness (RL5xx) and parallel-safety (RL6xx)."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file suppressing pre-existing findings "
            "(default: [tool.repro-lint].baseline if it exists)"
        ),
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write all current findings to the baseline file (pruning and "
            "reporting stale entries) and exit 0"
        ),
    )
    p.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only files git reports as changed (vs HEAD, plus "
            "untracked); the whole-program call graph still covers the "
            "configured graph roots, served from the incremental cache"
        ),
    )
    p.add_argument(
        "--effects",
        metavar="FUNCTION",
        default=None,
        help=(
            "explain mode: print the inferred effect summary, call "
            "neighborhood, and finding chains for FUNCTION, then exit"
        ),
    )
    p.add_argument(
        "--sarif",
        metavar="FILE",
        default=None,
        help="additionally write the report as a SARIF 2.1.0 document",
    )
    p.add_argument(
        "--readiness",
        action="store_true",
        help=(
            "print the per-driver vectorization/parallel-safety readiness "
            "report (always included in --format json)"
        ),
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the incremental cache; analyze every file cold",
    )
    p.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run exclusively (e.g. RL101,RL203)",
    )
    p.add_argument(
        "--disable",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to skip",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule registry and exit"
    )
    return p


def _split_codes(raw: str | None) -> set[str]:
    if not raw:
        return set()
    return {tok.strip() for tok in raw.split(",") if tok.strip()}


def _changed_files(root: Path) -> list[Path] | None:
    """Python files git reports as modified vs HEAD, plus untracked."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD", "--"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names = {
        line.strip()
        for out in (diff.stdout, untracked.stdout)
        for line in out.splitlines()
        if line.strip()
    }
    return sorted(
        root / n for n in names if n.endswith(".py") and (root / n).is_file()
    )


def _report_baseline_prune(old: Baseline, new: Baseline) -> None:
    """Explain every entry --write-baseline dropped, and why."""
    pruned = {
        fp: entry for fp, entry in old.entries.items() if fp not in new.entries
    }
    if not pruned:
        return
    print(f"repro lint: pruned {len(pruned)} stale baseline entr(y/ies):")
    for fp in sorted(pruned):
        entry = pruned[fp]
        code = str(entry.get("code", "?"))
        reason = (
            "rule retired" if code not in RULES else "finding fixed or renamed"
        )
        print(f"  - {fp}  {code} at {entry.get('where', '?')}  ({reason})")


def lint_main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            scope = "  [whole-program]" if rule.scope == "program" else ""
            print(
                f"{code}  {rule.severity:<7}  {rule.name}: {rule.summary}{scope}"
            )
        return 0

    targets = args.paths or ["src"]
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    root = find_project_root(targets[0])
    cfg = load_config(root)

    enabled = cfg.enabled_codes(list(RULES))
    select = _split_codes(args.select)
    if select:
        enabled = {c for c in select if c in RULES}
    enabled -= _split_codes(args.disable)

    baseline_path = (
        Path(args.baseline) if args.baseline else cfg.baseline_path
    )
    cache = None if args.no_cache else LintCache.load(cfg.cache_path)
    graph_targets: list[str | Path] | None = None

    if args.changed:
        changed = _changed_files(root)
        if changed is None:
            print(
                "repro lint: --changed requires a git checkout",
                file=sys.stderr,
            )
            return 2
        graph_targets = [root / g for g in cfg.graph if (root / g).exists()]
        targets = [p for p in changed]
        if not targets:
            print("repro lint: no changed python files -- PASS")
            return 0

    if args.write_baseline:
        result = run_lint(
            targets,
            project_root=root,
            enabled=enabled,
            cache=cache,
            graph_targets=graph_targets,
        )
        new = Baseline.from_findings(result.active)
        if baseline_path.is_file():
            _report_baseline_prune(Baseline.load(baseline_path), new)
        new.dump(baseline_path)
        print(
            f"repro lint: wrote {len(result.active)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    baseline = None
    if not args.no_baseline:
        if args.baseline and not baseline_path.is_file():
            print(
                f"repro lint: baseline not found: {baseline_path}",
                file=sys.stderr,
            )
            return 2
        if baseline_path.is_file():
            baseline = Baseline.load(baseline_path)

    result = run_lint(
        targets,
        project_root=root,
        enabled=enabled,
        baseline=baseline,
        cache=cache,
        graph_targets=graph_targets,
    )

    if args.effects:
        report = dataflow.explain_effects(
            result.program, args.effects, result.active
        )
        if report is None:
            print(
                f"repro lint: no function named '{args.effects}' in the "
                "analyzed set",
                file=sys.stderr,
            )
            return 2
        print(report, end="")
        return 0

    if args.sarif:
        write_sarif(args.sarif, result.active, result.suppressed)

    if args.format == "json":
        render_json(result)
    else:
        render_text(result)
        if args.readiness:
            dataflow.render_readiness(result.readiness, sys.stdout)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(lint_main())
