"""Per-vertex algorithm protocol for the CONGEST simulator.

A distributed algorithm is written as a :class:`VertexProgram` subclass;
the network instantiates one program object per vertex.  The round
structure mirrors the paper's Algorithm 3:

1. ``compute_sends(r)`` — called at the beginning of round ``r`` with the
   vertex's state ``L_v^r``; returns the messages to send this round.
2. ``handle_message(r, sender, payload)`` — called once per received value
   during round ``r``; state updates here become part of ``L_v^{r+1}``.
3. ``end_of_round(r)`` — optional hook after all deliveries of round ``r``.

Vertices communicate over the *undirected* communication network ``UG``;
``ctx.channel_neighbors`` lists every vertex sharing a channel with this
one, while ``ctx.out_neighbors`` / ``ctx.in_neighbors`` expose the directed
graph structure the algorithm reasons about.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

#: Broadcast sentinel: send the payload on every incident channel.
BROADCAST = -1


@dataclass(frozen=True)
class VertexContext:
    """Static per-vertex information handed to a program at setup time."""

    vid: int
    num_vertices_hint: int | None
    out_neighbors: np.ndarray
    in_neighbors: np.ndarray
    channel_neighbors: np.ndarray


class VertexProgram(ABC):
    """Base class for CONGEST vertex algorithms."""

    ctx: VertexContext

    def setup(self, ctx: VertexContext) -> None:
        """Bind the vertex context; override to initialize state (call super)."""
        self.ctx = ctx

    @abstractmethod
    def compute_sends(self, rnd: int) -> list[tuple[int, tuple[Any, ...]]]:
        """Return ``(target, payload)`` pairs to send in round ``rnd``.

        ``target`` is a channel neighbor's vertex id, or :data:`BROADCAST`
        to send the payload on every incident channel.  Payloads are tagged
        tuples (see :mod:`repro.congest.messages`).
        """

    @abstractmethod
    def handle_message(self, rnd: int, sender: int, payload: tuple[Any, ...]) -> None:
        """Process one received value during round ``rnd``."""

    def end_of_round(self, rnd: int) -> None:
        """Hook invoked after all of round ``rnd``'s deliveries (optional)."""

    def has_pending_work(self, rnd: int) -> bool:
        """Whether this vertex may still send in some round ``> rnd``.

        The network's global-termination detector (paper Lemma 8: "the
        distributed system can detect global termination") stops the run at
        the end of a round in which no messages were sent and no vertex
        reports pending work.  The default is conservative.
        """
        return True

    def is_stopped(self) -> bool:
        """Whether this vertex has executed a protocol-level "stop".

        Algorithm 4 lets vertices stop once they learn the diameter; the
        network halts when every vertex has stopped.
        """
        return False
