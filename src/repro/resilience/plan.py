"""Deterministic seeded fault plans.

A :class:`FaultPlan` is a named, seeded list of :class:`FaultSpec`
entries.  Message-scope specs (``drop``, ``duplicate``, ``reorder``,
``corrupt``) fire per remote channel per synchronization with probability
``rate``; host-scope specs (``stall``, ``crash``) fire once when the
global round counter reaches ``round``.  All randomness comes from one
:class:`numpy.random.Generator` seeded by the plan, and the engines are
deterministic, so two runs under an identical plan inject *exactly* the
same faults — the property the reproducibility tests pin down.

Plans serialize to/from plain dicts (and therefore JSON files), so a CI
matrix or an experiment config can name its fault scenario precisely.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Iterable

#: Message-scope fault kinds (perturb one channel's aggregated message).
MESSAGE_KINDS = ("drop", "duplicate", "reorder", "corrupt")
#: Host-scope fault kinds (perturb one simulated host).
HOST_KINDS = ("stall", "crash")
ALL_KINDS = MESSAGE_KINDS + HOST_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One fault source inside a plan.

    Attributes
    ----------
    kind:
        One of :data:`ALL_KINDS`.
    rate:
        Per-channel firing probability for message-scope kinds.
    host, round:
        Target host and trigger round for host-scope kinds; the spec
        fires at the first synchronization whose global round index is
        ``>= round`` and is then consumed.
    duration:
        Stall length in rounds (``stall`` only).
    max_events:
        Cap on total injections from this spec (``None`` = unlimited).
        Retransmissions draw from the same budget, so a capped spec
        guarantees bounded-recovery convergence.
    """

    kind: str
    rate: float = 0.0
    host: int | None = None
    round: int | None = None
    duration: int = 1
    max_events: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in MESSAGE_KINDS and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.kind in HOST_KINDS:
            if self.host is None or self.round is None:
                raise ValueError(f"{self.kind} spec needs host= and round=")
            if self.duration < 1:
                raise ValueError("duration must be >= 1")

    @property
    def is_message_scope(self) -> bool:
        return self.kind in MESSAGE_KINDS

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded fault scenario."""

    name: str
    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def message_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.is_message_scope)

    @property
    def host_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if not s.is_message_scope)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same scenario under a different random stream."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, rec: dict[str, Any]) -> "FaultPlan":
        specs = tuple(FaultSpec(**s) for s in rec.get("specs", ()))
        return cls(name=rec["name"], seed=int(rec.get("seed", 0)), specs=specs)


def _plans(entries: Iterable[FaultPlan]) -> dict[str, FaultPlan]:
    return {p.name: p for p in entries}


#: The named scenarios the ``repro faults`` CLI and the CI matrix run.
#: Rates are tuned for the library-scale suite graphs: high enough that a
#: run always materializes several faults, capped so bounded retransmit
#: recovery always converges.
DEFAULT_PLANS: dict[str, FaultPlan] = _plans(
    [
        FaultPlan(
            "drop", seed=0x5EED_D07, specs=(FaultSpec("drop", rate=0.08, max_events=6),)
        ),
        FaultPlan(
            "duplicate",
            seed=0x5EED_D09,
            specs=(FaultSpec("duplicate", rate=0.08, max_events=6),),
        ),
        FaultPlan(
            "reorder",
            seed=0x5EED_D11,
            specs=(FaultSpec("reorder", rate=0.10, max_events=8),),
        ),
        FaultPlan(
            "corrupt",
            seed=0x5EED_D13,
            specs=(FaultSpec("corrupt", rate=0.08, max_events=6),),
        ),
        FaultPlan(
            "stall",
            seed=0x5EED_D17,
            specs=(FaultSpec("stall", host=1, round=3, duration=2),),
        ),
        FaultPlan(
            "crash",
            seed=0x5EED_D19,
            specs=(FaultSpec("crash", host=1, round=4),),
        ),
    ]
)


def get_plan(name: str, seed: int | None = None) -> FaultPlan:
    """Look up a default plan by name, optionally reseeded."""
    try:
        plan = DEFAULT_PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault plan {name!r} "
            f"(defaults: {', '.join(sorted(DEFAULT_PLANS))})"
        ) from None
    return plan if seed is None else plan.with_seed(seed)
