"""Shared infrastructure for the paper-reproduction benchmarks.

Scale mapping (see DESIGN.md §2): the paper's graphs are ~10³ larger and
its cluster up to 256 hosts; here every quantity is scaled down together.

=====================  ==========  ===========
quantity               paper       this harness
=====================  ==========  ===========
hosts (small inputs)   1 / 32      1 / 4
hosts (large inputs)   64-256      4 / 8 / 16
batch size k (Fig. 1)  32/64/128   8 / 16 / 32
default batch size     32 / 64     8 / 16
=====================  ==========  ===========

Sampled source counts come from each suite entry (Table 1's "# of
Sources", scaled).  The metric of record is the *simulated* cluster time
from :class:`repro.cluster.model.ClusterModel` — deterministic and
host-independent; pytest-benchmark's wall-clock numbers measure the local
simulation cost only.

Each benchmark module appends rows to a session collector; the collector
prints every reproduced table/figure at the end of the run and writes it
under ``benchmarks/results/``.
"""

from __future__ import annotations

import atexit
import os
from collections import defaultdict

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.baselines.mfbc import mfbc
from repro.baselines.sbbc import sbbc_engine
from repro.cluster.model import ClusterModel
from repro.core.mrbc import mrbc_engine
from repro.core.sampling import sample_sources
from repro.engine.partition import partition_graph
from repro.graph.suite import SUITE, load_suite_graph

#: Scaled host counts.
SMALL_HOSTS = 4  # paper: 32
LARGE_HOSTS = 8  # paper: 256 (Fig. 1 / Fig. 2b context)
SCALING_HOSTS = (4, 8, 16)  # paper: 64 / 128 / 256

#: Scaled MRBC batch sizes.
DEFAULT_BATCH_SMALL = 8  # paper: 32
DEFAULT_BATCH_LARGE = 16  # paper: 64
FIG1_BATCHES = (8, 16, 32)  # paper: 32 / 64 / 128

SOURCE_SEED = 2019

_partition_cache: dict[tuple[str, int], object] = {}
_result_cache: dict[tuple, object] = {}


def hosts_for(name: str) -> int:
    """Scaled "at scale" host count for a suite graph."""
    return SMALL_HOSTS if SUITE[name].size_class == "small" else LARGE_HOSTS


def batch_for(name: str) -> int:
    """Scaled default MRBC batch size for a suite graph."""
    return (
        DEFAULT_BATCH_SMALL
        if SUITE[name].size_class == "small"
        else DEFAULT_BATCH_LARGE
    )


def sources_for(name: str) -> np.ndarray:
    """The sampled source chunk for a suite graph (same for every algorithm,
    as §5.1 requires)."""
    g = load_suite_graph(name)
    k = min(SUITE[name].num_sources, g.num_vertices)
    return sample_sources(g, k, mode="contiguous", seed=SOURCE_SEED)


def partition_for(name: str, num_hosts: int):
    """Cached Cartesian vertex-cut partition (the paper's policy)."""
    key = (name, num_hosts)
    if key not in _partition_cache:
        _partition_cache[key] = partition_graph(
            load_suite_graph(name), num_hosts, "cvc"
        )
    return _partition_cache[key]


def run_mrbc(name: str, num_hosts: int, batch_size: int | None = None,
             num_sources: int | None = None):
    """Cached MRBC engine run on a suite graph."""
    batch_size = batch_size or batch_for(name)
    key = ("mrbc", name, num_hosts, batch_size, num_sources)
    if key not in _result_cache:
        srcs = sources_for(name)
        if num_sources is not None:
            srcs = srcs[:num_sources]
        _result_cache[key] = mrbc_engine(
            load_suite_graph(name),
            sources=srcs,
            batch_size=batch_size,
            partition=partition_for(name, num_hosts),
        )
    return _result_cache[key]


def run_sbbc(name: str, num_hosts: int, num_sources: int | None = None):
    """Cached SBBC engine run on a suite graph."""
    key = ("sbbc", name, num_hosts, num_sources)
    if key not in _result_cache:
        srcs = sources_for(name)
        if num_sources is not None:
            srcs = srcs[:num_sources]
        _result_cache[key] = sbbc_engine(
            load_suite_graph(name),
            sources=srcs,
            partition=partition_for(name, num_hosts),
        )
    return _result_cache[key]


def run_mfbc(name: str, num_hosts: int, batch_size: int | None = None):
    """Cached MFBC run on a suite graph."""
    batch_size = batch_size or batch_for(name)
    key = ("mfbc", name, num_hosts, batch_size)
    if key not in _result_cache:
        _result_cache[key] = mfbc(
            load_suite_graph(name),
            sources=sources_for(name),
            batch_size=batch_size,
            num_hosts=num_hosts,
        )
    return _result_cache[key]


def simulated(run, num_hosts: int):
    """Simulated time breakdown for an engine run."""
    return ClusterModel(num_hosts).time_run(run)


# -- table collector -----------------------------------------------------------


class TableCollector:
    """Accumulates rows per reproduced artifact and emits them at exit."""

    def __init__(self) -> None:
        self.tables: dict[str, list[list[object]]] = defaultdict(list)
        self.headers: dict[str, list[str]] = {}

    def add(self, table: str, headers: list[str], row: list[object]) -> None:
        self.headers[table] = headers
        self.tables[table].append(row)

    def render(self) -> str:
        parts = []
        for name in self.tables:
            parts.append(
                format_table(self.headers[name], self.tables[name], title=name)
            )
        return "\n\n".join(parts)

    def flush(self) -> None:
        if not self.tables:
            return
        text = self.render()
        print("\n\n" + "=" * 72)
        print("REPRODUCED PAPER ARTIFACTS")
        print("=" * 72)
        print(text)
        outdir = os.path.join(os.path.dirname(__file__), "results")
        os.makedirs(outdir, exist_ok=True)
        with open(os.path.join(outdir, "tables.txt"), "w") as fh:
            fh.write(text + "\n")
        # One CSV per artifact, as the paper's artifact appendix ships.
        from repro.analysis.export import export_tables

        export_tables(outdir, dict(self.tables), dict(self.headers))


COLLECTOR = TableCollector()
atexit.register(COLLECTOR.flush)


@pytest.fixture(scope="session")
def collector() -> TableCollector:
    return COLLECTOR
