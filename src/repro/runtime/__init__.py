"""The unified superstep runtime (see ``docs/ARCHITECTURE.md``).

Every driver in the repository — MRBC, SBBC, the general vertex
programs, the reusable BSP driver, and the CONGEST simulator — runs its
rounds through one :class:`SuperstepRuntime` over one
:class:`MessagePlane` (:class:`GluonPlane` for the host-partitioned
engine, :class:`CongestPlane` for the per-channel model).  The runtime
owns the round loop and its termination detectors, opens the per-round
statistics records, creates the :class:`~repro.engine.stats.EngineRun`
manifest, attaches the resilience context once, and provides the two
crash-recovery policies (whole-unit restart, checkpointed resume).

:mod:`repro.runtime.errors` is the shared error hierarchy; the historic
names (``ChannelCapacityError``, ``NotAChannelError``) remain importable
from their old homes as aliases.
"""

from repro.runtime.errors import (
    ChannelCapacityError,
    NotAChannelError,
    PartitionMismatchError,
    ReproRuntimeError,
    UnknownBroadcastTargetError,
)
from repro.runtime.plane import (
    CongestPlane,
    GluonPlane,
    MessagePlane,
    resolve_partition,
)
from repro.runtime.superstep import CheckpointPolicy, SuperstepRuntime

__all__ = [
    "ChannelCapacityError",
    "CheckpointPolicy",
    "CongestPlane",
    "GluonPlane",
    "MessagePlane",
    "NotAChannelError",
    "PartitionMismatchError",
    "ReproRuntimeError",
    "SuperstepRuntime",
    "UnknownBroadcastTargetError",
    "resolve_partition",
]
