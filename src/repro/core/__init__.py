"""The paper's primary contribution: Min-Rounds BC and its building blocks.

Two complete implementations are provided:

- **CONGEST** (:mod:`repro.core.apsp`, :mod:`repro.core.finalizer`,
  :mod:`repro.core.accumulation`, :mod:`repro.core.mrbc_congest`) — a
  faithful per-vertex implementation of Algorithms 3/4/5 used to validate
  Theorem 1's round and message bounds.
- **Engine** (:mod:`repro.core.mrbc`) — the D-Galois-style implementation
  of §4 with the batched ``k``-source execution, flat-map data structure
  and delayed-synchronization optimization, running on
  :mod:`repro.engine`.

:mod:`repro.core.sampling` implements the source-sampling approximation
(Bader et al.) that the paper's evaluation uses, and
:mod:`repro.core.batching` splits sampled sources into size-``k`` batches.
"""

from repro.core.accumulation import AccumulationProgram
from repro.core.approx import ApproxResult, adaptive_bc_of_vertex, approximate_bc
from repro.core.apsp import APSPVertexState, DirectedAPSPProgram
from repro.core.autotune import TuneResult, tune_batch_size
from repro.core.batching import iter_batches
from repro.core.kssp import KSSPResult, kssp
from repro.core.lenzen_peleg import LPResult, lenzen_peleg_apsp
from repro.core.mrbc import MRBCEngineResult, mrbc_engine
from repro.core.mrbc_congest import MRBCResult, directed_apsp, mrbc_congest
from repro.core.sampling import sample_sources
from repro.core.undirected import undirected_bc

__all__ = [
    "APSPVertexState",
    "AccumulationProgram",
    "ApproxResult",
    "DirectedAPSPProgram",
    "MRBCEngineResult",
    "MRBCResult",
    "TuneResult",
    "adaptive_bc_of_vertex",
    "approximate_bc",
    "directed_apsp",
    "KSSPResult",
    "LPResult",
    "iter_batches",
    "kssp",
    "lenzen_peleg_apsp",
    "mrbc_congest",
    "mrbc_engine",
    "sample_sources",
    "tune_batch_size",
    "undirected_bc",
]
