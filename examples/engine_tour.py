"""Engine tour: the simulated D-Galois substrate beyond betweenness.

Walks the distributed machinery directly: partitions a graph under each
policy, inspects the proxy structure, runs the three general vertex
programs (BFS, weakly connected components, PageRank) plus k-SSP on the
same partition, and compares their communication profiles — the kind of
exploration a systems reader does before trusting the BC numbers.

Run:  python examples/engine_tour.py
"""

import numpy as np

from repro import ClusterModel, partition_graph
from repro.core.kssp import kssp
from repro.engine.programs import bfs_engine, pagerank_engine, wcc_engine
from repro.graph import web_crawl_like

HOSTS = 8


def main() -> None:
    g = web_crawl_like(core_n=700, tail_total=300, avg_tail_len=20, seed=33)
    print(f"graph: {g}\n")

    # 1. Partitioning policies and their replication factors.
    print("partitioning policies (replication = Σ proxies / n):")
    for policy in ("cvc", "oec", "iec", "random"):
        pg = partition_graph(g, HOSTS, policy)
        proxies = sum(p.num_local for p in pg.parts)
        edges_max = max(p.num_edges for p in pg.parts)
        print(f"  {policy:>6}: replication {proxies / g.num_vertices:.2f}, "
              f"max edges/host {edges_max}")

    pg = partition_graph(g, HOSTS, "cvc")
    model = ClusterModel(HOSTS)

    # 2. General vertex programs on the shared partition.
    print("\nvertex programs on the CVC partition:")
    rows = []
    bfs = bfs_engine(g, source=0, partition=pg)
    rows.append(("BFS", bfs.rounds, bfs.run.total_bytes,
                 model.time_run(bfs.run).total))
    wcc = wcc_engine(g, partition=pg)
    rows.append(("WCC", wcc.rounds, wcc.run.total_bytes,
                 model.time_run(wcc.run).total))
    pr = pagerank_engine(g, tol=1e-8, partition=pg)
    rows.append(("PageRank", pr.rounds, pr.run.total_bytes,
                 model.time_run(pr.run).total))
    ks = kssp(g, list(range(16)), method="engine", partition=pg)
    rows.append(("k-SSP (k=16)", ks.rounds, ks.messages, None))
    for name, rounds, vol, t in rows:
        t_txt = f"{t:.4f} s" if t is not None else "-"
        print(f"  {name:>12}: {rounds:>5} rounds, {vol:>9} B/items, {t_txt}")

    # 3. Cross-checks.
    n_components = len(set(wcc.values.tolist()))
    isolated = int((g.out_degrees() + g.in_degrees() == 0).sum())
    print(f"\nweak components: {n_components} "
          f"({isolated} of them isolated RMAT vertices)")
    print(f"PageRank mass: {pr.values.sum():.6f} (must be 1)")
    top = np.argsort(pr.values)[::-1][:3]
    print("highest-PageRank vertices:", top.tolist())
    reach = int((bfs.values >= 0).sum())
    print(f"BFS from 0 reaches {reach}/{g.num_vertices} vertices, "
          f"eccentricity {bfs.values.max()}")


if __name__ == "__main__":
    main()
