"""Checkpoint/restart support for the BSP drivers.

A checkpoint is ``(meta, arrays)``: a JSON-able metadata dict plus a dict
of NumPy arrays.  The :class:`CheckpointStore` keeps snapshots in memory
by default and persists them through :mod:`repro.engine.persist` (the
``.npz`` layer the run statistics already use) when given a directory —
the artifact-appendix workflow extended to mid-run state.

The MRBC-specific snapshot helpers capture exactly the master-authorita-
tive state the backward pass reads (``L_v`` best labels, fire timestamps
``τ``, per-host finalized ``(d, σ)`` arrays), so a crash between the
forward and backward phases replays only the backward rounds and the
recovered BC is bit-identical to a fault-free run.
"""

from __future__ import annotations

import copy
import os
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mrbc import _BatchExecutor


class CheckpointStore:
    """Tagged snapshot storage, in memory or on disk via the persist layer."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = os.fspath(directory) if directory is not None else None
        self._mem: dict[str, tuple[dict[str, Any], dict[str, np.ndarray]]] = {}
        self._order: list[str] = []

    def _path(self, tag: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{tag}.ckpt.npz")

    def save(
        self, tag: str, meta: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> None:
        """Store one snapshot under ``tag`` (overwrites a previous one)."""
        if tag not in self._order:
            self._order.append(tag)
        if self.directory is not None:
            from repro.engine.persist import save_checkpoint

            os.makedirs(self.directory, exist_ok=True)
            save_checkpoint(self._path(tag), meta, arrays)
        else:
            self._mem[tag] = (
                copy.deepcopy(meta),
                {k: np.array(v, copy=True) for k, v in arrays.items()},
            )

    def load(self, tag: str) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
        """Retrieve the snapshot stored under ``tag`` (KeyError if absent)."""
        if self.directory is not None:
            from repro.engine.persist import load_checkpoint

            path = self._path(tag)
            if not os.path.exists(path):
                raise KeyError(f"no checkpoint {tag!r} in {self.directory}")
            return load_checkpoint(path)
        if tag not in self._mem:
            raise KeyError(f"no checkpoint {tag!r}")
        meta, arrays = self._mem[tag]
        return copy.deepcopy(meta), {k: v.copy() for k, v in arrays.items()}

    def tags(self) -> list[str]:
        """Tags in save order (first save wins the position)."""
        return list(self._order)

    def latest(self) -> str | None:
        return self._order[-1] if self._order else None


# -- MRBC batch-executor snapshots -----------------------------------------------


def mrbc_forward_snapshot(
    ex: "_BatchExecutor",
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Capture a batch executor's post-forward state for backward replay."""
    masters: dict[str, Any] = {}
    for gid, ms in ex.masters.items():
        masters[str(gid)] = {
            "entries": [[int(d), int(si)] for d, si in ms.entries],
            "best": {str(si): [int(d), float(sg)] for si, (d, sg) in ms.best.items()},
            "tau": {str(si): int(t) for si, t in ms.tau.items()},
            "sent_prefix": int(ms.sent_prefix),
            "contrib": {
                str(si): {str(h): [int(d), float(sg)] for h, (d, sg) in per.items()}
                for si, per in ms.contrib.items()
            },
        }
    meta = {
        "kind": "mrbc-forward",
        "batch": [int(s) for s in ex.batch.tolist()],
        "masters": masters,
    }
    arrays: dict[str, np.ndarray] = {}
    for h, st in enumerate(ex.hosts):
        # Checkpoints deliberately capture proxies *as-is*, provisional or
        # final — restore puts back the identical bytes, so the delayed-sync
        # contract is preserved across a recovery, not re-established.
        arrays[f"fin_dist_{h}"] = st.fin_dist.copy()  # repro-lint: disable=RL301
        arrays[f"fin_sigma_{h}"] = st.fin_sigma.copy()  # repro-lint: disable=RL301
    return meta, arrays


def restore_mrbc_forward(
    ex: "_BatchExecutor",
    meta: dict[str, Any],
    arrays: dict[str, np.ndarray],
) -> None:
    """Load a forward snapshot into a freshly built batch executor."""
    from repro.core.mrbc import MasterVertexState

    if meta.get("kind") != "mrbc-forward":
        raise ValueError(f"not an MRBC forward checkpoint: {meta.get('kind')!r}")
    if [int(s) for s in ex.batch.tolist()] != list(meta["batch"]):
        raise ValueError("checkpoint was taken for a different source batch")
    masters: dict[int, MasterVertexState] = {}
    for gid_s, rec in meta["masters"].items():
        ms = MasterVertexState()
        ms.entries = [(int(d), int(si)) for d, si in rec["entries"]]
        ms.best = {int(si): (int(d), float(sg)) for si, (d, sg) in rec["best"].items()}
        ms.tau = {int(si): int(t) for si, t in rec["tau"].items()}
        ms.sent_prefix = int(rec["sent_prefix"])
        ms.contrib = {
            int(si): {int(h): (int(d), float(sg)) for h, (d, sg) in per.items()}
            for si, per in rec["contrib"].items()
        }
        masters[int(gid_s)] = ms
    ex.masters = masters
    ex.delta = {}
    for h, st in enumerate(ex.hosts):
        st.fin_dist[:] = arrays[f"fin_dist_{h}"]
        st.fin_sigma[:] = arrays[f"fin_sigma_{h}"]
