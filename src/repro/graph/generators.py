"""Seeded graph generators standing in for the paper's inputs.

The paper's test suite (Table 1) mixes social networks, web-crawls, random
power-law graphs, and a road network.  At library scale we reproduce each
*shape* with a generator:

- :func:`rmat` — R-MAT recursive power-law generator (stands in for rmat24
  and the social networks).
- :func:`kronecker` — stochastic Kronecker graphs (stands in for kron30).
- :func:`web_crawl_like` — power-law core with attached long chains, giving
  a scale-free graph with *non-trivial diameter* — the defining feature of
  gsh15/clueweb12 that makes MRBC win (paper §5.3: "real world web-crawls
  ... have non-trivial diameters (due to long tails)").
- :func:`grid_road` — 2-D lattice with sparse shortcuts (stands in for
  road-europe: bounded degree, very large diameter).
- :func:`erdos_renyi`, :func:`small_world`, :func:`path_graph`,
  :func:`star_graph` — generic shapes for tests.

All generators take an integer seed and are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.prng import make_rng


def _finish(n: int, src: np.ndarray, dst: np.ndarray) -> DiGraph:
    """Drop self-loops and build the (deduplicating) DiGraph."""
    keep = src != dst
    return DiGraph(n, src[keep], dst[keep])


def from_spec(spec: str, seed: int | None = None) -> DiGraph:
    """Build a graph from a ``kind:arg:arg`` CLI/bench spec.

    Understood kinds: ``rmat:scale:ef``, ``grid:rows:cols``,
    ``webcrawl:core:tails``, ``er:n:avg_degree``.  Deterministic for a
    given ``(spec, seed)`` — ``seed=None`` uses the library default seed,
    never OS entropy — which is what lets the bench suite pin its inputs.
    """
    kind, *args = spec.split(":")
    if kind == "rmat":
        return rmat(*[int(a) for a in args], seed=seed)
    if kind == "grid":
        return grid_road(*[int(a) for a in args], seed=seed)
    if kind == "webcrawl":
        return web_crawl_like(*[int(a) for a in args], seed=seed)
    if kind == "er":
        return erdos_renyi(int(args[0]), float(args[1]), seed=seed)
    raise ValueError(
        f"unknown generator kind {kind!r} (options: rmat, grid, webcrawl, er)"
    )


def erdos_renyi(
    n: int, avg_degree: float, seed: int | None = None, symmetric: bool = False
) -> DiGraph:
    """G(n, m)-style random digraph with ``round(n * avg_degree)`` edge draws."""
    rng = make_rng(seed)
    m = int(round(n * avg_degree))
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return _finish(n, src, dst)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = None,
) -> DiGraph:
    """R-MAT generator (Chakrabarti et al.): ``n = 2**scale`` vertices.

    Each edge picks one quadrant per bit level with probabilities
    ``(a, b, c, d)`` where ``d = 1 - a - b - c``.  The defaults are the
    Graph500 parameters, producing a skewed power-law degree distribution
    like the paper's rmat24 input.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("require 0 < a+b+c < 1")
    rng = make_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    abc = a + b + c
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        r = rng.random(m)
        # quadrant: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1)
        right = ((r >= a) & (r < ab)) | (r >= abc)
        down = r >= ab
        dst += right
        src += down
    return _finish(n, src, dst)


def kronecker(
    scale: int,
    edge_factor: int = 16,
    initiator: np.ndarray | None = None,
    seed: int | None = None,
) -> DiGraph:
    """Stochastic Kronecker graph in the style of the paper's kron30 input.

    Sampling a stochastic Kronecker edge is equivalent to R-MAT sampling
    with per-level probabilities given by the (normalized) 2x2 initiator
    matrix; the default initiator is the Graph500/Leskovec one.
    """
    if initiator is None:
        initiator = np.array([[0.57, 0.19], [0.19, 0.05]])
    initiator = np.asarray(initiator, dtype=np.float64)
    if initiator.shape != (2, 2) or np.any(initiator < 0):
        raise ValueError("initiator must be a non-negative 2x2 matrix")
    p = initiator / initiator.sum()
    return rmat(
        scale,
        edge_factor,
        a=float(p[0, 0]),
        b=float(p[0, 1]),
        c=float(p[1, 0]),
        seed=seed,
    )


def web_crawl_like(
    core_n: int,
    tail_total: int,
    avg_tail_len: int = 20,
    edge_factor: int = 8,
    seed: int | None = None,
) -> DiGraph:
    """Power-law core plus long directed chains ("tails").

    ``core_n`` vertices form an R-MAT-like scale-free core; ``tail_total``
    additional vertices are arranged into bidirectional chains of geometric
    length (mean ``avg_tail_len``) hanging off random core vertices.  The
    result has a power-law core *and* an estimated diameter on the order of
    the longest tail — reproducing the gsh15/clueweb12 structure where
    long tails give web-crawls their non-trivial diameter.
    """
    if core_n < 2 or tail_total < 0:
        raise ValueError("need core_n >= 2 and tail_total >= 0")
    rng = make_rng(seed)
    scale = max(1, int(np.ceil(np.log2(core_n))))
    core = rmat(scale, edge_factor, seed=int(rng.integers(2**31)))
    # Keep only the first core_n vertex ids of the RMAT graph, then append
    # tail vertices after them.
    csrc, cdst = core.edges()
    keep = (csrc < core_n) & (cdst < core_n)
    src_parts = [csrc[keep]]
    dst_parts = [cdst[keep]]

    next_id = core_n
    remaining = tail_total
    while remaining > 0:
        length = int(min(remaining, max(1, rng.geometric(1.0 / avg_tail_len))))
        anchor = int(rng.integers(0, core_n))
        chain = np.arange(next_id, next_id + length, dtype=np.int64)
        prev = np.concatenate([[anchor], chain[:-1]])
        # Bidirectional chain so tail vertices can reach the core and vice
        # versa; this is what stretches shortest-path distances.
        src_parts += [prev, chain]
        dst_parts += [chain, prev]
        next_id += length
        remaining -= length

    n = core_n + tail_total
    return _finish(n, np.concatenate(src_parts), np.concatenate(dst_parts))


def grid_road(
    rows: int,
    cols: int,
    diagonal_prob: float = 0.05,
    seed: int | None = None,
) -> DiGraph:
    """Road-network stand-in: a ``rows x cols`` bidirectional lattice.

    Every lattice edge appears in both directions (roads are mostly
    two-way); a fraction ``diagonal_prob`` of cells additionally get a
    diagonal shortcut.  Degree is bounded by 8 and the diameter is
    ``Θ(rows + cols)`` — the high-diameter, low-degree regime where the
    paper's road-europe input lives.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    rng = make_rng(seed)
    n = rows * cols
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []

    def _bidir(u: np.ndarray, v: np.ndarray) -> None:
        src_parts.append(u.ravel())
        dst_parts.append(v.ravel())
        src_parts.append(v.ravel())
        dst_parts.append(u.ravel())

    if cols > 1:
        _bidir(idx[:, :-1], idx[:, 1:])
    if rows > 1:
        _bidir(idx[:-1, :], idx[1:, :])
    if rows > 1 and cols > 1 and diagonal_prob > 0:
        mask = rng.random((rows - 1, cols - 1)) < diagonal_prob
        _bidir(idx[:-1, :-1][mask], idx[1:, 1:][mask])
    if not src_parts:
        return DiGraph(n, np.empty(0, np.int64), np.empty(0, np.int64))
    return _finish(n, np.concatenate(src_parts), np.concatenate(dst_parts))


def small_world(
    n: int, k: int = 4, rewire_prob: float = 0.1, seed: int | None = None
) -> DiGraph:
    """Watts–Strogatz-style ring lattice with random rewiring (symmetric)."""
    if k < 1 or k >= n:
        raise ValueError("require 1 <= k < n")
    rng = make_rng(seed)
    base = np.arange(n, dtype=np.int64)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for off in range(1, k + 1):
        dst = (base + off) % n
        rewired = rng.random(n) < rewire_prob
        dst = dst.copy()
        dst[rewired] = rng.integers(0, n, size=int(rewired.sum()))
        src_parts += [base, dst]
        dst_parts += [dst, base]
    return _finish(n, np.concatenate(src_parts), np.concatenate(dst_parts))


def path_graph(n: int, bidirectional: bool = True) -> DiGraph:
    """Simple path ``0 -> 1 -> ... -> n-1`` (optionally bidirectional)."""
    if n < 1:
        raise ValueError("need n >= 1")
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    if bidirectional:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return DiGraph(n, src, dst)


def star_graph(n: int, out: bool = True) -> DiGraph:
    """Star with hub 0; edges point outward if ``out`` else inward."""
    if n < 1:
        raise ValueError("need n >= 1")
    hub = np.zeros(n - 1, dtype=np.int64)
    leaves = np.arange(1, n, dtype=np.int64)
    if out:
        return DiGraph(n, hub, leaves)
    return DiGraph(n, leaves, hub)


def cycle_graph(n: int) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (strongly connected)."""
    if n < 2:
        raise ValueError("need n >= 2")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return DiGraph(n, src, dst)


def preferential_attachment(
    n: int, m_per_vertex: int = 3, seed: int | None = None
) -> DiGraph:
    """Barabási-Albert-style directed preferential attachment.

    Each new vertex attaches ``m_per_vertex`` out-edges to existing
    vertices chosen proportionally to their current total degree (plus
    one, so isolated seeds remain reachable).  Produces the heavy-tailed
    in-degree distribution of citation/web graphs with a guaranteed
    weakly-connected core.
    """
    if n < 2 or m_per_vertex < 1:
        raise ValueError("need n >= 2 and m_per_vertex >= 1")
    rng = make_rng(seed)
    # Repeated-vertex list trick: sampling from it is degree-proportional.
    pool: list[int] = [0]
    src_list: list[int] = []
    dst_list: list[int] = []
    for v in range(1, n):
        k = min(m_per_vertex, v)
        targets = set()
        while len(targets) < k:
            targets.add(int(pool[rng.integers(0, len(pool))]))
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
            pool.append(t)
        pool.append(v)
    return _finish(
        n,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
    )


def forest_fire(
    n: int,
    forward_prob: float = 0.35,
    seed: int | None = None,
) -> DiGraph:
    """Forest-fire model (Leskovec et al.): web-like graphs with
    community structure and densification.

    Each new vertex picks an ambassador and "burns" outward: it links to
    the ambassador, then recursively to a geometric number of the burned
    vertices' out-neighbors.  ``forward_prob`` controls the burn spread;
    values below ~0.4 keep the graph sparse.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if not 0 <= forward_prob < 1:
        raise ValueError("forward_prob must be in [0, 1)")
    rng = make_rng(seed)
    out_adj: list[list[int]] = [[] for _ in range(n)]
    src_list: list[int] = []
    dst_list: list[int] = []
    for v in range(1, n):
        ambassador = int(rng.integers(0, v))
        burned = {ambassador}
        frontier = [ambassador]
        while frontier:
            u = frontier.pop()
            # Geometric number of forward links from each burned vertex.
            x = int(rng.geometric(1 - forward_prob)) - 1
            if x <= 0:
                continue
            candidates = [w for w in out_adj[u] if w not in burned]
            rng.shuffle(candidates)
            for w in candidates[:x]:
                burned.add(w)
                frontier.append(w)
        for u in burned:
            src_list.append(v)
            dst_list.append(u)
            out_adj[v].append(u)
    return _finish(
        n,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
    )
