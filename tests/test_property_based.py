"""Property-based tests (hypothesis) on core data structures and the
paper's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brandes import brandes_bc
from repro.core.mrbc import mrbc_engine
from repro.core.mrbc_congest import directed_apsp, mrbc_congest
from repro.graph.digraph import DiGraph
from repro.utils.bitset import Bitset
from repro.utils.flatmap import FlatMap


# -- graph strategy ------------------------------------------------------------


@st.composite
def digraphs(draw, max_n=16, max_m=40):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda e: e[0] != e[1]),
            min_size=0,
            max_size=m,
        )
    )
    if edges:
        arr = np.asarray(edges, dtype=np.int64)
        return DiGraph(n, arr[:, 0], arr[:, 1])
    return DiGraph(n, np.empty(0, np.int64), np.empty(0, np.int64))


@st.composite
def digraph_with_sources(draw):
    g = draw(digraphs())
    k = draw(st.integers(1, min(4, g.num_vertices)))
    srcs = draw(
        st.lists(
            st.integers(0, g.num_vertices - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return g, sorted(srcs)


# -- algorithm invariants --------------------------------------------------------


class TestMRBCProperties:
    @given(digraph_with_sources())
    @settings(max_examples=40, deadline=None)
    def test_congest_bc_matches_brandes(self, gs):
        g, srcs = gs
        res = mrbc_congest(g, sources=srcs)
        assert np.allclose(res.bc, brandes_bc(g, sources=srcs), atol=1e-9)

    @given(digraph_with_sources(), st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_engine_bc_matches_brandes(self, gs, batch, hosts):
        g, srcs = gs
        res = mrbc_engine(g, sources=srcs, batch_size=batch, num_hosts=hosts)
        assert np.allclose(res.bc, brandes_bc(g, sources=srcs), atol=1e-9)

    @given(digraph_with_sources())
    @settings(max_examples=40, deadline=None)
    def test_kssp_round_bound_lemma8(self, gs):
        g, srcs = gs
        res = directed_apsp(g, sources=srcs)
        finite = res.dist[res.dist >= 0]
        H = int(finite.max()) if finite.size else 0
        assert res.last_send_round <= len(srcs) + H

    @given(digraph_with_sources())
    @settings(max_examples=40, deadline=None)
    def test_kssp_message_bound_lemma8(self, gs):
        g, srcs = gs
        res = directed_apsp(g, sources=srcs)
        assert res.stats.count_for_tag("apsp") <= g.num_edges * len(srcs)

    @given(digraphs(max_n=12, max_m=30))
    @settings(max_examples=25, deadline=None)
    def test_full_apsp_round_bound(self, g):
        res = directed_apsp(g, detect_termination=False)
        assert res.rounds <= 2 * g.num_vertices

    @given(digraph_with_sources())
    @settings(max_examples=30, deadline=None)
    def test_bc_nonnegative_and_zero_at_sinks(self, gs):
        g, srcs = gs
        res = mrbc_congest(g, sources=srcs)
        assert (res.bc >= -1e-12).all()
        # A vertex with no outgoing edges lies on no s→t path interior.
        for v in range(g.num_vertices):
            if g.out_degree(v) == 0:
                assert abs(res.bc[v]) < 1e-12


# -- data-structure models --------------------------------------------------------


class TestBitsetModel:
    @given(
        st.integers(1, 200),
        st.lists(st.tuples(st.sampled_from(["set", "clear"]), st.integers(0, 199))),
    )
    @settings(max_examples=60)
    def test_against_python_set(self, cap, ops):
        bs = Bitset(cap)
        model: set[int] = set()
        for op, i in ops:
            if i >= cap:
                continue
            if op == "set":
                bs.set(i)
                model.add(i)
            else:
                bs.clear(i)
                model.discard(i)
        assert bs.indices().tolist() == sorted(model)
        assert bs.count() == len(model)
        assert bs.any() == bool(model)

    @given(st.integers(1, 150), st.data())
    @settings(max_examples=40)
    def test_algebra_matches_set_algebra(self, cap, data):
        xs = data.draw(st.lists(st.integers(0, cap - 1), max_size=30))
        ys = data.draw(st.lists(st.integers(0, cap - 1), max_size=30))
        a, b = Bitset.from_indices(cap, xs), Bitset.from_indices(cap, ys)
        u = a.copy().ior(b)
        i = a.copy().iand(b)
        d = a.copy().isub(b)
        assert set(u) == set(xs) | set(ys)
        assert set(i) == set(xs) & set(ys)
        assert set(d) == set(xs) - set(ys)


class TestFlatMapModel:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "del", "pop"]),
                st.integers(-20, 20),
                st.integers(0, 100),
            )
        )
    )
    @settings(max_examples=60)
    def test_against_dict(self, ops):
        fm = FlatMap()
        model: dict[int, int] = {}
        for op, k, v in ops:
            if op == "set":
                fm[k] = v
                model[k] = v
            elif op == "del" and k in model:
                del fm[k]
                del model[k]
            elif op == "pop":
                assert fm.pop(k, None) == model.pop(k, None)
        assert fm.keys() == sorted(model)
        assert dict(fm.items()) == model
        for idx, key in enumerate(sorted(model)):
            assert fm.key_at(idx) == key
            assert fm.index_of(key) == idx


class TestDiGraphModel:
    @given(digraphs())
    @settings(max_examples=50)
    def test_degree_sums_equal_edges(self, g):
        assert int(g.out_degrees().sum()) == g.num_edges
        assert int(g.in_degrees().sum()) == g.num_edges

    @given(digraphs())
    @settings(max_examples=50)
    def test_reverse_is_involution(self, g):
        assert g.reverse().reverse() == g

    @given(digraphs())
    @settings(max_examples=50)
    def test_undirected_is_symmetric(self, g):
        u = g.to_undirected()
        src, dst = u.edges()
        for a, b in zip(src.tolist(), dst.tolist()):
            assert u.has_edge(b, a)
