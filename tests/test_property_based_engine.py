"""Property-based tests for the engine layer: partition invariants,
Gluon wire-format round-trips, and cross-implementation agreement."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sbbc import sbbc_engine
from repro.core.lenzen_peleg import lenzen_peleg_apsp
from repro.core.mrbc import mrbc_engine
from repro.engine.partition import partition_graph
from repro.engine.serialize import decode_message, encode_message
from repro.graph.digraph import DiGraph

FMT = "<i d"


@st.composite
def digraphs(draw, max_n=14, max_m=35):
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=max_m,
        )
    )
    if edges:
        arr = np.asarray(edges, dtype=np.int64)
        return DiGraph(n, arr[:, 0], arr[:, 1])
    return DiGraph(n, np.empty(0, np.int64), np.empty(0, np.int64))


class TestPartitionProperties:
    @given(digraphs(), st.integers(1, 5), st.sampled_from(["oec", "iec", "cvc"]))
    @settings(max_examples=40, deadline=None)
    def test_edges_partition_exactly(self, g, H, policy):
        pg = partition_graph(g, H, policy)
        assert sum(p.num_edges for p in pg.parts) == g.num_edges
        owners = np.zeros(g.num_vertices, dtype=int)
        for p in pg.parts:
            owners[p.gids[p.is_master]] += 1
        assert (owners == 1).all()

    @given(digraphs(), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_host_queries_consistent(self, g, H):
        pg = partition_graph(g, H, "cvc")
        for v in range(g.num_vertices):
            proxy = set(pg.hosts_with_proxy(v).tolist())
            out_h = set(pg.hosts_with_out_edges(v).tolist())
            in_h = set(pg.hosts_with_in_edges(v).tolist())
            assert out_h <= proxy
            assert in_h <= proxy
            assert int(pg.master_of[v]) in proxy


class TestWireFormatProperties:
    @given(
        st.integers(1, 64),
        st.lists(
            st.tuples(
                st.integers(0, 500),
                st.integers(0, 63),
                st.integers(-100, 100),
                st.floats(0.0, 1e6, allow_nan=False),
            ),
            max_size=40,
        ),
    )
    @settings(max_examples=60)
    def test_roundtrip(self, k, raw):
        # Clamp sources into the batch and dedupe (vertex, source) pairs —
        # an aggregated message carries one value per pair.
        seen = {}
        for v, si, d, sg in raw:
            seen[(v, si % k)] = (d, sg)
        items = [(v, si, (d, sg)) for (v, si), (d, sg) in seen.items()]
        data = encode_message(items, batch_width=k, payload_format=FMT)
        back = decode_message(data, payload_format=FMT)
        assert sorted(back) == sorted(items)

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=80, unique=True))
    @settings(max_examples=40)
    def test_bitmap_roundtrip(self, vertices):
        shared = sorted(set(vertices) | set(range(0, 201, 7)))
        rank = {v: i for i, v in enumerate(shared)}
        items = [(v, 0, (1, 1.0)) for v in sorted(vertices)]
        data = encode_message(items, 1, shared_rank=rank, payload_format=FMT)
        back = decode_message(data, shared_vertices=shared, payload_format=FMT)
        assert sorted(back) == sorted(items)


class TestCrossImplementationAgreement:
    @given(digraphs(), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_three_way_bc_agreement(self, g, H):
        srcs = list(range(min(3, g.num_vertices)))
        pg = partition_graph(g, H, "cvc")
        a = mrbc_engine(g, sources=srcs, batch_size=2, partition=pg).bc
        b = sbbc_engine(g, sources=srcs, partition=pg).bc
        assert np.allclose(a, b, atol=1e-9)

    @given(digraphs())
    @settings(max_examples=25, deadline=None)
    def test_lenzen_peleg_distances_match_mrbc(self, g):
        from repro.core.mrbc_congest import directed_apsp

        lp = lenzen_peleg_apsp(g)
        mr = directed_apsp(g)
        assert np.array_equal(lp.dist, mr.dist)
        # And the message refinement holds universally:
        assert (
            mr.stats.count_for_tag("apsp") <= lp.stats.count_for_tag("lp")
        )
