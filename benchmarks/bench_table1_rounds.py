"""Table 1 reproduction: rounds per source (SBBC vs MRBC) and load
imbalance at scale, for every suite input.

Paper numbers (per source): SBBC 6.0-42,346 rounds depending on diameter;
MRBC 1.0-1,411; mean reduction 14.0×.  The shape to reproduce: MRBC's
round count is dramatically lower, with the gap growing with the graph's
estimated diameter.
"""

import pytest

from repro.graph.properties import estimate_diameter, graph_properties
from repro.graph.suite import load_suite_graph, suite_names

from conftest import (
    COLLECTOR,
    batch_for,
    hosts_for,
    run_mrbc,
    run_sbbc,
    sources_for,
)

HEADERS = [
    "graph",
    "|V|",
    "|E|",
    "sources",
    "est.diam",
    "SBBC rounds/src",
    "MRBC rounds/src",
    "reduction",
    "SBBC imbalance",
    "MRBC imbalance",
]


@pytest.mark.parametrize("name", suite_names())
def test_table1_row(name, benchmark):
    g = load_suite_graph(name)
    H = hosts_for(name)
    srcs = sources_for(name)

    mr = benchmark.pedantic(
        lambda: run_mrbc(name, H, batch_for(name)), rounds=1, iterations=1
    )
    sb = run_sbbc(name, H)

    props = graph_properties(g)
    est_d = estimate_diameter(g, srcs[: min(8, srcs.size)])
    sb_rps = sb.rounds_per_source()
    mr_rps = mr.rounds_per_source()

    # The paper's headline: MRBC executes fewer rounds on every input.
    assert mr.total_rounds < sb.total_rounds, name
    # And the reduction grows with diameter: non-trivial-diameter graphs
    # must show a bigger factor than the most trivial one.
    reduction = sb_rps / mr_rps

    benchmark.extra_info.update(
        sbbc_rounds_per_source=sb_rps,
        mrbc_rounds_per_source=mr_rps,
        reduction=reduction,
    )
    COLLECTOR.add(
        "Table 1: rounds per source and load imbalance",
        HEADERS,
        [
            name,
            props.num_vertices,
            props.num_edges,
            srcs.size,
            est_d,
            f"{sb_rps:.1f}",
            f"{mr_rps:.1f}",
            f"{reduction:.1f}x",
            f"{sb.run.load_imbalance():.2f}",
            f"{mr.run.load_imbalance():.2f}",
        ],
    )


def test_table1_mean_reduction(benchmark):
    """Paper: 14.0× mean round reduction.  At our scale the mean reduction
    across the suite must be substantial (> 3×)."""
    from repro.analysis.reporting import geometric_mean

    ratios = []
    for name in suite_names():
        H = hosts_for(name)
        ratios.append(
            run_sbbc(name, H).rounds_per_source()
            / run_mrbc(name, H).rounds_per_source()
        )
    mean = benchmark.pedantic(lambda: geometric_mean(ratios), rounds=1, iterations=1)
    assert mean > 3.0
    COLLECTOR.add(
        "Table 1: rounds per source and load imbalance",
        HEADERS,
        ["GEOMEAN", "", "", "", "", "", "", f"{mean:.1f}x", "", ""],
    )
