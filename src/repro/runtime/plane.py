"""Message planes: the communication substrates the runtime drives.

A *plane* is what one superstep exchanges messages through.  Two
implementations cover every engine in the repository:

- :class:`GluonPlane` — host-level reduce/broadcast over a partitioned
  graph (wrapping :class:`~repro.engine.gluon.GluonSubstrate`), used by
  the BSP drivers (MRBC, SBBC, bfs/wcc/pagerank/kcore, ``run_bsp``);
- :class:`CongestPlane` — per-channel delivery with capacity and
  combining caps (wrapping :class:`~repro.congest.network
  .CongestNetwork`'s channel structures), used by the CONGEST programs.

:func:`resolve_partition` is the shared partition policy every Gluon
driver previously copied (default-build or validate a prebuilt one).

Import discipline: see :mod:`repro.runtime.superstep` — engine modules
are imported lazily so this package stays below them in the import
graph.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.errors import (
    ChannelBandwidthError,
    ChannelCapacityError,
    NotAChannelError,
    PartitionMismatchError,
)


def resolve_partition(g, partition=None, num_hosts: int = 8, policy: str = "cvc"):
    """Return the partition a Gluon driver should run on.

    Builds one with ``policy`` when none is given; a prebuilt partition
    must have been built for the same graph object.
    """
    from repro.engine.partition import partition_graph

    if partition is None:
        return partition_graph(g, num_hosts, policy)
    if partition.graph is not g:
        raise PartitionMismatchError("partition was built for a different graph")
    return partition


class MessagePlane:
    """Protocol for a communication substrate driven by the runtime.

    ``num_hosts`` is the plane's host count for manifest creation, or
    None for planes without a host concept (CONGEST: processors *are*
    vertices).  Concrete planes add their own exchange primitives — the
    step functions call them directly, so the protocol stays minimal.
    """

    num_hosts: int | None = None


class GluonPlane(MessagePlane):
    """Host-level reduce/broadcast over a partitioned graph.

    Delegates to a :class:`~repro.engine.gluon.GluonSubstrate` (pass a
    prebuilt ``substrate`` to share or customize one, e.g. exact wire
    sizes); the delayed-synchronization optimization passes through
    unchanged because callers decide *which* items each round reduces.
    """

    def __init__(
        self,
        pg,
        *,
        resilience=None,
        exact_sizes: bool = False,
        substrate=None,
    ) -> None:
        if substrate is None:
            from repro.engine.gluon import GluonSubstrate

            substrate = GluonSubstrate(
                pg, exact_sizes=exact_sizes, resilience=resilience
            )
        self.pg = pg
        self.substrate = substrate
        self.num_hosts = pg.num_hosts

    def reduce_to_masters(self, per_host_items, payload_bytes, batch_width, rs):
        """Send each host's updated items to the owning masters."""
        return self.substrate.reduce_to_masters(
            per_host_items, payload_bytes, batch_width, rs
        )

    def broadcast_from_masters(
        self, per_host_items, targets, payload_bytes, batch_width, rs
    ):
        """Send master-side items to the hosts holding relevant proxies."""
        return self.substrate.broadcast_from_masters(
            per_host_items, targets, payload_bytes, batch_width, rs
        )


class CongestPlane(MessagePlane):
    """One CONGEST round: validated sends, accounting, delivery.

    Owns the send/validate/record/deliver sequence that used to live in
    ``CongestNetwork._run_rounds`` — channel membership and the
    per-channel combining cap are enforced here, message statistics and
    per-round telemetry are recorded here, and the resilience channel
    guard runs between accounting and delivery.  The network object
    keeps the graph-shaped state (channels, programs).
    """

    num_hosts = None

    def __init__(self, network) -> None:
        from repro.congest.messages import MAX_COMBINED_VALUES, payload_words
        from repro.congest.program import BROADCAST
        from repro.obs.comm import PLANE_CONGEST, WORD_BYTES

        self.network = network
        self._broadcast = BROADCAST
        self._max_combined = MAX_COMBINED_VALUES
        self._payload_words = payload_words
        self._plane_label = PLANE_CONGEST
        self._word_bytes = WORD_BYTES

    def exchange_round(self, rnd, result, tele, rs, detect_quiescence) -> bool:
        """Execute CONGEST round ``rnd``; return whether work may remain.

        The return value feeds Lemma 8's global termination detector:
        with ``detect_quiescence`` it is true while this round sent
        anything or any program reports pending work; otherwise always
        true (the caller's round budget terminates the run).
        """
        net = self.network
        programs = net.programs
        # Host-scope faults (stall/crash) materialize at the round
        # barrier, before any channel traffic — a stall charges recovery
        # rounds (or times out per the policy deadline), a crash raises
        # for the driver-level restart loop.
        if net.resilience is not None:
            net.resilience.congest_host_events(rnd)
        # -- send phase: collect and validate this round's messages.
        # outbox maps (sender, target) -> list of payloads (combined).
        outbox: dict[tuple[int, int], list[tuple[Any, ...]]] = {}
        any_send = False
        for v, prog in enumerate(programs):
            if prog.is_stopped():
                continue
            sends = prog.compute_sends(rnd)
            if not sends:
                continue
            for target, payload in sends:
                if target == self._broadcast:
                    targets = net.channel_neighbors[v]
                else:
                    if target not in net._channel_sets[v]:
                        raise NotAChannelError(
                            f"vertex {v} has no channel to {target}"
                        )
                    targets = (target,)
                for t in targets:
                    key = (v, int(t))
                    bucket = outbox.setdefault(key, [])
                    if len(bucket) >= self._max_combined:
                        raise ChannelCapacityError(
                            f"vertex {v} exceeded channel capacity to {t} "
                            f"in round {rnd}"
                        )
                    bucket.append(payload)
                    any_send = True

        result.sends_per_round.append(len(outbox))
        if any_send:
            result.last_send_round = rnd
            for payloads in outbox.values():
                result.stats.record_channel(payloads)
        ledger = tele.comm
        if ledger is not None:
            for (sender, target), payloads in outbox.items():
                words = sum(self._payload_words(p) for p in payloads)
                violation = ledger.record(
                    self._plane_label,
                    "congest",
                    rnd,
                    sender,
                    target,
                    values=len(payloads),
                    words=words,
                    payload_bytes=words * self._word_bytes,
                )
                if violation is not None:
                    if tele.enabled:
                        tele.emit(
                            "comm",
                            "congest.bound_violation",
                            round=rnd,
                            src=sender,
                            dst=target,
                            words=words,
                            bound_words=violation.bound_words,
                        )
                    if ledger.hard_fail:
                        raise ChannelBandwidthError(
                            f"channel {sender}->{target} carried {words} words "
                            f"in round {rnd}, exceeding the CONGEST budget of "
                            f"{violation.bound_words} words/round"
                        )
        total_values = sum(len(p) for p in outbox.values())
        if tele.enabled:
            tele.emit(
                "round",
                "round:congest",
                round=rnd,
                phase="congest",
                channels=len(outbox),
                values=total_values,
            )
        if rs is not None:
            # An EngineRun is attached (persistable CONGEST runs): a
            # channel is the congest analogue of a pair message.
            rs.pair_messages += len(outbox)
            rs.items_synced += total_values
        rledger = tele.rounds
        if rledger is not None:
            # The round-ledger seam: sending vertices are the CONGEST
            # frontier; non-stopped programs are the still-active workers
            # whose quiescence Lemma 8's detector waits for.
            rledger.note(
                frontier=len({s for (s, _t) in outbox}),
                channels=len(outbox),
                values=total_values,
                active_sources=sum(
                    1 for p in programs if not p.is_stopped()
                ),
            )

        # -- delivery phase: receivers process during this round.
        for (sender, target), payloads in outbox.items():
            if net.resilience is not None:
                payloads = net.resilience.guard_congest(
                    rnd, sender, target, payloads
                )
            handler = programs[target].handle_message
            for payload in payloads:
                handler(rnd, sender, payload)

        for prog in programs:
            prog.end_of_round(rnd)

        result.rounds_executed = rnd

        if not detect_quiescence:
            return True
        return any_send or any(p.has_pending_work(rnd) for p in programs)
