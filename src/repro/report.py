"""``python -m repro.report`` — check exported benchmark artifacts
against the paper's expectations (see repro.analysis.expectations)."""

from __future__ import annotations

import argparse
import logging

from repro.analysis.expectations import check_results, render_report
from repro.cli import add_logging_flags, setup_logging

log = logging.getLogger("repro.report")


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro.report",
        description="Check benchmark CSVs against the paper's expectations",
    )
    p.add_argument(
        "results_dir", nargs="?", default="benchmarks/results",
        help="directory holding the exported benchmark CSVs",
    )
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    log.info("checking artifacts under %s", args.results_dir)
    results = check_results(args.results_dir)
    print(render_report(results))
    failures = sum(1 for r in results if r.status == "FAIL")
    if failures:
        log.warning("%d artifact check(s) failed", failures)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
