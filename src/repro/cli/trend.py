"""``repro trend``: the benchmark trajectory across committed snapshots."""

from __future__ import annotations

import argparse

from repro.cli.common import add_logging_flags, log, setup_logging


def trend_main(argv: list[str]) -> int:
    """``repro trend``: chart committed ``BENCH_*.json`` snapshots.

    Reads every ``BENCH_<sha>.json`` at the repo root (or the paths given
    explicitly), orders them by commit lineage, and prints the per-case
    trajectory — wall-clock medians plus deterministic / comm-ledger /
    round-ledger counts — with regressions, improvements, and count
    changes flagged between consecutive snapshots of the same case.

    Exit code 0 always (the trend is a report, not a gate — ``repro
    bench --compare`` is the gate); ``--fail-on-regression`` turns wall
    regressions into exit code 1 for CI use.
    """
    p = argparse.ArgumentParser(
        prog="repro trend",
        description="Cross-snapshot benchmark trajectory: wall medians "
                    "and deterministic/comm/round counts per case, "
                    "ordered by commit lineage",
    )
    p.add_argument("snapshots", nargs="*", metavar="BENCH.json",
                   help="snapshot files (default: BENCH_*.json at the "
                        "repo root)")
    p.add_argument("--format", choices=("table", "json"), default="table",
                   help="output format (default: table)")
    p.add_argument("--case", metavar="NAME", default=None,
                   help="restrict the trajectory to one case name")
    p.add_argument("--wall-threshold", type=float, default=None, metavar="X",
                   help="wall regression threshold in noise units "
                        "(default: 3.0, same rule as bench --compare)")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 if any wall regression step is present")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    from repro.analysis.trend import (
        WALL_THRESHOLD,
        build_trend,
        find_snapshots,
        render_trend,
    )

    paths = args.snapshots or find_snapshots()
    if not paths:
        log.error("no BENCH_*.json snapshots found at the repo root")
        return 1
    report = build_trend(
        paths,
        wall_threshold=(
            WALL_THRESHOLD if args.wall_threshold is None else args.wall_threshold
        ),
    )
    if args.case is not None:
        if args.case not in report.cases:
            log.error(
                "case %r not in any snapshot (known: %s)",
                args.case, ", ".join(sorted(report.cases)),
            )
            return 1
        report.cases = {args.case: report.cases[args.case]}
    if args.format == "json":
        print(report.to_json())
    else:
        print(render_trend(report))
    if args.fail_on_regression and report.regressions:
        return 1
    return 0
