"""Command-line interface: run any BC algorithm on an edge-list file.

Examples
--------
Compute exact BC with MRBC on a generated graph and print the top ranks::

    python -m repro --generate rmat:8:8 --algorithm mrbc --top 10

Compare algorithms on an edge-list file with 16 sampled sources::

    python -m repro graph.txt --algorithm mrbc sbbc --sources 16 --hosts 8
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.abbc import abbc, abbc_simulated_time
from repro.baselines.brandes import brandes_bc
from repro.baselines.mfbc import mfbc
from repro.baselines.sbbc import sbbc_engine
from repro.cluster.model import ClusterModel
from repro.core.mrbc import mrbc_engine
from repro.core.sampling import sample_sources
from repro.engine.partition import partition_graph
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.io import read_edge_list

ALGORITHMS = ("mrbc", "sbbc", "abbc", "mfbc", "brandes")


def _generate(spec: str) -> DiGraph:
    """Build a graph from a ``kind:arg:arg`` spec, e.g. ``rmat:8:8``."""
    kind, *args = spec.split(":")
    vals = [int(a) for a in args]
    if kind == "rmat":
        return generators.rmat(*vals)
    if kind == "grid":
        return generators.grid_road(*vals)
    if kind == "webcrawl":
        return generators.web_crawl_like(*vals)
    if kind == "er":
        return generators.erdos_renyi(vals[0], float(vals[1]))
    raise SystemExit(f"unknown generator kind {kind!r} "
                     "(options: rmat, grid, webcrawl, er)")


def _run_one(
    algo: str,
    g: DiGraph,
    sources: np.ndarray,
    hosts: int,
    batch: int,
) -> tuple[np.ndarray, dict[str, object]]:
    model = ClusterModel(hosts)
    if algo == "brandes":
        return brandes_bc(g, sources=sources), {"rounds": "-", "time (s)": "-"}
    if algo == "abbc":
        res = abbc(g, sources=sources)
        return res.bc, {
            "rounds": "-",
            "time (s)": f"{abbc_simulated_time(res, g):.5f}",
        }
    if algo == "mfbc":
        res = mfbc(g, sources=sources, batch_size=batch, num_hosts=hosts)
        return res.bc, {
            "rounds": res.iterations,
            "time (s)": f"{model.time_run(res.run).total:.5f}",
        }
    pg = partition_graph(g, hosts, "cvc")
    if algo == "sbbc":
        res = sbbc_engine(g, sources=sources, partition=pg)
    else:
        res = mrbc_engine(g, sources=sources, batch_size=batch, partition=pg)
    return res.bc, {
        "rounds": res.total_rounds,
        "time (s)": f"{model.time_run(res.run).total:.5f}",
    }


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="repro", description="Min-Rounds BC reproduction CLI"
    )
    p.add_argument("graph", nargs="?", help="edge-list file (u v per line)")
    p.add_argument(
        "--generate", metavar="SPEC",
        help="generate a graph instead: rmat:scale:ef | grid:r:c | "
             "webcrawl:core:tails | er:n:deg",
    )
    p.add_argument(
        "--algorithm", "-a", nargs="+", default=["mrbc"],
        choices=ALGORITHMS, help="algorithms to run (default: mrbc)",
    )
    p.add_argument("--sources", "-k", type=int, default=None,
                   help="number of sampled sources (default: all vertices)")
    p.add_argument("--hosts", type=int, default=8, help="simulated hosts")
    p.add_argument("--batch", type=int, default=16, help="MRBC batch size")
    p.add_argument("--top", type=int, default=10,
                   help="print this many top-BC vertices")
    p.add_argument("--seed", type=int, default=0, help="sampling seed")
    args = p.parse_args(argv)

    if bool(args.graph) == bool(args.generate):
        p.error("provide exactly one of: a graph file, or --generate SPEC")
    g = _generate(args.generate) if args.generate else read_edge_list(args.graph)
    print(f"graph: {g}", file=sys.stderr)

    if args.sources is None:
        sources = np.arange(g.num_vertices, dtype=np.int64)
    else:
        sources = sample_sources(g, args.sources, seed=args.seed)

    rows = []
    bc_by_algo: dict[str, np.ndarray] = {}
    for algo in args.algorithm:
        bc, stats = _run_one(algo, g, sources, args.hosts, args.batch)
        bc_by_algo[algo] = bc
        rows.append([algo, len(sources), stats["rounds"], stats["time (s)"]])
    print(format_table(["algorithm", "sources", "rounds", "time (s)"], rows))

    first = args.algorithm[0]
    for other in args.algorithm[1:]:
        if not np.allclose(
            bc_by_algo[first], bc_by_algo[other], atol=1e-6, equal_nan=True
        ):
            print(f"WARNING: {first} and {other} disagree", file=sys.stderr)
            return 1

    bc = bc_by_algo[first]
    order = np.argsort(bc)[::-1][: args.top]
    print(format_table(
        ["vertex", "BC"],
        [[int(v), f"{bc[v]:.4f}"] for v in order],
        title=f"top {args.top} by betweenness ({first})",
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
