"""Tests for the Gluon-style substrate: delivery semantics and the
byte-accounting model (aggregation + metadata compression)."""

import numpy as np
import pytest

from repro.engine.gluon import (
    MESSAGE_HEADER_BYTES,
    TARGET_ALL_PROXIES,
    TARGET_IN_EDGES,
    TARGET_OUT_EDGES,
    GluonSubstrate,
)
from repro.engine.partition import partition_graph
from repro.engine.stats import EngineRun
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def pg():
    return partition_graph(gen.erdos_renyi(50, 4.0, seed=41), 4, "cvc")


@pytest.fixture
def rs(pg):
    return EngineRun(num_hosts=pg.num_hosts).new_round("forward")


class TestReduce:
    def test_items_reach_master(self, pg, rs):
        gluon = GluonSubstrate(pg)
        v = 7
        items = [[] for _ in range(4)]
        holders = pg.hosts_with_proxy(v)
        for h in holders.tolist():
            items[h].append((v, 1, 2.0))
        inbox = gluon.reduce_to_masters(items, 12, 1, rs)
        master = int(pg.master_of[v])
        got = [it for it in inbox[master] if it[0] == v]
        assert len(got) == len(holders)
        senders = {it[1] for it in got}
        assert senders == set(holders.tolist())
        # Other hosts receive nothing.
        for h in range(4):
            if h != master:
                assert not inbox[h]

    def test_local_reduce_is_free(self, pg, rs):
        gluon = GluonSubstrate(pg)
        v = 7
        master = int(pg.master_of[v])
        items = [[] for _ in range(4)]
        items[master].append((v, 1, 2.0))
        gluon.reduce_to_masters(items, 12, 1, rs)
        assert rs.total_bytes() == 0
        assert rs.pair_messages == 0
        assert rs.items_synced == 1

    def test_remote_reduce_charged_both_ends(self, pg, rs):
        gluon = GluonSubstrate(pg)
        v = 7
        master = int(pg.master_of[v])
        other = next(
            int(h) for h in pg.hosts_with_proxy(v) if int(h) != master
        )
        items = [[] for _ in range(4)]
        items[other].append((v, 1, 2.0))
        gluon.reduce_to_masters(items, 12, 1, rs)
        assert rs.bytes_out[other] > 0
        assert rs.bytes_in[master] == rs.bytes_out[other]
        assert rs.pair_messages == 1


class TestBroadcast:
    @pytest.mark.parametrize(
        "target,hosts_fn",
        [
            (TARGET_OUT_EDGES, "hosts_with_out_edges"),
            (TARGET_IN_EDGES, "hosts_with_in_edges"),
            (TARGET_ALL_PROXIES, "hosts_with_proxy"),
        ],
    )
    def test_targeted_delivery(self, pg, rs, target, hosts_fn):
        gluon = GluonSubstrate(pg)
        v = 11
        master = int(pg.master_of[v])
        items = [[] for _ in range(4)]
        items[master].append((v, 0, 1, 1.0))
        inbox = gluon.broadcast_from_masters(items, target, 12, 1, rs)
        expect = set(getattr(pg, hosts_fn)(v).tolist())
        got = {h for h in range(4) if any(it[0] == v for it in inbox[h])}
        assert got == expect

    def test_unknown_target_rejected(self, pg, rs):
        with pytest.raises(ValueError):
            GluonSubstrate(pg).broadcast_from_masters(
                [[] for _ in range(4)], "sideways", 12, 1, rs
            )


class TestByteModel:
    def test_aggregation_one_header_per_pair(self, pg):
        """Two items on the same pair cost one header; on different rounds,
        two headers — the round-amortization MRBC exploits."""
        gluon = GluonSubstrate(pg)
        v = 7
        master = int(pg.master_of[v])
        other = next(int(h) for h in pg.hosts_with_proxy(v) if int(h) != master)

        run = EngineRun(num_hosts=4)
        rs1 = run.new_round("forward")
        items = [[] for _ in range(4)]
        items[other] = [(v, 0, 1, 1.0), (v, 1, 1, 1.0)]
        gluon.reduce_to_masters(items, 12, 8, rs1)
        together = rs1.total_bytes()

        rs2 = run.new_round("forward")
        rs3 = run.new_round("forward")
        one = [[] for _ in range(4)]
        one[other] = [(v, 0, 1, 1.0)]
        gluon.reduce_to_masters(one, 12, 8, rs2)
        two = [[] for _ in range(4)]
        two[other] = [(v, 1, 1, 1.0)]
        gluon.reduce_to_masters(two, 12, 8, rs3)
        split = rs2.total_bytes() + rs3.total_bytes()
        assert together < split
        assert split - together >= MESSAGE_HEADER_BYTES

    def test_batched_source_metadata_compresses(self, pg):
        """Many sources of one vertex in one message: bitvector beats an
        index list (the §5.3 metadata-compression effect)."""
        gluon = GluonSubstrate(pg)
        v = 7
        master = int(pg.master_of[v])
        other = next(int(h) for h in pg.hosts_with_proxy(v) if int(h) != master)
        k = 64

        def volume(num_sources_present: int) -> int:
            run = EngineRun(num_hosts=4)
            rs = run.new_round("forward")
            items = [[] for _ in range(4)]
            items[other] = [(v, si, 1, 1.0) for si in range(num_sources_present)]
            gluon.reduce_to_masters(items, 12, k, rs)
            return rs.total_bytes()

        # Marginal cost per extra source must be payload + ~0 metadata once
        # the bitvector kicks in (8 bytes for k=64 vs 4 per source listed).
        v1, v16 = volume(1), volume(16)
        per_item = (v16 - v1) / 15
        assert per_item < 12 + 4  # payload plus strictly less than the
        # explicit 4-byte source-id cost

    def test_message_counts_recorded(self, pg, rs):
        gluon = GluonSubstrate(pg)
        v = 11
        master = int(pg.master_of[v])
        items = [[] for _ in range(4)]
        items[master].append((v, 0, 1, 1.0))
        gluon.broadcast_from_masters(items, TARGET_ALL_PROXIES, 12, 1, rs)
        remote = len([h for h in pg.hosts_with_proxy(v) if int(h) != master])
        assert rs.pair_messages == remote
        assert int(rs.msgs_out[master]) == remote
        assert rs.proxies_synced == len(pg.hosts_with_proxy(v))


class TestExactSizes:
    def test_exact_mode_close_to_model(self, pg):
        """End-to-end: MRBC volume under exact wire encoding stays within
        25% of the closed-form model's volume."""
        import numpy as np
        from repro.core.mrbc import mrbc_engine

        g = pg.graph
        srcs = [0, 10, 20, 30]
        modeled = mrbc_engine(g, sources=srcs, batch_size=4, partition=pg)

        # Monkey-patch mrbc_engine's message plane via a tiny shim: rerun
        # with an exact-size plane by copying the executor wiring.
        from repro.core import mrbc as mrbc_mod

        orig = mrbc_mod.GluonPlane
        mrbc_mod.GluonPlane = lambda p, **kw: orig(p, exact_sizes=True, **kw)
        try:
            exact = mrbc_engine(g, sources=srcs, batch_size=4, partition=pg)
        finally:
            mrbc_mod.GluonPlane = orig

        assert np.allclose(exact.bc, modeled.bc)
        a, b = exact.run.total_bytes, modeled.run.total_bytes
        assert abs(a - b) / b < 0.25, (a, b)
