"""Undirected betweenness centrality (Theorem 1, part III).

"If G is undirected the bounds for rounds and messages in parts (I) and
(II) hold with D replaced by Du."  An undirected graph is handled by
running the directed algorithm on the symmetric closure, whose CONGEST
communication network coincides with the graph itself.

Convention note: the directed definition counts the ordered pairs (s, t)
and (t, s) separately, so on a symmetric closure every unordered pair is
counted twice — directed-convention scores are exactly 2× the classical
undirected BC (NetworkX's ``betweenness_centrality`` on an undirected
graph).  :func:`undirected_bc` returns the classical (halved) values.
"""

from __future__ import annotations

import numpy as np

from repro.core.mrbc import mrbc_engine
from repro.core.mrbc_congest import mrbc_congest
from repro.graph.digraph import DiGraph


def undirected_bc(
    g: DiGraph,
    sources: np.ndarray | list[int] | None = None,
    method: str = "engine",
    **kwargs: object,
) -> np.ndarray:
    """Classical undirected BC of ``g`` (treated as undirected).

    ``g`` may be any digraph; its symmetric closure is used.  ``method``
    selects the MRBC implementation (``"engine"`` or ``"congest"``);
    remaining keyword arguments are forwarded (``num_hosts``,
    ``batch_size``, ``use_finalizer``, ...).

    With sampled ``sources`` the result is the sampled betweenness-score
    sum under the undirected convention: each sampled source contributes
    its dependencies once, halved to undo the ordered-pair double count.
    """
    ug = g.to_undirected()
    if method == "engine":
        bc = mrbc_engine(ug, sources=sources, **kwargs).bc  # type: ignore[arg-type]
    elif method == "congest":
        bc = mrbc_congest(ug, sources=sources, **kwargs).bc  # type: ignore[arg-type]
    else:
        raise ValueError(f"unknown method {method!r} (engine|congest)")
    return bc / 2.0
