"""Columnar per-source state for the vectorized (array) message plane.

The dict plane keeps per-vertex Python dicts (``MasterVertexState``,
``local_lists``) and exchanges per-vertex tuples; this module provides the
columnar twin: dense ``(k, n)`` / ``(L, k)`` NumPy arrays for
distance/σ/δ, :class:`~repro.utils.bitset.Bitset`-backed masks for the
delayed-sync staging sets, and :class:`ColumnBlock` — the unit of
exchange on the :class:`~repro.runtime.plane.GluonArrayPlane`, a struct
of arrays instead of a list of tuples.

Explicit converters bridge the two representations:

- :meth:`MasterColumns.to_rows` / :meth:`MasterColumns.from_rows`
  translate between the columnar master state and the dict plane's
  ``{gid: MasterVertexState}`` map (used by checkpoints — snapshots are
  cross-plane compatible — and by the resilience invariant checker);
- :func:`ColumnBlock.to_tuples` / :func:`ColumnBlock.from_tuples`
  translate exchange payloads, which is how the array plane routes
  through the guarded dict substrate under a fault plan.

Iteration-order contract: everywhere the dict plane's behavior depends on
dict insertion order (master creation, fire emission, backward schedule),
the columnar state carries an explicit sequence number
(``master_seq``) so both planes produce byte-identical engine counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.utils.bitset import Bitset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mrbc import MasterVertexState

#: "Infinite" distance sentinel (identical to the dict plane's).
INF = np.iinfo(np.int32).max

#: Sentinel larger than any schedule key ``d * (k + 1) + si``.
BIG = np.iinfo(np.int64).max


def expand_csr(
    offsets: np.ndarray, data: np.ndarray, idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the variable-length CSR slices ``data[offsets[i]:offsets[i+1]]``
    for every ``i`` in ``idx``, concatenated in order.

    Returns ``(item_of, values)`` where ``item_of[e]`` is the position in
    ``idx`` that produced ``values[e]`` — the vectorized form of

    ``for j, i in enumerate(idx): for v in data[off[i]:off[i+1]]: ...``
    """
    idx = np.asarray(idx, dtype=np.int64)
    counts = (offsets[idx + 1] - offsets[idx]).astype(np.int64, copy=False)
    item_of = np.arange(idx.size, dtype=np.int64).repeat(counts)
    total = item_of.size
    if total == 0:
        return item_of, data[:0]
    starts = offsets[idx].astype(np.int64, copy=False)
    run_first = counts.cumsum() - counts
    pos = np.arange(total, dtype=np.int64) - run_first.repeat(counts)
    return item_of, data[starts.repeat(counts) + pos]


class ColumnBlock:
    """One host's exchange payload as a struct of aligned arrays.

    ``gids`` names the global vertex per row; ``cols`` carries the
    payload columns (e.g. source slot, distance, σ).  The dict plane's
    equivalent is a list of ``(gid, *payload)`` tuples — the converters
    below translate losslessly in both directions.
    """

    __slots__ = ("gids", "cols")

    def __init__(self, gids: np.ndarray, cols: tuple[np.ndarray, ...]) -> None:
        self.gids = np.asarray(gids, dtype=np.int64)
        self.cols = tuple(np.asarray(c) for c in cols)

    @classmethod
    def raw(cls, gids: np.ndarray, cols: tuple[np.ndarray, ...]) -> "ColumnBlock":
        """No-validation constructor for hot paths (arrays already typed)."""
        self = object.__new__(cls)
        self.gids = gids
        self.cols = cols
        return self

    def __len__(self) -> int:
        return int(self.gids.size)

    def take(self, idx: np.ndarray) -> "ColumnBlock":
        """Row subset/permutation by position."""
        return ColumnBlock(self.gids[idx], tuple(c[idx] for c in self.cols))

    def to_tuples(self) -> list[tuple[Any, ...]]:
        """The dict plane's representation: ``(gid, *payload)`` tuples."""
        pys = [self.gids.tolist()] + [c.tolist() for c in self.cols]
        return list(zip(*pys))

    @classmethod
    def from_tuples(
        cls, items: Iterable[tuple[Any, ...]], dtypes: tuple[Any, ...]
    ) -> "ColumnBlock":
        """Rebuild a block from dict-plane tuples.

        ``dtypes`` gives the payload column dtypes (``gids`` is always
        int64); required because an empty list carries no type info.
        """
        rows = list(items)
        if not rows:
            return cls(
                np.empty(0, dtype=np.int64),
                tuple(np.empty(0, dtype=dt) for dt in dtypes),
            )
        columns = list(zip(*rows))
        return cls(
            np.asarray(columns[0], dtype=np.int64),
            tuple(
                np.asarray(col, dtype=dt)
                for col, dt in zip(columns[1:], dtypes)
            ),
        )

    @classmethod
    def concat(cls, blocks: "list[ColumnBlock]") -> "ColumnBlock":
        """Row-wise concatenation (blocks must agree on column count)."""
        assert blocks, "need at least one block"
        return cls(
            np.concatenate([b.gids for b in blocks]),
            tuple(
                np.concatenate([b.cols[i] for b in blocks])
                for i in range(len(blocks[0].cols))
            ),
        )


def block_len(block: "ColumnBlock | None") -> int:
    """Length of a possibly-absent block (planes use None for empty)."""
    return 0 if block is None else len(block)


class HostArena:
    """Every host's per-source proxy state stacked into one row arena.

    Arena row ``off[h] + lid`` holds host ``h``'s local vertex ``lid``;
    both hosts' CSRs are re-stitched with arena-row targets (every edge
    is intra-host, so the stitch is a shifted concatenation).  Stacking
    lets the relax/stage/credit sweeps run **once per round over every
    host's deliveries** instead of once per host — per-cell semantics
    are untouched because a cell key ``row * k + si`` already encodes
    the host, so items from different hosts can never interact.

    Mirrors the dict plane's ``HostState`` field for field, with two
    exceptions: the sorted per-vertex candidate lists (``local_lists``)
    are *derived* from ``cand_dist`` on demand (list entry ⟺ candidate
    distance present — the invariant the dict plane maintains by hand),
    and the ``unsent`` set is a :class:`Bitset` over arena rows, whose
    sorted index vector is exactly the dict plane's (host, lid)
    iteration order.

    ``lut[h, gid]`` resolves a delivery to its arena row in one gather
    (−1 = no proxy).  It costs ``H × n`` int64s — fine at the repo's
    simulation scales; a per-host ``searchsorted`` would trade memory
    for an extra log factor if that ever pinches.
    """

    __slots__ = (
        "off",
        "total",
        "gids",
        "host_of",
        "lut",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_sources",
        "cand_dist",
        "cand_sigma",
        "fin_dist",
        "fin_sigma",
        "sent_d",
        "unsent",
        "dirty",
        "partial_delta",
        "delta_dirty",
        "fpos",
    )

    def __init__(self, parts: list, k: int, n: int) -> None:
        H = len(parts)
        sizes = np.array([p.num_local for p in parts], dtype=np.int64)
        self.off = np.zeros(H + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.off[1:])
        total = int(self.off[-1])
        self.total = total
        self.gids = np.concatenate(
            [p.gids for p in parts] or [np.empty(0, dtype=np.int64)]
        ).astype(np.int64)
        self.host_of = np.repeat(np.arange(H, dtype=np.int64), sizes)
        self.lut = np.full((H, n), -1, dtype=np.int64)
        for h, p in enumerate(parts):
            self.lut[h, p.gids] = np.arange(
                self.off[h], self.off[h + 1], dtype=np.int64
            )
        self.out_offsets, self.out_targets = self._stitch_csr(
            parts, [p.out_offsets for p in parts], [p.out_targets for p in parts]
        )
        self.in_offsets, self.in_sources = self._stitch_csr(
            parts, [p.in_offsets for p in parts], [p.in_sources for p in parts]
        )
        shape = (total, k)
        self.cand_dist = np.full(shape, INF, dtype=np.int64)
        self.cand_sigma = np.zeros(shape, dtype=np.float64)
        self.fin_dist = np.full(shape, INF, dtype=np.int64)
        self.fin_sigma = np.zeros(shape, dtype=np.float64)
        self.sent_d = np.full(shape, -1, dtype=np.int64)
        self.unsent = Bitset(total)
        self.dirty = np.zeros(shape, dtype=bool)
        self.partial_delta = np.zeros(shape, dtype=np.float64)
        self.delta_dirty = np.zeros(shape, dtype=bool)
        #: Scratch: delivery index of this round's fire per cell (−1 =
        #: not fired this round); reset after each relax sweep.
        self.fpos = np.full(shape, -1, dtype=np.int64)

    def reset_state(self) -> None:
        """Reset the mutable state columns to their initial values.

        Lets a driver that runs many independent units over the same
        partition (SBBC: one per source) reuse the topology — LUT and
        stitched CSRs — instead of rebuilding the arena each time.
        """
        self.cand_dist.fill(INF)
        self.cand_sigma.fill(0.0)
        # Between-units reset, not a stale read: no round is in flight.
        self.fin_dist.fill(INF)  # repro-lint: disable=RL301
        self.fin_sigma.fill(0.0)  # repro-lint: disable=RL301
        self.sent_d.fill(-1)
        self.unsent.clear_all()
        self.dirty.fill(False)
        self.partial_delta.fill(0.0)
        self.delta_dirty.fill(False)
        self.fpos.fill(-1)

    def _stitch_csr(self, parts, offsets_list, data_list):
        counts = np.concatenate(
            [np.diff(o) for o in offsets_list] or [np.empty(0, dtype=np.int64)]
        )
        offsets = np.zeros(self.total + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        data = np.concatenate(
            [
                np.asarray(d, dtype=np.int64) + self.off[h]
                for h, d in enumerate(data_list)
            ]
            or [np.empty(0, dtype=np.int64)]
        )
        return offsets, data

    def rows_of(self, h: int) -> slice:
        """Arena row range belonging to host ``h``."""
        return slice(int(self.off[h]), int(self.off[h + 1]))

    def host_view(self, h: int) -> "_HostRowView":
        """Per-host view of the finalized arrays (checkpoint shape)."""
        sl = self.rows_of(h)
        # Checkpoint/restore seam: runs at a round boundary by contract.
        return _HostRowView(self.fin_dist[sl], self.fin_sigma[sl])  # repro-lint: disable=RL301

    def derive_local_lists(self, h: int) -> dict[int, list[tuple[int, int]]]:
        """The dict plane's ``local_lists`` view for host ``h``: per
        local vertex, the lexicographically sorted ``(d, si)`` pairs."""
        sl = self.rows_of(h)
        out: dict[int, list[tuple[int, int]]] = {}
        sub = self.cand_dist[sl]
        rows, cols = np.nonzero(sub != INF)
        for lid, si in zip(rows.tolist(), cols.tolist()):
            out.setdefault(lid, []).append((int(sub[lid, si]), si))
        for lst in out.values():
            lst.sort()
        return out


class RowStateView:
    """Dict-plane-shaped view of an array executor (``to_rows()`` result).

    Quacks like a ``_BatchExecutor`` where checkpoints and the invariant
    checker are concerned: ``masters`` is a ``{gid: MasterVertexState}``
    map in creation order, ``hosts`` exposes the per-host finalized
    arrays, ``batch`` is the source batch.
    """

    __slots__ = ("masters", "hosts", "batch")

    def __init__(self, masters: dict, hosts: list, batch: np.ndarray) -> None:
        self.masters = masters
        self.hosts = hosts
        self.batch = batch


class _HostRowView:
    __slots__ = ("fin_dist", "fin_sigma")

    def __init__(self, fin_dist: np.ndarray, fin_sigma: np.ndarray) -> None:
        self.fin_dist = fin_dist
        self.fin_sigma = fin_sigma


class MasterColumns:
    """Authoritative master state for one batch, as dense columns.

    The dict plane's ``{gid: MasterVertexState}`` becomes:

    - ``ent_d[si, gid]`` — the schedule-entry distance (INF = absent);
      the fired/unfired split is ``fired`` plus ``sent_prefix``;
    - ``best_sigma[si, gid]`` — the authoritative σ*;
    - ``contrib_d/contrib_sigma[h, si, gid]`` — per-host contributions,
      with the virtual source host (−1 in the dict plane) stored at row
      ``H``;
    - ``tau[si, gid]`` — fire timestamps for the backward schedule;
    - ``master_seq[gid]`` / ``master_order`` — creation order, which is
      the dict plane's insertion order; every order-sensitive sweep
      (fire emission, backward schedule, snapshots) follows it.
    """

    def __init__(self, k: int, n: int, num_hosts: int) -> None:
        self.k = k
        self.n = n
        self.H = num_hosts
        self.ent_d = np.full((k, n), INF, dtype=np.int64)
        self.best_sigma = np.zeros((k, n), dtype=np.float64)
        self.fired = np.zeros((k, n), dtype=bool)
        self.tau = np.zeros((k, n), dtype=np.int64)
        self.sent_prefix = np.zeros(n, dtype=np.int64)
        self.contrib_d = np.full((num_hosts + 1, k, n), INF, dtype=np.int64)
        self.contrib_sigma = np.zeros((num_hosts + 1, k, n), dtype=np.float64)
        self.master_seq = np.full(n, -1, dtype=np.int64)
        self.master_order: list[int] = []
        self._si_col = np.arange(k, dtype=np.int64)[:, None]

    # -- registration ------------------------------------------------------

    def register(self, gid: int) -> None:
        """Create the master for ``gid`` if absent (dict setdefault)."""
        if self.master_seq[gid] < 0:
            self.master_seq[gid] = len(self.master_order)
            self.master_order.append(int(gid))

    def register_new(self, gids: np.ndarray) -> None:
        """Register unseen gids in first-occurrence order."""
        fresh = self.master_seq[gids] < 0
        if not fresh.any():
            return
        cand = gids[fresh]
        _uniq, first = np.unique(cand, return_index=True)
        for g in cand[np.sort(first)].tolist():
            self.register(g)

    def initialize_source(self, si: int, gid: int) -> None:
        """Seed ``(0, si)`` at a batch source (virtual host −1 = row H)."""
        self.register(gid)
        self.ent_d[si, gid] = 0
        self.best_sigma[si, gid] = 1.0
        self.contrib_d[self.H, si, gid] = 0
        self.contrib_sigma[self.H, si, gid] = 1.0

    # -- derived views -----------------------------------------------------

    @property
    def present(self) -> np.ndarray:
        """Boolean ``(k, n)``: schedule entry exists for (si, gid)."""
        return self.ent_d != INF

    def schedule_key(self) -> np.ndarray:
        """``d * (k + 1) + si`` over unfired entries, else :data:`BIG`.

        The per-master minimum of this key is the head of the dict
        plane's sorted entry list past the fired prefix (send rounds are
        strictly increasing along it, so fired entries are a prefix).
        """
        act = (self.ent_d != INF) & ~self.fired
        return np.where(act, self.ent_d * (self.k + 1) + self._si_col, BIG)

    def order_by_seq(self, gids: np.ndarray) -> np.ndarray:
        """Permutation sorting ``gids`` into master creation order."""
        return np.argsort(self.master_seq[gids], kind="stable")

    # -- row converters ----------------------------------------------------

    def to_rows(self) -> "dict[int, MasterVertexState]":
        """The dict plane's ``{gid: MasterVertexState}`` in creation order."""
        from repro.core.mrbc import MasterVertexState

        out: dict[int, MasterVertexState] = {}
        for gid in self.master_order:
            ms = MasterVertexState()
            sis = np.nonzero(self.ent_d[:, gid] != INF)[0]
            ms.entries = sorted(
                (int(self.ent_d[si, gid]), int(si)) for si in sis
            )
            ms.best = {
                int(si): (int(self.ent_d[si, gid]), float(self.best_sigma[si, gid]))
                for si in sis
            }
            fired_sis = sis[self.fired[sis, gid]]
            for si in fired_sis[np.argsort(self.tau[fired_sis, gid], kind="stable")]:
                ms.tau[int(si)] = int(self.tau[si, gid])
            ms.sent_prefix = int(self.sent_prefix[gid])
            for si in sis:
                per: dict[int, tuple[int, float]] = {}
                if self.contrib_d[self.H, si, gid] != INF:
                    per[-1] = (
                        int(self.contrib_d[self.H, si, gid]),
                        float(self.contrib_sigma[self.H, si, gid]),
                    )
                for h in np.nonzero(self.contrib_d[: self.H, si, gid] != INF)[0]:
                    per[int(h)] = (
                        int(self.contrib_d[h, si, gid]),
                        float(self.contrib_sigma[h, si, gid]),
                    )
                if per:
                    ms.contrib[int(si)] = per
            out[int(gid)] = ms
        return out

    def from_rows(self, masters: "dict[int, MasterVertexState]") -> None:
        """Load dict-plane master state (checkpoint restore path)."""
        for gid, ms in masters.items():
            self.register(int(gid))
            self.sent_prefix[gid] = ms.sent_prefix
            for si, (d, sg) in ms.best.items():
                self.ent_d[si, gid] = d
                self.best_sigma[si, gid] = sg
            for si, t in ms.tau.items():
                self.fired[si, gid] = True
                self.tau[si, gid] = t
            for si, per in ms.contrib.items():
                for h, (d, sg) in per.items():
                    row = self.H if h < 0 else h
                    self.contrib_d[row, si, gid] = d
                    self.contrib_sigma[row, si, gid] = sg
