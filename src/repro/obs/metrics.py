"""The metrics registry: labeled counters, gauges, and histograms.

Series identity is ``(name, sorted label items)`` — the same name with
different labels is a different series, as in Prometheus.  All state is
plain Python numbers; a snapshot serializes every series as one
``metric`` event, so a recorded run's metrics travel in the same JSONL
stream as its spans.

Typical engine series: ``gluon.bytes{op=reduce}``,
``engine.rounds{phase=forward}``, ``mrbc.flatmap_entries`` (histogram of
per-master ``L_v`` occupancy), ``engine.load_imbalance{phase=...}``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.events import KIND_METRIC, Event
from repro.obs.sinks import Sink

#: Default histogram bucket upper bounds (powers of four; +inf implicit).
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def quantile(values: "list[float]", q: float) -> float:
    """Linear-interpolation quantile of raw samples (``q`` in [0, 1]).

    The shared sample-quantile math for the bench/profile renderers, so
    median/IQR tables do not each re-implement it.  Raises on an empty
    sample set.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    if not values:
        raise ValueError("quantile of empty sequence")
    vals = sorted(float(v) for v in values)
    if len(vals) == 1:
        return vals[0]
    pos = q * (len(vals) - 1)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0:
        return vals[lo]
    return vals[lo] + (vals[lo + 1] - vals[lo]) * frac


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; one extra
    overflow bucket counts the rest (the implicit ``+inf`` bound).
    """

    name: str
    labels: LabelKey = ()
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the buckets.

        Within the bucket containing the target rank the value is linearly
        interpolated between the bucket bounds, clamped to the observed
        ``[min, max]`` range (which also bounds the open-ended overflow
        bucket).  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            prev = cum
            cum += n
            if cum >= target:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = min(max(lo, self.min), self.max)
                hi = min(max(hi, self.min), self.max)
                frac = (target - prev) / n
                return lo + (hi - lo) * frac
        return self.max  # pragma: no cover - defensive (count says non-empty)

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Get-or-create registry for labeled metric series."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, str, LabelKey], Any] = {}

    def _get(self, cls, kind: str, name: str, labels: dict[str, Any], **kw):
        key = (kind, name, _label_key(labels))
        inst = self._series.get(key)
        if inst is None:
            inst = cls(name=name, labels=key[2], **kw)
            self._series[key] = inst
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series ``name{labels}``."""
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram series ``name{labels}``."""
        return self._get(Histogram, "histogram", name, labels, bounds=bounds)

    def series(self, name: str | None = None) -> list[Any]:
        """All series, optionally filtered by metric name."""
        return [
            s for s in self._series.values() if name is None or s.name == name
        ]

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: current value of a counter/gauge series (0 if absent)."""
        key_labels = _label_key(labels)
        for kind in ("counter", "gauge"):
            inst = self._series.get((kind, name, key_labels))
            if inst is not None:
                return inst.value
        return 0.0

    def summary(self) -> list[dict[str, Any]]:
        """One flat row per series for latency/hotspot tables.

        Counters and gauges report their value; histograms report count,
        mean, p50/p90/max via :meth:`Histogram.percentile` — the single
        place bucket math is done, so renderers (``repro profile``,
        ``repro bench``) just format the rows.
        """
        rows = []
        for (kind, name, labels), inst in sorted(
            self._series.items(), key=lambda kv: kv[0]
        ):
            row: dict[str, Any] = {
                "name": name,
                "labels": dict(labels),
                "type": kind,
            }
            if kind == "histogram":
                row.update(
                    count=inst.count,
                    mean=inst.mean(),
                    p50=inst.percentile(0.50),
                    p90=inst.percentile(0.90),
                    max=inst.max if inst.max is not None else 0.0,
                )
            else:
                row["value"] = inst.value
            rows.append(row)
        return rows

    def snapshot(self) -> list[dict[str, Any]]:
        """Serializable state of every series."""
        out = []
        for (kind, name, labels), inst in sorted(
            self._series.items(), key=lambda kv: kv[0]
        ):
            rec = {"name": name, "labels": dict(labels)}
            rec.update(inst.snapshot())
            out.append(rec)
        return out

    def emit_to(self, sink: Sink, next_seq: Callable[[], int]) -> int:
        """Emit one ``metric`` event per series; returns how many."""
        n = 0
        for rec in self.snapshot():
            sink.emit(
                Event(
                    kind=KIND_METRIC,
                    name=rec["name"],
                    seq=next_seq(),
                    attrs=rec,
                )
            )
            n += 1
        return n
