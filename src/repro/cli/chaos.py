"""``repro chaos``: run a seeded chaos campaign and report the verdict."""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.cli.common import (
    _load_graph_arg,
    add_logging_flags,
    log,
    setup_logging,
)
from repro.core.sampling import sample_sources


def chaos_main(argv: list[str]) -> int:
    """``repro chaos``: seeded randomized fault campaign over engines ×
    fault kinds × recovery policies.

    Every scenario runs through the fault harness in ``repair`` mode and
    is judged against the engine's fault-free run: recoverable scenarios
    must reproduce the BC vector *bit-for-bit*; degradable scenarios must
    salvage a :class:`~repro.resilience.supervisor.PartialResult` that is
    exact over the covered sources; neutral scenarios (policy, no faults)
    must keep the deterministic signature byte-identical.  Exit code 0
    iff every scenario passes; ``--report`` persists the versioned JSON
    campaign report.
    """
    from repro.resilience.chaos import CAMPAIGNS, run_campaign

    p = argparse.ArgumentParser(
        prog="repro chaos",
        description="Run a seeded chaos campaign (faults × engines × policies)",
    )
    p.add_argument("--campaign", choices=sorted(CAMPAIGNS),
                   default="smoke", help="campaign grid (default: smoke)")
    p.add_argument("--seed", type=int, default=7,
                   help="campaign seed; per-scenario fault seeds derive "
                        "from it deterministically (default: 7)")
    p.add_argument("--graph", default="er:30:3", metavar="SPEC",
                   help="edge-list file or generator spec (default: er:30:3)")
    p.add_argument("--sources", "-k", type=int, default=6,
                   help="number of sampled sources (default: 6)")
    p.add_argument("--hosts", type=int, default=4, help="simulated hosts")
    p.add_argument("--batch", type=int, default=3,
                   help="MRBC batch size; keep it below --sources so a "
                        "degraded run has surviving batches (default: 3)")
    p.add_argument("--tol", type=float, default=1e-9,
                   help="|BC - Brandes| tolerance for salvage checks")
    p.add_argument("--report", "-o", default=None, metavar="FILE",
                   help="write the JSON campaign report to FILE")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    g = _load_graph_arg(args.graph)
    log.info("graph: %s", g)
    sources = sample_sources(g, args.sources, seed=0)

    def tick(rec) -> None:
        log.info(
            "scenario %02d %-14s plan=%-9s policy=%-8s %s (%s)",
            rec.index, rec.algorithm, rec.plan, rec.policy,
            "PASS" if rec.passed else "FAIL", rec.detail,
        )

    report = run_campaign(
        g,
        sources,
        campaign=args.campaign,
        seed=args.seed,
        num_hosts=args.hosts,
        batch_size=args.batch,
        tol=args.tol,
        graph_desc=args.graph,
        progress=tick,
    )

    agg = report.aggregates()
    mttr = agg["mttr_rounds"]
    lat = agg["detection_latency_mean_rounds"]
    rows = [
        ["campaign", f"{report.campaign} (seed {report.seed})"],
        ["graph", f"{report.graph}, {report.num_sources} sources, "
                  f"{report.num_hosts} hosts, batch {report.batch_size}"],
        ["scenarios", "%d (%d passed, %d degraded)"
         % (agg["scenarios_total"], agg["scenarios_passed"],
            agg["scenarios_degraded"])],
        ["faults", "%d injected, %d detected, %d recovered"
         % (agg["faults_injected"], agg["faults_detected"],
            agg["recoveries"])],
        ["MTTR", "-" if mttr is None else f"{mttr:.1f} recovery round(s)"],
        ["detection latency", "-" if lat is None
         else "mean %.1f / max %d round(s)"
         % (lat, agg["detection_latency_max_rounds"])],
    ]
    for rec in report.failures:
        rows.append([
            f"FAIL #{rec.index}",
            f"{rec.algorithm} plan={rec.plan} policy={rec.policy}: {rec.detail}",
        ])
    print(format_table(["chaos campaign", ""], rows))

    if args.report:
        report.save(args.report)
        log.info("campaign report written to %s", args.report)

    print(f"verdict: {'PASS' if report.passed else 'FAIL'} "
          f"(campaign={report.campaign}, seed={report.seed})")
    return 0 if report.passed else 1
