"""Per-round and per-run statistics for the simulated engine.

These records are the raw material for the paper's measurements:

- **rounds** (Table 1): length of :attr:`EngineRun.rounds`;
- **communication volume** (Figure 2 bar labels): :attr:`EngineRun.total_bytes`;
- **load imbalance** (Table 1): ratio of max to mean per-host compute,
  averaged across rounds (:meth:`EngineRun.load_imbalance`);
- **computation / communication time breakdown** (Figures 2-3): produced
  by feeding an :class:`EngineRun` to :class:`repro.cluster.model.ClusterModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.timing import OpCounter


@dataclass
class RoundStats:
    """Statistics for a single BSP round."""

    round_index: int
    phase: str  # "forward" | "backward"
    #: Abstract work units per host for this round's compute phase.
    compute: list[OpCounter]
    #: Bytes leaving each host during this round's communication phase.
    bytes_out: np.ndarray
    #: Bytes arriving at each host.
    bytes_in: np.ndarray
    #: Aggregated pair messages leaving each host this round.
    msgs_out: np.ndarray = None  # type: ignore[assignment]
    #: Aggregated pair messages arriving at each host this round.
    msgs_in: np.ndarray = None  # type: ignore[assignment]
    #: Host-pair messages exchanged (Gluon sends one aggregated message
    #: per pair per round when there is data).
    pair_messages: int = 0
    #: Individual (vertex, source) label values synchronized.
    items_synced: int = 0
    #: Distinct vertex proxies touched by synchronization.
    proxies_synced: int = 0
    #: True for rounds that only exist because of a fault: retransmission
    #: rounds, stall barriers, and post-crash replays of lost rounds.
    recovery: bool = False

    @property
    def effective_phase(self) -> str:
        """Phase for time attribution: recovery rounds form their own phase.

        A replayed forward round keeps ``phase == "forward"`` (it runs the
        forward operator) but is *charged* to ``"recovery"`` — the paper's
        Figure 2 style breakdowns should show fault overhead separately,
        not inflate the algorithm's own phases.
        """
        return "recovery" if self.recovery else self.phase

    def max_compute_ops(self) -> int:
        """Work units of the busiest host (the BSP straggler)."""
        return max(c.total() for c in self.compute)

    def mean_compute_ops(self) -> float:
        """Average work units across hosts."""
        return float(np.mean([c.total() for c in self.compute]))

    def total_bytes(self) -> int:
        """Total bytes crossing the network this round."""
        return int(self.bytes_out.sum())

    def copy(self, round_index: int | None = None) -> "RoundStats":
        """Independent deep copy, optionally renumbered."""
        return RoundStats(
            round_index=self.round_index if round_index is None else round_index,
            phase=self.phase,
            compute=[c.copy() for c in self.compute],
            bytes_out=self.bytes_out.copy(),
            bytes_in=self.bytes_in.copy(),
            msgs_out=None if self.msgs_out is None else self.msgs_out.copy(),
            msgs_in=None if self.msgs_in is None else self.msgs_in.copy(),
            pair_messages=self.pair_messages,
            items_synced=self.items_synced,
            proxies_synced=self.proxies_synced,
            recovery=self.recovery,
        )


@dataclass
class EngineRun:
    """Accumulated statistics for one algorithm execution on the engine."""

    num_hosts: int
    rounds: list[RoundStats] = field(default_factory=list)
    #: When > 0, the next this-many rounds are marked as recovery replays.
    #: Drivers set it after a crash restart to the number of rounds the
    #: crashed attempt had executed — the re-execution is fault overhead.
    replay_countdown: int = 0

    def new_round(self, phase: str, recovery: bool = False) -> RoundStats:
        """Open a fresh round record (appended and returned)."""
        if self.replay_countdown > 0:
            self.replay_countdown -= 1
            recovery = True
        rs = RoundStats(
            round_index=len(self.rounds) + 1,
            phase=phase,
            compute=[OpCounter() for _ in range(self.num_hosts)],
            bytes_out=np.zeros(self.num_hosts, dtype=np.int64),
            bytes_in=np.zeros(self.num_hosts, dtype=np.int64),
            msgs_out=np.zeros(self.num_hosts, dtype=np.int64),
            msgs_in=np.zeros(self.num_hosts, dtype=np.int64),
            recovery=recovery,
        )
        self.rounds.append(rs)
        return rs

    @property
    def recovery_rounds(self) -> int:
        """Rounds attributable to fault recovery (retransmit/stall/replay)."""
        return sum(1 for r in self.rounds if r.recovery)

    # -- aggregates -----------------------------------------------------------

    @property
    def num_rounds(self) -> int:
        """Total BSP rounds executed."""
        return len(self.rounds)

    def rounds_in_phase(self, phase: str) -> int:
        """Rounds attributed to one phase ("forward"/"backward"/"recovery").

        Recovery rounds (including post-crash replays) count toward
        ``"recovery"``, not the algorithm phase they re-execute.
        """
        return sum(1 for r in self.rounds if r.effective_phase == phase)

    @property
    def total_bytes(self) -> int:
        """Total communication volume in bytes."""
        return sum(r.total_bytes() for r in self.rounds)

    @property
    def total_pair_messages(self) -> int:
        """Total aggregated host-pair messages."""
        return sum(r.pair_messages for r in self.rounds)

    @property
    def total_items_synced(self) -> int:
        """Total label values synchronized."""
        return sum(r.items_synced for r in self.rounds)

    @property
    def total_proxies_synced(self) -> int:
        """Total proxy synchronizations (the quantity §5.3 says is similar
        between SBBC and MRBC)."""
        return sum(r.proxies_synced for r in self.rounds)

    def per_host_compute(self) -> np.ndarray:
        """Total work units per host across all rounds."""
        totals = np.zeros(self.num_hosts, dtype=np.int64)
        for r in self.rounds:
            for h, c in enumerate(r.compute):
                totals[h] += c.total()
        return totals

    def load_imbalance(self) -> float:
        """Table 1's metric: mean over rounds of (max host ops / mean host ops).

        Rounds with no computation anywhere are skipped.
        """
        ratios = []
        for r in self.rounds:
            mean = r.mean_compute_ops()
            if mean > 0:
                ratios.append(r.max_compute_ops() / mean)
        return float(np.mean(ratios)) if ratios else 1.0

    def deterministic_signature(self) -> dict[str, int | float]:
        """The run's machine-comparable identity: counts only, no clocks.

        Same graph + sources + configuration ⇒ bit-identical signature;
        the bench trajectory (``repro bench``) stores and gates on these
        fields, so any change to rounds or communication volume is a
        loud diff rather than a silent drift.
        """
        return {
            "rounds": self.num_rounds,
            "bytes": self.total_bytes,
            "pair_messages": self.total_pair_messages,
            "items_synced": self.total_items_synced,
            "proxies_synced": self.total_proxies_synced,
            "load_imbalance": round(self.load_imbalance(), 9),
        }

    def phases(self) -> list[str]:
        """Distinct attributed phase labels in first-execution order."""
        seen: list[str] = []
        for r in self.rounds:
            if r.effective_phase not in seen:
                seen.append(r.effective_phase)
        return seen

    def merge(self, other: "EngineRun") -> None:
        """Append copies of another run's rounds (e.g. successive source
        batches).  ``other`` is left untouched: the appended rounds are
        renumbered deep copies, so neither run can corrupt the other."""
        if other.num_hosts != self.num_hosts:
            raise ValueError("cannot merge runs with different host counts")
        for rs in other.rounds:
            self.rounds.append(rs.copy(round_index=len(self.rounds) + 1))
