"""``repro compare``: phase-by-phase delta of two recorded runs."""

from __future__ import annotations

import argparse

from repro.cli.common import add_logging_flags, setup_logging


def compare_main(argv: list[str]) -> int:
    """``repro compare <runA> <runB>``: phase-by-phase delta of two runs.

    Each argument is a trace directory (``manifest.json`` +
    ``events.jsonl``) or a bare manifest file.  Prints the per-phase
    rounds/volume/time deltas, and — when both runs carry event streams —
    the critical-host shift per phase.
    """
    from repro.analysis.tracediff import (
        diff_runs,
        load_run,
        render_run_diff,
        render_run_diff_json,
    )

    p = argparse.ArgumentParser(
        prog="repro compare",
        description="Diff two recorded runs phase by phase",
    )
    p.add_argument("run_a", help="trace directory or manifest.json of run A")
    p.add_argument("run_b", help="trace directory or manifest.json of run B")
    p.add_argument("--format", choices=("table", "json"), default="table",
                   help="output format (default: table)")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    man_a, events_a = load_run(args.run_a)
    man_b, events_b = load_run(args.run_b)
    doc = diff_runs(man_a, man_b, events_a, events_b)
    if args.format == "json":
        print(render_run_diff_json(doc))
    else:
        print(render_run_diff(doc))
    return 0
