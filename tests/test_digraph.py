"""Unit tests for repro.graph.digraph."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph


def g_from(edges, n):
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return DiGraph(n, np.empty(0, np.int64), np.empty(0, np.int64))
    return DiGraph(n, arr[:, 0], arr[:, 1])


class TestConstruction:
    def test_empty_graph(self):
        g = g_from([], 5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.out_neighbors(0).size == 0

    def test_zero_vertices(self):
        g = g_from([], 0)
        assert g.num_vertices == 0

    def test_dedup_parallel_edges(self):
        g = g_from([(0, 1), (0, 1), (1, 2)], 3)
        assert g.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            g_from([(1, 1)], 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            g_from([(0, 5)], 3)
        with pytest.raises(ValueError):
            DiGraph(3, np.array([-1]), np.array([0]))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(3, np.array([0, 1]), np.array([2]))

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-1, np.empty(0, np.int64), np.empty(0, np.int64))


class TestAdjacency:
    def test_out_in_neighbors(self):
        g = g_from([(0, 1), (0, 2), (2, 1)], 3)
        assert g.out_neighbors(0).tolist() == [1, 2]
        assert g.out_neighbors(1).tolist() == []
        assert g.in_neighbors(1).tolist() == [0, 2]
        assert g.in_neighbors(0).tolist() == []

    def test_neighbors_sorted(self):
        g = g_from([(0, 3), (0, 1), (0, 2)], 4)
        assert g.out_neighbors(0).tolist() == [1, 2, 3]

    def test_degrees(self):
        g = g_from([(0, 1), (0, 2), (2, 1)], 3)
        assert g.out_degree(0) == 2
        assert g.in_degree(1) == 2
        assert g.out_degrees().tolist() == [2, 0, 1]
        assert g.in_degrees().tolist() == [0, 2, 1]

    def test_has_edge(self):
        g = g_from([(0, 1), (2, 1)], 3)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_edges_sorted_by_source(self):
        g = g_from([(2, 0), (0, 1), (1, 2)], 3)
        src, dst = g.edges()
        assert src.tolist() == [0, 1, 2]
        assert dst.tolist() == [1, 2, 0]

    def test_csr_views_read_only(self):
        g = g_from([(0, 1)], 2)
        with pytest.raises(ValueError):
            g.out_targets[0] = 0

    def test_in_out_edge_sets_agree(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 20, 100)
        dst = rng.integers(0, 20, 100)
        keep = src != dst
        g = DiGraph(20, src[keep], dst[keep])
        out_edges = {(u, int(v)) for u in range(20) for v in g.out_neighbors(u)}
        in_edges = {(int(u), v) for v in range(20) for u in g.in_neighbors(v)}
        assert out_edges == in_edges
        assert len(out_edges) == g.num_edges


class TestDerivedGraphs:
    def test_reverse(self):
        g = g_from([(0, 1), (1, 2)], 3)
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert r.num_edges == 2
        assert r.reverse() == g

    def test_to_undirected(self):
        g = g_from([(0, 1)], 2)
        u = g.to_undirected()
        assert u.has_edge(0, 1) and u.has_edge(1, 0)
        assert u.num_edges == 2

    def test_to_undirected_no_double(self):
        g = g_from([(0, 1), (1, 0)], 2)
        u = g.to_undirected()
        assert u.num_edges == 2

    def test_subgraph(self):
        g = g_from([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
        sub, old = g.subgraph(np.array([1, 2, 3]))
        assert sub.num_vertices == 3
        assert old.tolist() == [1, 2, 3]
        # Edges 1->2, 2->3 survive as 0->1, 1->2.
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert sub.num_edges == 2

    def test_subgraph_duplicate_rejected(self):
        g = g_from([(0, 1)], 2)
        with pytest.raises(ValueError):
            g.subgraph(np.array([0, 0]))


class TestEquality:
    def test_eq(self):
        a = g_from([(0, 1), (1, 2)], 3)
        b = g_from([(1, 2), (0, 1)], 3)
        assert a == b

    def test_neq_different_edges(self):
        assert g_from([(0, 1)], 3) != g_from([(0, 2)], 3)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(g_from([], 1))

    def test_repr(self):
        assert repr(g_from([(0, 1)], 2)) == "DiGraph(n=2, m=1)"
