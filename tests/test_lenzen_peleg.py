"""Tests for the Lenzen-Peleg baseline and MRBC's improvement over it."""

import numpy as np
import pytest

from repro.core.lenzen_peleg import lenzen_peleg_apsp
from repro.core.mrbc_congest import directed_apsp
from repro.graph.properties import bfs_distances
from tests.conftest import some_sources


class TestCorrectness:
    @pytest.mark.parametrize(
        "fixture", ["diamond", "er_graph", "road_graph", "dicycle"]
    )
    def test_distances_exact(self, fixture, request):
        g = request.getfixturevalue(fixture)
        res = lenzen_peleg_apsp(g)
        for s in range(g.num_vertices):
            assert np.array_equal(res.dist[s], bfs_distances(g, s)), s

    def test_kssp_variant(self, er_graph):
        srcs = some_sources(er_graph, 5)
        res = lenzen_peleg_apsp(er_graph, sources=srcs)
        for i, s in enumerate(srcs):
            assert np.array_equal(res.dist[i], bfs_distances(er_graph, s))

    def test_round_bound(self, er_graph):
        res = lenzen_peleg_apsp(er_graph, detect_termination=False)
        assert res.rounds <= 2 * er_graph.num_vertices

    def test_empty_sources_rejected(self, er_graph):
        with pytest.raises(ValueError):
            lenzen_peleg_apsp(er_graph, sources=[])


class TestMRBCImprovement:
    """Theorem 1's refinement claims, measured head to head."""

    @pytest.mark.parametrize(
        "fixture", ["er_graph", "powerlaw_graph", "webcrawl_graph"]
    )
    def test_mrbc_sends_no_more_messages(self, fixture, request):
        """MRBC sends exactly one value per (vertex, source); L-P
        retransmits improved pairs — so MRBC's forward message count is
        at most L-P's on every input."""
        g = request.getfixturevalue(fixture)
        lp = lenzen_peleg_apsp(g)
        mr = directed_apsp(g)
        assert mr.stats.count_for_tag("apsp") <= lp.stats.count_for_tag("lp")

    def test_retransmissions_exist_on_multipath_graphs(self, powerlaw_graph):
        """On graphs where longer paths arrive first, L-P provably
        retransmits: total vertex sends exceed reachable (v, s) pairs."""
        g = powerlaw_graph
        lp = lenzen_peleg_apsp(g)
        reachable_pairs = int((lp.dist >= 0).sum())
        assert lp.total_value_sends >= reachable_pairs
        mr = directed_apsp(g)
        mr_sends = sum(len(st.tau) for st in mr.states)
        assert mr_sends == reachable_pairs  # MRBC: exactly one each
        # And the gap is the measured improvement:
        assert lp.total_value_sends >= mr_sends

    def test_message_bound_2mn(self, er_graph):
        """The paper bounds the original at 2mn messages."""
        g = er_graph
        lp = lenzen_peleg_apsp(g, detect_termination=False)
        assert lp.stats.count_for_tag("lp") <= 2 * g.num_edges * g.num_vertices

    def test_rounds_comparable_under_detection(self, er_graph):
        """Both are 2n-bounded; with quiescence detection the two finish
        within ~20% of each other (greedy L-P can even finish first — the
        paper's round improvement comes from Algorithm 4, not from the
        position schedule itself)."""
        lp = lenzen_peleg_apsp(er_graph)
        mr = directed_apsp(er_graph)
        assert mr.rounds <= 1.2 * lp.rounds + 2
        assert lp.rounds <= 2 * er_graph.num_vertices

    def test_finalizer_beats_lp_without_detection(self, er_dense_sc):
        """Theorem 1 I.1 vs the original: without a quiescence detector,
        L-P must run its full 2n rounds while MRBC+Algorithm 4 stops at
        n + 5D."""
        g = er_dense_sc
        lp = lenzen_peleg_apsp(g, detect_termination=False)
        mr = directed_apsp(g, use_finalizer=True, detect_termination=False)
        assert lp.rounds == 2 * g.num_vertices
        assert mr.rounds < 2 * g.num_vertices
        assert mr.rounds < lp.rounds
