"""The telemetry event model and its JSONL wire format.

Every telemetry artifact — span begin/end, per-round engine samples,
metric series snapshots — is one :class:`Event`: a ``kind``, a ``name``,
a monotonically increasing sequence number, an optional wall-clock
timestamp, and a flat JSON-able attribute dict.  Events serialize one per
line (JSON Lines) so a recorded run can be streamed, grepped, and
re-aggregated without loading the whole file.

The format is versioned (:data:`EVENT_SCHEMA_VERSION`, the ``"v"`` field
of every line); :func:`parse_jsonl` rejects lines from a newer major
version rather than silently misreading them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: Bumped whenever a field changes meaning; readers refuse newer versions.
EVENT_SCHEMA_VERSION = 1

#: Well-known event kinds (free-form kinds are permitted too).
KIND_SPAN = "span"
KIND_ROUND = "round"
KIND_METRIC = "metric"
KIND_SIM_TIME = "sim_time"
KIND_LOG = "log"
#: Resilience subsystem: injected/detected faults and recovery actions.
KIND_FAULT = "fault"
KIND_RECOVERY = "recovery"
#: Opt-in phase-scoped profiler output (cProfile hotspots, memory peaks).
KIND_PROFILE = "profile"
#: Communication-volume observability: CONGEST bandwidth-bound violations.
KIND_COMM = "comm"


@dataclass
class Event:
    """One telemetry record.

    Attributes
    ----------
    kind:
        Record type, e.g. ``"span"``, ``"round"``, ``"metric"``.
    name:
        Record identity within the kind (span name, metric name, ...).
    seq:
        Session-monotonic sequence number (ties break file ordering).
    ts:
        Wall-clock UNIX timestamp when emitted, or ``None`` for derived
        records that have no meaningful emission instant.
    attrs:
        Flat JSON-able payload.
    """

    kind: str
    name: str
    seq: int = 0
    ts: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json_line(self) -> str:
        """One JSONL line (no trailing newline)."""
        rec: dict[str, Any] = {
            "v": EVENT_SCHEMA_VERSION,
            "kind": self.kind,
            "name": self.name,
            "seq": self.seq,
        }
        if self.ts is not None:
            rec["ts"] = self.ts
        if self.attrs:
            rec["attrs"] = self.attrs
        return json.dumps(rec, separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json_line(cls, line: str) -> "Event":
        """Parse one JSONL line (inverse of :meth:`to_json_line`)."""
        rec = json.loads(line)
        v = rec.get("v")
        if v != EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported telemetry event version {v!r} "
                f"(this reader understands {EVENT_SCHEMA_VERSION})"
            )
        return cls(
            kind=rec["kind"],
            name=rec["name"],
            seq=int(rec.get("seq", 0)),
            ts=rec.get("ts"),
            attrs=rec.get("attrs", {}),
        )


def iter_jsonl(lines: Iterable[str]) -> Iterator[Event]:
    """Parse an iterable of JSONL lines, skipping blank lines."""
    for line in lines:
        line = line.strip()
        if line:
            yield Event.from_json_line(line)


def parse_jsonl(text: str) -> list[Event]:
    """Parse a whole JSONL document into events."""
    return list(iter_jsonl(text.splitlines()))


def read_events(path) -> list[Event]:
    """Read every event from a JSONL file."""
    with open(path, encoding="utf-8") as fh:
        return list(iter_jsonl(fh))
