"""``repro.obs`` — unified telemetry: spans, metrics, events, manifests.

The observability subsystem gives every layer of the reproduction one
event model (see :mod:`repro.obs.events`):

- **span tracing** (:mod:`repro.obs.spans`) — hierarchical
  ``run → phase → round → host`` intervals with wall-clock *and*
  simulated-cluster-time attribution;
- **metrics** (:mod:`repro.obs.metrics`) — labeled counters, gauges, and
  histograms (messages/round, bytes/host, flat-map occupancy, load
  imbalance);
- **export** (:mod:`repro.obs.sinks`, :mod:`repro.obs.manifest`) — JSONL
  event streams plus a versioned run manifest written alongside the
  benchmark CSVs.

A module-level *current session* defaults to a disabled null session so
the instrumentation in the engines costs a flag check when off::

    from repro import obs
    from repro.obs import FileSink

    with obs.session(FileSink("events.jsonl"), model=ClusterModel(8)) as tele:
        res = mrbc_engine(g, sources=srcs, batch_size=8)
    # events.jsonl now holds spans, per-round samples, and metric snapshots

See ``docs/OBSERVABILITY.md`` for the span model and manifest schema, and
``repro trace`` for the command-line entry point.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.obs.bench import (
    BENCH_VERSION,
    DEFAULT_SUITE,
    SMOKE_SUITE,
    BenchCase,
    BenchComparison,
    compare_bench,
    deterministic_view,
    load_bench,
    run_case,
    run_suite,
    write_bench,
)
from repro.obs.chrome import chrome_trace, export_chrome_trace
from repro.obs.comm import (
    COMM_SCHEMA_VERSION,
    PLANE_CONGEST,
    PLANE_GLUON,
    WORD_BYTES,
    BoundViolation,
    CommLedger,
    CommTotals,
    congest_bound_words,
)
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    KIND_COMM,
    KIND_FAULT,
    KIND_PROFILE,
    KIND_RECOVERY,
    Event,
    iter_jsonl,
    parse_jsonl,
    read_events,
)
from repro.obs.manifest import (
    MANIFEST_VERSION,
    PhaseTotals,
    RunManifest,
    build_manifest,
    git_sha,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, quantile
from repro.obs.profile import PhaseProfiler, aggregate_profile_events
from repro.obs.rounds import (
    ROUNDS_SCHEMA_VERSION,
    RoundLedger,
    RoundState,
    UnitRounds,
)
from repro.obs.sinks import FileSink, MemorySink, NullSink, Sink
from repro.obs.spans import Span, SpanTracer
from repro.obs.session import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.model import ClusterModel

__all__ = [
    "BENCH_VERSION",
    "COMM_SCHEMA_VERSION",
    "DEFAULT_SUITE",
    "EVENT_SCHEMA_VERSION",
    "KIND_COMM",
    "KIND_FAULT",
    "KIND_PROFILE",
    "KIND_RECOVERY",
    "MANIFEST_VERSION",
    "PLANE_CONGEST",
    "PLANE_GLUON",
    "ROUNDS_SCHEMA_VERSION",
    "SMOKE_SUITE",
    "WORD_BYTES",
    "BenchCase",
    "BenchComparison",
    "BoundViolation",
    "CommLedger",
    "CommTotals",
    "Counter",
    "Event",
    "FileSink",
    "Gauge",
    "Histogram",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "PhaseProfiler",
    "PhaseTotals",
    "RoundLedger",
    "RoundState",
    "RunManifest",
    "Sink",
    "Span",
    "SpanTracer",
    "Telemetry",
    "UnitRounds",
    "aggregate_profile_events",
    "build_manifest",
    "chrome_trace",
    "compare_bench",
    "congest_bound_words",
    "current",
    "deterministic_view",
    "export_chrome_trace",
    "git_sha",
    "iter_jsonl",
    "load_bench",
    "load_manifest",
    "parse_jsonl",
    "quantile",
    "read_events",
    "run_case",
    "run_suite",
    "session",
    "write_bench",
    "write_manifest",
]

#: The always-available disabled session every hot path sees by default.
NULL_TELEMETRY = Telemetry()

_current: Telemetry = NULL_TELEMETRY


def current() -> Telemetry:
    """The active telemetry session (a disabled null session by default)."""
    return _current


@contextmanager
def session(
    sink: Sink | None = None,
    model: "ClusterModel | None" = None,
    profile: str | None = None,
    profile_top: int = 10,
    comm: "CommLedger | None" = None,
    rounds: "RoundLedger | None" = None,
) -> Iterator[Telemetry]:
    """Install a telemetry session as current for the ``with`` block.

    The session is closed on exit (metrics flushed into the sink, file
    handles released) and the previous session restored.  Sessions do not
    nest usefully — the inner one simply shadows the outer for its
    duration.  ``profile`` opts into phase-scoped profiling (see
    :class:`repro.obs.profile.PhaseProfiler`); ``comm`` attaches a
    :class:`~repro.obs.comm.CommLedger` the message planes record into,
    and ``rounds`` a :class:`~repro.obs.rounds.RoundLedger` the superstep
    runtime records into (both work with a null sink — accounting without
    event emission).
    """
    global _current
    tele = Telemetry(
        sink=sink,
        model=model,
        profile=profile,
        profile_top=profile_top,
        comm=comm,
        rounds=rounds,
    )
    prev = _current
    _current = tele
    try:
        yield tele
    finally:
        _current = prev
        tele.close()
