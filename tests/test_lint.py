"""repro.lint: per-rule fixtures, suppression mechanics, CLI, and the
static↔runtime cross-check.

Structure:

- one positive + one negative fixture snippet per shipped rule
  (``TestRuleFixtures``);
- pragma and baseline suppression, including the acceptance-criterion
  flips: removing a pragma / baseline entry turns the CLI exit non-zero
  (``TestSuppression``, ``TestCLI``);
- the dogfooding meta-test: ``repro lint src tests`` is clean against
  the committed baseline (``TestDogfood``);
- the cross-check: a schedule-violating MRBC master state is flagged
  *statically* by RL203 and *at runtime* by the InvariantChecker's
  ``timestamp_schedule`` invariant (``TestStaticRuntimeAgreement``).
"""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

import repro.core.mrbc as mrbc_mod
from repro.graph import generators as gen
from repro.lint import RULES, Baseline, ModuleInfo, lint_main, run_rules
from repro.lint.runner import lint_file, run_lint
from repro.resilience import ResilienceContext
from repro.resilience.errors import InvariantViolation

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings_for(source: str, relpath: str = "src/repro/fake/mod.py"):
    mod = ModuleInfo(path=relpath, relpath=relpath, source=dedent(source))
    return run_rules(mod)


def codes(source: str, relpath: str = "src/repro/fake/mod.py") -> set[str]:
    return {f.code for f in findings_for(source, relpath)}


class TestRuleFixtures:
    # -- RL101: unordered iteration in emission scopes -------------------------

    def test_rl101_flags_set_iteration_feeding_sends(self):
        src = """
            def compute_sends(self, rnd):
                return [(u, ("msg", 1)) for u in self.active_set.union(others)]
        """
        assert "RL101" in codes(src)

    def test_rl101_flags_set_valued_local(self):
        src = """
            def stage(self, pending_items):
                targets = set(self.dirty)
                for t in targets:
                    pending_items.append(t)
        """
        assert "RL101" in codes(src)

    def test_rl101_passes_sorted_iteration(self):
        src = """
            def compute_sends(self, rnd):
                return [(u, ("msg", 1)) for u in sorted(self.active_set.union(others))]
        """
        assert "RL101" not in codes(src)

    def test_rl101_ignores_sets_outside_emission_scopes(self):
        src = """
            def summarize(self):
                return sum(1 for x in set(self.seen))
        """
        assert "RL101" not in codes(src)

    # -- RL102: unseeded randomness --------------------------------------------

    def test_rl102_flags_global_random(self):
        src = """
            import random
            def pick(xs):
                return random.choice(xs)
        """
        assert "RL102" in codes(src)

    def test_rl102_flags_unseeded_default_rng(self):
        src = """
            import numpy as np
            def make():
                return np.random.default_rng()
        """
        assert "RL102" in codes(src)

    def test_rl102_passes_seeded_default_rng(self):
        src = """
            import numpy as np
            def make(seed):
                return np.random.default_rng(seed)
        """
        assert "RL102" not in codes(src)

    def test_rl102_exempts_tests(self):
        src = """
            import random
            def pick(xs):
                return random.choice(xs)
        """
        assert "RL102" not in codes(src, relpath="tests/test_fake.py")

    # -- RL103: wall clocks ----------------------------------------------------

    def test_rl103_flags_wall_clock_in_engine(self):
        src = """
            import time
            def step():
                return time.perf_counter()
        """
        assert "RL103" in codes(src)

    def test_rl103_exempts_obs_layer(self):
        src = """
            import time
            def step():
                return time.perf_counter()
        """
        assert "RL103" not in codes(src, relpath="src/repro/obs/timing_helper.py")

    # -- RL201: unbounded CONGEST payloads -------------------------------------

    def test_rl201_flags_container_payload(self):
        src = """
            from repro.congest.network import VertexProgram
            class P(VertexProgram):
                def compute_sends(self, rnd):
                    return [(u, ("all", list(self.dists))) for u in self.nbrs]
        """
        assert "RL201" in codes(src)

    def test_rl201_passes_scalar_payload(self):
        src = """
            from repro.congest.network import VertexProgram
            class P(VertexProgram):
                def compute_sends(self, rnd):
                    return [(u, ("d", self.dist, self.sigma)) for u in self.nbrs]
        """
        assert "RL201" not in codes(src)

    # -- RL202: direct state mutation ------------------------------------------

    def test_rl202_flags_direct_handler_call(self):
        src = """
            def drive(net, msg):
                net.programs[3].handle_message(0, 1, msg)
        """
        assert "RL202" in codes(src)

    def test_rl202_flags_foreign_state_write(self):
        src = """
            from repro.congest.network import VertexProgram
            class P(VertexProgram):
                def poke(self, other):
                    other.sigma = 0.0
        """
        assert "RL202" in codes(src)

    def test_rl202_passes_self_mutation_and_message_sends(self):
        src = """
            from repro.congest.network import VertexProgram
            class P(VertexProgram):
                def handle_message(self, rnd, sender, payload):
                    self.sigma_total = self.sigma_total + payload[1]
        """
        assert "RL202" not in codes(src)

    # -- RL203: flat-map schedule ----------------------------------------------

    def test_rl203_flags_wrong_constant(self):
        src = """
            def next_fire(self, rnd):
                d, si = self.entries[self.sent_prefix]
                due = d + self.sent_prefix + 2
                return due == rnd
        """
        assert "RL203" in codes(src)

    def test_rl203_passes_alg3_schedule(self):
        src = """
            def next_fire(self, rnd):
                d, si = self.entries[self.sent_prefix]
                due = d + self.sent_prefix + 1
                return due == rnd
        """
        assert "RL203" not in codes(src)

    def test_rl203_ignores_alg5_reverse_timestamp(self):
        # A_sv = R - tau + 1 contains a Sub: opaque, not a schedule chain.
        src = """
            def accumulation_round(self, R, tau, d):
                return R - tau + 1 + d
        """
        assert "RL203" not in codes(src)

    # -- RL204: hand-rolled round loops ----------------------------------------

    def test_rl204_flags_hand_rolled_round_loop(self):
        src = """
            def drive(run, gluon, pending):
                rnd = 0
                while True:
                    rnd += 1
                    rs = run.new_round("forward")
                    gluon.reduce_to_masters(pending, 12, 1, rs)
                    if not pending:
                        break
                return rnd
        """
        assert "RL204" in codes(src)

    def test_rl204_flags_congest_driver_loop(self):
        src = """
            def drive_network(programs, rnd):
                for prog in programs:
                    sends = prog.compute_sends(rnd)
        """
        assert "RL204" in codes(src)

    def test_rl204_passes_runtime_step_callback(self):
        src = """
            def drive(runtime, gluon, pending):
                def step(rnd, rs):
                    gluon.reduce_to_masters(pending, 12, 1, rs)
                    return bool(pending)
                return runtime.run_loop("forward", step)
        """
        assert "RL204" not in codes(src)

    def test_rl204_exempts_the_runtime_itself(self):
        src = """
            def run_loop(self, phase, step):
                rnd = 0
                while True:
                    rnd += 1
                    rs = self.run.new_round(phase)
                    if not step(rnd, rs):
                        break
                return rnd
        """
        assert "RL204" not in codes(
            src, relpath="src/repro/runtime/superstep.py"
        )

    def test_rl204_allows_vertex_program_delegation(self):
        # A vertex program may call a sub-program's compute_sends while
        # assembling its own sends (e.g. APSP delegating to the finalizer).
        src = """
            class Outer(VertexProgram):
                def compute_sends(self, rnd):
                    sends = []
                    for sub in self.subprograms:
                        sends.extend(sub.compute_sends(rnd))
                    return sends
        """
        assert "RL204" not in codes(src)

    # -- RL301: proxy reads before sync ----------------------------------------

    def test_rl301_flags_read_without_sync(self):
        src = """
            def harvest(hosts):
                return [st.fin_dist.sum() for st in hosts]
        """
        assert "RL301" in codes(src)

    def test_rl301_passes_read_after_sync(self):
        src = """
            def backward(self, gluon, pending, rs):
                gluon.reduce_to_masters(pending, 12, 1, rs)
                return self.st.fin_dist.sum()
        """
        assert "RL301" not in codes(src)

    def test_rl301_allows_delivery_writes(self):
        src = """
            def deliver(st, rows, vals):
                st.fin_dist[rows] = vals
        """
        assert "RL301" not in codes(src)

    # -- RL401: resilience plumbing --------------------------------------------

    def test_rl401_flags_entry_point_without_resilience(self):
        src = """
            def sssp_engine(g, num_hosts=8):
                return None
        """
        assert "RL401" in codes(src)

    def test_rl401_passes_entry_point_with_resilience(self):
        src = """
            def sssp_engine(g, num_hosts=8, resilience=None):
                return None
        """
        assert "RL401" not in codes(src)

    # -- RL402: span/sink hygiene ----------------------------------------------

    def test_rl402_flags_leaked_sink(self):
        src = """
            from repro.obs import FileSink
            def record(path):
                sink = FileSink(path)
                sink.emit(None)
        """
        assert "RL402" in codes(src)

    def test_rl402_passes_session_ownership_and_with(self):
        src = """
            from repro import obs
            from repro.obs import FileSink
            def record(path):
                sink = FileSink(path)
                with obs.session(sink):
                    pass
                with FileSink(path) as s2:
                    s2.emit(None)
        """
        assert "RL402" not in codes(src)

    def test_rl402_flags_unentered_span(self):
        src = """
            def run(tele):
                tele.span("forward")
        """
        assert "RL402" in codes(src)

    def test_rl402_passes_with_span(self):
        src = """
            def run(tele):
                with tele.span("forward"):
                    pass
        """
        assert "RL402" not in codes(src)

    # -- RL403: ledger-bypassing emission --------------------------------------

    def test_rl403_flags_sync_on_raw_substrate(self):
        src = """
            def forward(substrate, pending, rs):
                return substrate.reduce_to_masters(pending, 8, 1, rs)
        """
        assert "RL403" in codes(src)

    def test_rl403_flags_direct_byte_accounting(self):
        src = """
            def charge(rs, h, nbytes):
                rs.bytes_out[h] += nbytes
        """
        assert "RL403" in codes(src)

    def test_rl403_flags_stats_record_outside_plane(self):
        src = """
            def account(stats, payloads):
                stats.record_channel(payloads)
        """
        assert "RL403" in codes(src)

    def test_rl403_passes_plane_receiver(self):
        src = """
            def forward(gluon, pending, rs):
                return gluon.reduce_to_masters(pending, 8, 1, rs)
        """
        assert "RL403" not in codes(src)

    def test_rl403_passes_accounting_chokepoints(self):
        src = """
            def _account(self, rs, sender, receiver, nbytes):
                rs.bytes_out[sender] += nbytes
                rs.bytes_in[receiver] += nbytes
        """
        assert "RL403" not in codes(src, relpath="src/repro/engine/gluon.py")

    # -- RL404: swallowed resilience errors ------------------------------------

    def test_rl404_flags_swallowed_crash(self):
        src = """
            def step(runtime):
                try:
                    runtime.run_round()
                except HostCrashError:
                    pass
        """
        assert "RL404" in codes(src)

    def test_rl404_flags_tuple_catch_logged_only(self):
        src = """
            def step(runtime, log):
                try:
                    runtime.run_round()
                except (ValueError, ResilienceError) as err:
                    log.warning("ignoring %s", err)
        """
        assert "RL404" in codes(src)

    def test_rl404_passes_reraise(self):
        src = """
            def step(runtime):
                try:
                    runtime.run_round()
                except HostCrashError:
                    raise
        """
        assert "RL404" not in codes(src)

    def test_rl404_passes_routed_crash(self):
        src = """
            def step(runtime, ctx, attempt):
                try:
                    runtime.run_round()
                except HostCrashError as err:
                    ctx.on_crash(err, attempt)
        """
        assert "RL404" not in codes(src)

    def test_rl404_passes_degradation_routing(self):
        src = """
            def unit(ctx, work, index, srcs):
                try:
                    return work()
                except ResilienceError as err:
                    ctx.note_degraded(index, srcs, err)
                    return None
        """
        assert "RL404" not in codes(src)

    def test_rl404_ignores_unrelated_exceptions(self):
        src = """
            def step(runtime):
                try:
                    runtime.run_round()
                except ValueError:
                    pass
        """
        assert "RL404" not in codes(src)

    def test_rl404_exempts_resilience_package_and_tests(self):
        src = """
            def execute(run):
                try:
                    run()
                except ResilienceError as err:
                    return str(err)
        """
        assert "RL404" not in codes(
            src, relpath="src/repro/resilience/harness.py"
        )
        assert "RL404" not in codes(src, relpath="tests/test_whatever.py")

    # -- RL405: shadow round accounting ----------------------------------------

    def test_rl405_flags_adhoc_round_counter(self):
        src = """
            def run_forward(self, gluon):
                rounds = 0
                while self.step(gluon):
                    rounds += 1
                return rounds
        """
        assert "RL405" in codes(src)

    def test_rl405_flags_attribute_round_counter(self):
        src = """
            def advance(self):
                self.round_count += 1
                return self.round_count
        """
        assert "RL405" in codes(src)

    def test_rl405_flags_frontier_tally(self):
        src = """
            def run(self):
                frontier_size = 0
                for fires in self.per_host_fires:
                    frontier_size += len(fires)
                return frontier_size
        """
        assert "RL405" in codes(src)

    def test_rl405_passes_accumulating_run_loop_returns(self):
        src = """
            def drive(self, runtime, step):
                fwd_rounds = 0
                fwd_rounds += runtime.run_loop("forward", step)
                return fwd_rounds
        """
        assert "RL405" not in codes(src)

    def test_rl405_passes_unrelated_counters(self):
        src = """
            def tally(items):
                attempts = 0
                for it in items:
                    attempts += 1
                return attempts
        """
        assert "RL405" not in codes(src)

    def test_rl405_exempts_runtime_obs_and_tests(self):
        src = """
            def run_loop(self, phase, step):
                rnd = 0
                while step(rnd):
                    rnd += 1
                return rnd
        """
        assert "RL405" not in codes(
            src, relpath="src/repro/runtime/superstep.py"
        )
        assert "RL405" not in codes(src, relpath="src/repro/obs/rounds.py")
        assert "RL405" not in codes(src, relpath="tests/test_whatever.py")

    # -- RL501: aliased state containers escaping the plane --------------------

    def test_rl501_flags_alias_stored_and_passed_out(self):
        src = """
            class Engine:
                def leak(self, gid, sink):
                    ms = self.masters.get(gid)
                    sink.keep = ms
                    external.stash(ms)
        """
        found = findings_for(src, relpath="src/repro/core/mod.py")
        assert sum(1 for f in found if f.code == "RL501") == 2

    def test_rl501_passes_plane_internal_idioms(self):
        src = """
            class Engine:
                def ok(self, gid, lid):
                    ms = self.masters.get(gid)
                    self.masters[gid] = ms
                    st = self.hosts[0]
                    lst = st.local_lists[lid]
                    bisect.insort(lst, (1, 2))
                    self._touch(st)
                    return sorted(ms.entries)
        """
        assert "RL501" not in codes(src, relpath="src/repro/core/mod.py")

    def test_rl501_only_polices_state_modules(self):
        src = """
            def elsewhere(plane, out):
                st = plane.hosts[0]
                out.keep = st
        """
        assert "RL501" not in codes(src, relpath="src/repro/analysis/mod.py")

    # -- RL502: stateful closures escaping the runtime seams -------------------

    def test_rl502_flags_closure_passed_off_seam(self):
        src = """
            import threading

            def some_engine(pg, runtime, resilience=None):
                fired = []

                def step(rnd):
                    fired.append(rnd)
                    return False

                threading.Thread(target=step).start()
        """
        assert "RL502" in codes(src, relpath="src/repro/engine/mod.py")

    def test_rl502_passes_seam_and_same_module_consumers(self):
        src = """
            def _helper(live, body):
                return body() if live() else None

            def some_engine(pg, runtime, resilience=None):
                state = {"fires": 0}

                def live():
                    return state["fires"] < 3

                def step(rnd):
                    state["fires"] += 1
                    return live()

                runtime.run_loop("fwd", step, precheck=live)
                _helper(live, step)
                return sorted(pg.parts, key=lambda p: p.host)
        """
        assert "RL502" not in codes(src, relpath="src/repro/engine/mod.py")

    def test_rl502_flags_capturing_lambda_off_seam(self):
        src = """
            def some_engine(pg, registry, resilience=None):
                batch = [1, 2, 3]
                registry.defer(lambda: len(batch))
        """
        assert "RL502" in codes(src, relpath="src/repro/engine/mod.py")

    # -- RL503 (program scope): off-seam state writers -------------------------

    def test_rl503_flags_writer_unreachable_from_any_seam(self):
        from repro.lint.dataflow import analyze_sources

        src = dedent(
            """
            def orphan(st, v):
                st.cand_dist[0] = v

            def some_engine(pg, resilience=None):
                return pg
            """
        )
        found, _ = analyze_sources({"src/repro/core/mod.py": src})
        assert any(
            f.code == "RL503" and f.symbol == "orphan" for f in found
        )

    def test_rl503_passes_writer_reachable_from_driver(self):
        from repro.lint.dataflow import analyze_sources

        src = dedent(
            """
            def deliver(st, v):
                st.cand_dist[0] = v

            def some_engine(pg, resilience=None):
                deliver(pg.hosts[0], 1)
            """
        )
        found, _ = analyze_sources({"src/repro/core/mod.py": src})
        assert not any(f.code == "RL503" for f in found)

    # -- RL601 (program scope): module globals mutated in the round cone -------

    def test_rl601_flags_global_mutation_reached_from_step(self):
        from repro.lint.dataflow import analyze_sources

        src = dedent(
            """
            _CACHE = {}

            def step(rnd):
                helper()
                return False

            def helper():
                _CACHE["k"] = 1

            def some_engine(runtime, resilience=None):
                runtime.run_loop("fwd", step)
            """
        )
        found, _ = analyze_sources({"src/repro/core/mod.py": src})
        hits = [f for f in found if f.code == "RL601"]
        assert any(f.symbol == "helper" and "step" in f.chain for f in hits)

    def test_rl601_passes_global_mutation_outside_round_cone(self):
        from repro.lint.dataflow import analyze_sources

        src = dedent(
            """
            _REGISTRY = {}

            def register_algo(name, fn):
                _REGISTRY[name] = fn

            def step(rnd):
                return False

            def some_engine(runtime, resilience=None):
                runtime.run_loop("fwd", step)
            """
        )
        found, _ = analyze_sources({"src/repro/core/mod.py": src})
        assert not any(f.code == "RL601" for f in found)

    # -- RL602: telemetry/ledger field stores off the recording seams ----------

    def test_rl602_flags_direct_store_through_telemetry(self):
        src = """
            def report(tele, n):
                tele.counters["rounds"] = n
        """
        assert "RL602" in codes(src, relpath="src/repro/core/mod.py")

    def test_rl602_passes_seam_calls_and_receiver_binding(self):
        src = """
            class Engine:
                def __init__(self, tele):
                    self.tele = tele

                def report(self, rledger, n):
                    rledger.note(frontier=n)
                    self.tele.metrics.observe("x", n)
        """
        assert "RL602" not in codes(src, relpath="src/repro/core/mod.py")

    def test_rl602_exempts_obs_implementation(self):
        src = """
            def flush(tele):
                tele.buffer = []
        """
        assert "RL602" not in codes(src, relpath="src/repro/obs/telemetry.py")

    # -- RL603: cross-host subscripts inside host loops ------------------------

    def test_rl603_flags_foreign_host_index(self):
        src = """
            class Plane:
                def mix(self):
                    for h, st in enumerate(self.hosts):
                        other = self.hosts[0]
        """
        assert "RL603" in codes(src, relpath="src/repro/core/mod.py")

    def test_rl603_passes_own_index_and_non_host_loops(self):
        src = """
            class Plane:
                def ok(self, pg, deliveries):
                    for h, st in enumerate(self.hosts):
                        part = pg.parts[h]
                    for h, items in enumerate(deliveries):
                        st = self.hosts[h]
        """
        assert "RL603" not in codes(src, relpath="src/repro/core/mod.py")

    def test_rl603_exempts_communication_layer(self):
        src = """
            class Substrate:
                def exchange(self):
                    for h, st in enumerate(self.hosts):
                        peer = self.hosts[(h + 1) % 2]
        """
        assert "RL603" not in codes(src, relpath="src/repro/engine/gluon.py")

    # -- RL900: parse errors ---------------------------------------------------

    def test_rl900_on_syntax_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        active, _ = lint_file(bad, project_root=tmp_path)
        assert [f.code for f in active] == ["RL900"]

    def test_every_rule_has_fixture_coverage(self):
        """Acceptance criterion: each shipped rule flags >= 1 fixture here."""
        tested = {
            name.split("_")[1].upper()
            for name in dir(self)
            if name.startswith("test_rl")
        }
        assert set(RULES) <= tested


class TestSuppression:
    POSITIVE = """
        def compute_sends(self, rnd):
            return [(u, ("m", 1)) for u in set(self.nbrs)]
    """

    def _write(self, tmp_path: Path, source: str) -> Path:
        f = tmp_path / "src" / "mod.py"
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(dedent(source), encoding="utf-8")
        return f

    def test_trailing_pragma_suppresses(self, tmp_path):
        f = self._write(
            tmp_path,
            """
            def compute_sends(self, rnd):
                return [(u, ("m", 1)) for u in set(self.nbrs)]  # repro-lint: disable=RL101
            """,
        )
        active, suppressed = lint_file(f, project_root=tmp_path)
        assert active == []
        assert [s.code for s in suppressed] == ["RL101"]
        assert suppressed[0].suppressed_by == "pragma"

    def test_comment_line_above_pragma_suppresses(self, tmp_path):
        f = self._write(
            tmp_path,
            """
            def compute_sends(self, rnd):
                # repro-lint: disable=RL101 -- order irrelevant: payload is a constant
                return [(u, ("m", 1)) for u in set(self.nbrs)]
            """,
        )
        active, _ = lint_file(f, project_root=tmp_path)
        assert active == []

    def test_pragma_is_code_specific(self, tmp_path):
        f = self._write(
            tmp_path,
            """
            def compute_sends(self, rnd):
                return [(u, ("m", 1)) for u in set(self.nbrs)]  # repro-lint: disable=RL999
            """,
        )
        active, _ = lint_file(f, project_root=tmp_path)
        assert [f_.code for f_ in active] == ["RL101"]

    def test_baseline_suppresses_and_reports_stale(self, tmp_path):
        f = self._write(tmp_path, self.POSITIVE)
        found = run_lint([f], project_root=tmp_path)
        assert [x.code for x in found.active] == ["RL101"]

        baseline = Baseline.from_findings(found.active)
        again = run_lint([f], project_root=tmp_path, baseline=baseline)
        assert again.ok
        assert [s.suppressed_by for s in again.suppressed] == ["baseline"]
        assert again.stale_baseline == {}

        # Fix the finding: its baseline entry is reported stale.
        f.write_text(
            dedent(
                """
                def compute_sends(self, rnd):
                    return [(u, ("m", 1)) for u in sorted(set(self.nbrs))]
                """
            ),
            encoding="utf-8",
        )
        fixed = run_lint([f], project_root=tmp_path, baseline=baseline)
        assert fixed.ok and len(fixed.stale_baseline) == 1

    def test_fingerprint_survives_line_shift(self, tmp_path):
        f = self._write(tmp_path, self.POSITIVE)
        before = run_lint([f], project_root=tmp_path).active[0]
        f.write_text(
            "# a new leading comment\n\n" + dedent(self.POSITIVE),
            encoding="utf-8",
        )
        after = run_lint([f], project_root=tmp_path).active[0]
        assert before.line != after.line
        assert before.fingerprint() == after.fingerprint()


class TestCLI:
    def _project(self, tmp_path: Path, source: str) -> Path:
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\nbaseline = "lint-baseline.json"\n',
            encoding="utf-8",
        )
        f = tmp_path / "src" / "mod.py"
        f.parent.mkdir(parents=True)
        f.write_text(dedent(source), encoding="utf-8")
        return f

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self._project(tmp_path, "def fine():\n    return 1\n")
        assert lint_main([str(tmp_path / "src")]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._project(tmp_path, TestSuppression.POSITIVE)
        assert lint_main([str(tmp_path / "src")]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out and "FAIL" in out

    def test_write_baseline_then_clean_then_flip(self, tmp_path, capsys):
        """Acceptance criterion: removing a baseline entry flips the exit."""
        self._project(tmp_path, TestSuppression.POSITIVE)
        src_dir = str(tmp_path / "src")
        assert lint_main([src_dir, "--write-baseline"]) == 0
        baseline_path = tmp_path / "lint-baseline.json"
        assert baseline_path.is_file()
        capsys.readouterr()

        assert lint_main([src_dir]) == 0  # baselined -> PASS

        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        data["findings"] = {}
        baseline_path.write_text(json.dumps(data), encoding="utf-8")
        assert lint_main([src_dir]) == 1  # entry removed -> FAIL

    def test_removing_pragma_flips_exit(self, tmp_path, capsys):
        f = self._project(
            tmp_path,
            """
            def compute_sends(self, rnd):
                return [(u, ("m", 1)) for u in set(self.nbrs)]  # repro-lint: disable=RL101
            """,
        )
        src_dir = str(tmp_path / "src")
        assert lint_main([src_dir]) == 0
        f.write_text(
            f.read_text(encoding="utf-8").replace(
                "  # repro-lint: disable=RL101", ""
            ),
            encoding="utf-8",
        )
        assert lint_main([src_dir]) == 1

    def test_json_format(self, tmp_path, capsys):
        self._project(tmp_path, TestSuppression.POSITIVE)
        assert lint_main([str(tmp_path / "src"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["pass"] is False
        assert [f["code"] for f in payload["findings"]] == ["RL101"]
        assert "RL101" in payload["rules"]

    def test_select_and_disable(self, tmp_path, capsys):
        self._project(tmp_path, TestSuppression.POSITIVE)
        src_dir = str(tmp_path / "src")
        assert lint_main([src_dir, "--select", "RL203"]) == 0
        assert lint_main([src_dir, "--disable", "RL101"]) == 0
        assert lint_main([src_dir, "--select", "RL101"]) == 1

    def test_config_disable_respected(self, tmp_path, capsys):
        self._project(tmp_path, TestSuppression.POSITIVE)
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\ndisable = ["RL101"]\n', encoding="utf-8"
        )
        assert lint_main([str(tmp_path / "src")]) == 0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_main_cli_dispatches_lint(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        assert "RL101" in capsys.readouterr().out


class TestDogfood:
    def test_src_and_tests_clean_against_committed_baseline(self, capsys):
        """The acceptance meta-test: `repro lint src tests` exits 0."""
        rc = lint_main(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        )
        out = capsys.readouterr().out
        assert rc == 0, f"repro lint found new issues:\n{out}"

    def test_committed_baseline_parses(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert isinstance(baseline.entries, dict)


class _LateFireMasterState(mrbc_mod.MasterVertexState):
    """An off-by-one scheduler: fires entries one round late.

    Statically this is exactly what RL203 flags (``d + sent_prefix + 2``);
    at runtime the recorded τ violates ``τ = d + pos + 1`` and the
    InvariantChecker's ``timestamp_schedule`` check must catch it.
    """

    BROKEN_SRC = """
        def next_fire(self, rnd):
            d, si = self.entries[self.sent_prefix]
            due = d + self.sent_prefix + 2
            if due == rnd:
                self.sent_prefix += 1
                self.tau[si] = rnd
                return d, si, self.best[si][1]
            return None
    """

    def next_fire(self, rnd):
        if self.sent_prefix >= len(self.entries):
            return None
        d, si = self.entries[self.sent_prefix]
        # Deliberately broken schedule — this class exists to prove the
        # runtime checker catches what RL203 catches statically.
        due = d + self.sent_prefix + 2  # repro-lint: disable=RL203
        if due == rnd:
            self.sent_prefix += 1
            self.tau[si] = rnd
            return d, si, self.best[si][1]
        return None


class TestStaticRuntimeAgreement:
    """One violation, caught by both layers (ISSUE 4's cross-check)."""

    def test_static_rl203_flags_broken_schedule(self):
        assert "RL203" in codes(_LateFireMasterState.BROKEN_SRC)
        assert "RL203" not in codes(
            _LateFireMasterState.BROKEN_SRC.replace("+ 2", "+ 1")
        )

    def test_runtime_invariant_checker_flags_same_schedule(self, monkeypatch):
        g = gen.erdos_renyi(30, 3.0, seed=7)
        ctx = ResilienceContext(plan=None, mode="detect")
        monkeypatch.setattr(
            mrbc_mod, "MasterVertexState", _LateFireMasterState
        )
        with pytest.raises(InvariantViolation) as exc:
            mrbc_mod.mrbc_engine(
                g,
                sources=[0, 1, 2, 3],
                batch_size=4,
                num_hosts=2,
                resilience=ctx,
            )
        assert exc.value.invariant == "timestamp_schedule"

    def test_correct_schedule_passes_both_layers(self):
        g = gen.erdos_renyi(30, 3.0, seed=7)
        ctx = ResilienceContext(plan=None, mode="detect")
        res = mrbc_mod.mrbc_engine(
            g, sources=[0, 1, 2, 3], batch_size=4, num_hosts=2, resilience=ctx
        )
        assert res.bc is not None
