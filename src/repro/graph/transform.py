"""Graph transformations: component extraction, condensation, relabeling.

Algorithm 4's ``n + 5D`` termination needs a *strongly connected* input,
and the paper's estimated-diameter protocol implicitly works within the
reachable part of the graph; these helpers extract the relevant subgraphs:

- :func:`largest_scc` / :func:`largest_wcc` — induced subgraph of the
  biggest strongly/weakly connected component (with the id mapping);
- :func:`condensation` — the DAG of strongly connected components;
- :func:`reachable_subgraph` — everything reachable from a source set;
- :func:`relabel_by_degree` — degree-sorted vertex ids (a common loader
  normalization that improves locality).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph.digraph import DiGraph
from repro.graph.properties import bfs_distances


def _adjacency(g: DiGraph) -> sp.csr_matrix:
    src, dst = g.edges()
    return sp.csr_matrix(
        (np.ones(src.size, dtype=np.int8), (src, dst)),
        shape=(g.num_vertices, g.num_vertices),
    )


def _components(g: DiGraph, connection: str) -> tuple[int, np.ndarray]:
    if g.num_vertices == 0:
        return 0, np.empty(0, dtype=np.int64)
    n, labels = csgraph.connected_components(
        _adjacency(g), directed=True, connection=connection
    )
    return int(n), labels.astype(np.int64)


def strongly_connected_components(g: DiGraph) -> np.ndarray:
    """Per-vertex SCC labels (arbitrary but consistent numbering)."""
    return _components(g, "strong")[1]


def largest_scc(g: DiGraph) -> tuple[DiGraph, np.ndarray]:
    """Induced subgraph of the largest SCC and its original vertex ids."""
    ncomp, labels = _components(g, "strong")
    if ncomp == 0:
        return g, np.empty(0, dtype=np.int64)
    biggest = np.bincount(labels).argmax()
    return g.subgraph(np.nonzero(labels == biggest)[0])


def largest_wcc(g: DiGraph) -> tuple[DiGraph, np.ndarray]:
    """Induced subgraph of the largest weakly connected component."""
    if g.num_vertices == 0:
        return g, np.empty(0, dtype=np.int64)
    ncomp, labels = csgraph.connected_components(_adjacency(g), directed=False)
    labels = labels.astype(np.int64)
    biggest = np.bincount(labels).argmax()
    return g.subgraph(np.nonzero(labels == biggest)[0])


def condensation(g: DiGraph) -> tuple[DiGraph, np.ndarray]:
    """The SCC condensation DAG.

    Returns ``(dag, labels)`` where ``labels[v]`` is v's SCC id and the
    DAG has one vertex per SCC with an edge between two components iff
    some original edge crosses them.
    """
    ncomp, labels = _components(g, "strong")
    src, dst = g.edges()
    csrc = labels[src]
    cdst = labels[dst]
    keep = csrc != cdst
    return DiGraph(ncomp, csrc[keep], cdst[keep]), labels


def reachable_subgraph(
    g: DiGraph, sources: np.ndarray | list[int]
) -> tuple[DiGraph, np.ndarray]:
    """Induced subgraph of everything reachable from any source."""
    sources = np.asarray(sources, dtype=np.int64).ravel()
    if sources.size == 0:
        raise ValueError("need at least one source")
    reach = np.zeros(g.num_vertices, dtype=bool)
    for s in sources.tolist():
        reach |= bfs_distances(g, int(s)) >= 0
    return g.subgraph(np.nonzero(reach)[0])


def relabel_by_degree(g: DiGraph, descending: bool = True) -> tuple[DiGraph, np.ndarray]:
    """Renumber vertices by total degree.

    Returns ``(relabeled, old_ids)`` with ``old_ids[new] = old``.  Hubs get
    the smallest ids when ``descending`` — the layout web-graph loaders
    commonly produce.
    """
    deg = g.out_degrees() + g.in_degrees()
    order = np.argsort(-deg if descending else deg, kind="stable").astype(np.int64)
    remap = np.empty(g.num_vertices, dtype=np.int64)
    remap[order] = np.arange(g.num_vertices)
    src, dst = g.edges()
    return DiGraph(g.num_vertices, remap[src], remap[dst]), order
