"""Shared error hierarchy for the superstep runtime.

Every failure raised by the engines' communication layers derives from
:class:`ReproRuntimeError`, so callers can catch one base instead of
memorizing which layer raises what.  Errors that historically were
``ValueError``\\ s keep that ancestry (multiple inheritance), so existing
``except ValueError`` call sites — and tests matching on it — continue to
work unchanged.

This module must stay dependency-free: it sits below every other
``repro`` package (gluon, congest, resilience) in the import graph.
"""

from __future__ import annotations


class ReproRuntimeError(RuntimeError):
    """Base class for failures in the superstep runtime and its planes."""


class ChannelCapacityError(ReproRuntimeError):
    """A vertex tried to exceed the per-channel combining cap in one round."""


class NotAChannelError(ReproRuntimeError):
    """A vertex tried to send to a non-neighbor."""


class ChannelBandwidthError(ReproRuntimeError):
    """A channel exceeded the CONGEST bandwidth budget (B words per round).

    Raised by the CONGEST plane only when the attached
    :class:`~repro.obs.comm.CommLedger` was built with ``hard_fail=True``;
    otherwise violations are recorded and reported by ``repro comm``.
    """


class UnknownBroadcastTargetError(ReproRuntimeError, ValueError):
    """A Gluon broadcast named a target selector that does not exist."""


class PartitionMismatchError(ReproRuntimeError, ValueError):
    """A prebuilt partition was handed to an engine with a different graph."""
