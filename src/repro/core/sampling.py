"""Source sampling for approximate BC (paper §3.5 k-SSP and §5.1).

The BC of a vertex can be approximated by summing its betweenness scores
over a random subset of sources (Bader et al. 2007).  The paper's
experiments sample "a random *contiguous* chunk of sources" because the
MFBC baseline only accepts contiguous source ranges; both modes are
provided here so the benchmarks can match the paper's setup exactly while
tests can use the statistically nicer uniform mode.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.prng import make_rng


def sample_sources(
    g: DiGraph,
    k: int,
    mode: str = "contiguous",
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``k`` distinct source vertices.

    Parameters
    ----------
    mode:
        ``"contiguous"`` — a uniformly random chunk ``[start, start+k)``
        (the paper's choice, §5.1); ``"uniform"`` — a uniform random
        subset without replacement; ``"first"`` — deterministic ``0..k-1``.
    """
    n = g.num_vertices
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = make_rng(seed)
    if mode == "contiguous":
        start = int(rng.integers(0, n - k + 1))
        return np.arange(start, start + k, dtype=np.int64)
    if mode == "uniform":
        return np.sort(rng.choice(n, size=k, replace=False).astype(np.int64))
    if mode == "first":
        return np.arange(k, dtype=np.int64)
    raise ValueError(f"unknown sampling mode {mode!r}")
