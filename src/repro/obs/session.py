"""The telemetry session: spans + metrics + one sink, with a null default.

A :class:`Telemetry` object bundles a span tracer, a metrics registry,
and a sink.  The module-level *current* session (see
:mod:`repro.obs.__init__`) defaults to a disabled null session, so
instrumented engine code can unconditionally call::

    tele = obs.current()
    with tele.phase("forward", run):
        ...

and pay only a flag check plus one context-manager per phase when
telemetry is off.  The ``enabled`` flag is the contract: instrumentation
must not construct per-round or per-message objects unless it is True.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.events import KIND_ROUND, KIND_SIM_TIME, Event
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import NullSink, Sink
from repro.obs.spans import KIND_PHASE, KIND_RUN, Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.model import ClusterModel
    from repro.engine.stats import EngineRun, RoundStats


class Telemetry:
    """One telemetry session (sink + tracer + metrics registry).

    Parameters
    ----------
    sink:
        Event destination; ``None`` means a :class:`NullSink` (disabled).
    model:
        Optional :class:`~repro.cluster.model.ClusterModel` used to
        attribute simulated cluster time to round events and phase spans.
    profile:
        Opt-in phase-scoped profiling: ``"cpu"`` (cProfile hotspots),
        ``"memory"`` (tracemalloc peaks), or ``"all"``.  Ignored — no
        profiler object is even constructed — when the sink is disabled,
        so the default null session stays allocation-free.
    profile_top:
        Hotspots / allocation sites kept per phase digest.
    comm:
        Optional :class:`~repro.obs.comm.CommLedger` the message planes
        record communication volume into.  Independent of the ``enabled``
        flag: a ledger attached to an otherwise-null session still
        records (``repro bench`` uses this to gate comm counts without
        paying for event emission).
    rounds:
        Optional :class:`~repro.obs.rounds.RoundLedger` the superstep
        runtime records round-complexity state into (frontier sizes,
        settled counts, stage occupancy).  Independent of ``enabled`` for
        the same reason as ``comm``.
    """

    def __init__(
        self,
        sink: Sink | None = None,
        model: "ClusterModel | None" = None,
        profile: str | None = None,
        profile_top: int = 10,
        comm: "Any | None" = None,
        rounds: "Any | None" = None,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.enabled = self.sink.enabled
        self.model = model
        self.comm = comm
        self.rounds = rounds
        self.tracer = SpanTracer(self.sink)
        self.metrics = MetricsRegistry()
        self.profiler = None
        if profile is not None and self.enabled:
            from repro.obs.profile import PhaseProfiler

            self.profiler = PhaseProfiler(self.emit, mode=profile, top_n=profile_top)
            self.tracer.add_hooks(
                self.profiler.on_span_start, self.profiler.on_span_end
            )
        self._closed = False

    # -- metric shortcuts ------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.metrics.histogram(name, **labels)

    # -- raw events ------------------------------------------------------------

    def emit(self, kind: str, name: str, **attrs: Any) -> None:
        """Emit one free-form event (no-op when disabled)."""
        if not self.enabled:
            return
        self.sink.emit(
            Event(
                kind=kind,
                name=name,
                seq=self.tracer.next_seq(),
                ts=time.time(),
                attrs=attrs,
            )
        )

    # -- spans -----------------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, kind: str = KIND_RUN, **attrs: Any
    ) -> Iterator[Span | None]:
        """Open a span for the duration of the ``with`` block.

        Yields ``None`` when the session is disabled, so callers can guard
        attribute updates with ``if sp is not None``.
        """
        if not self.enabled:
            yield None
            return
        sp = self.tracer.start(name, kind=kind, **attrs)
        try:
            yield sp
        finally:
            self.tracer.end(sp)

    @contextmanager
    def phase(
        self, name: str, run: "EngineRun | None" = None, **attrs: Any
    ) -> Iterator[Span | None]:
        """Span one engine phase and emit its rounds as ``round`` events.

        When ``run`` is given, every :class:`RoundStats` appended to it
        during the block is emitted as one columnar round event (per-host
        op and byte arrays, simulated times if a model is attached), and
        the phase span closes with per-phase totals — the raw material for
        the Figure 2 computation/communication breakdown.
        """
        if not self.enabled:
            yield None
            return
        sp = self.tracer.start(f"phase:{name}", kind=KIND_PHASE, phase=name, **attrs)
        start = len(run.rounds) if run is not None else 0
        try:
            yield sp
        finally:
            if run is not None:
                self._close_phase(sp, name, run, start)
            self.tracer.end(sp)

    def _close_phase(
        self, sp: Span, name: str, run: "EngineRun", start: int
    ) -> None:
        """Emit round events for ``run.rounds[start:]`` and phase totals."""
        new_rounds = run.rounds[start:]
        total_bytes = 0
        total_items = 0
        total_msgs = 0
        comp_s = 0.0
        comm_s = 0.0
        imb = []
        for rs in new_rounds:
            self._emit_round(sp, rs)
            total_bytes += rs.total_bytes()
            total_items += rs.items_synced
            total_msgs += rs.pair_messages
            if self.model is not None:
                t = self.model.time_round(rs)
                comp_s += t.computation
                comm_s += t.communication
            mean = rs.mean_compute_ops()
            if mean > 0:
                imb.append(rs.max_compute_ops() / mean)
        sp.set(
            rounds=len(new_rounds),
            bytes=total_bytes,
            items_synced=total_items,
            pair_messages=total_msgs,
            load_imbalance=(sum(imb) / len(imb)) if imb else 1.0,
        )
        if self.model is not None:
            sp.set(sim_computation_s=comp_s, sim_communication_s=comm_s)
        m = self.metrics
        m.counter("engine.rounds", phase=name).inc(len(new_rounds))
        m.counter("engine.bytes", phase=name).inc(total_bytes)
        m.counter("engine.items_synced", phase=name).inc(total_items)
        m.counter("engine.pair_messages", phase=name).inc(total_msgs)
        if imb:
            m.histogram("engine.load_imbalance", phase=name).observe(
                sum(imb) / len(imb)
            )

    def _emit_round(self, sp: Span, rs: "RoundStats") -> None:
        attrs: dict[str, Any] = {
            "parent_id": sp.span_id,
            "round": rs.round_index,
            "phase": rs.phase,
            "bytes": rs.total_bytes(),
            "pair_messages": rs.pair_messages,
            "items_synced": rs.items_synced,
            "proxies_synced": rs.proxies_synced,
            # Host-level attribution, columnar: index h = host h.
            "host_ops": [c.total() for c in rs.compute],
            "host_bytes_out": rs.bytes_out.tolist(),
            "host_bytes_in": rs.bytes_in.tolist(),
        }
        if rs.recovery:
            attrs["recovery"] = True
        if self.rounds is not None:
            st = self.rounds.state_for_global(rs.round_index)
            if st is not None:
                # Algorithm-state enrichment: the Perfetto exporter turns
                # these into frontier-size counter tracks.
                attrs["frontier"] = st.frontier
                attrs["settled"] = st.settled
                if st.stage_depth:
                    attrs["stage_depth"] = st.stage_depth
        if self.model is not None:
            t = self.model.time_round(rs)
            attrs["sim_computation_s"] = t.computation
            attrs["sim_communication_s"] = t.communication
        self.sink.emit(
            Event(
                kind=KIND_ROUND,
                name=f"round:{rs.phase}",
                seq=self.tracer.next_seq(),
                attrs=attrs,
            )
        )

    def emit_sim_time(self, name: str, sim: Any, **attrs: Any) -> None:
        """Record one cluster-model time conversion as a ``sim_time`` event."""
        if not self.enabled:
            return
        self.emit(
            KIND_SIM_TIME,
            name,
            computation_s=sim.computation,
            communication_s=sim.communication,
            barrier_s=sim.barrier,
            wire_s=sim.wire,
            serialization_s=sim.serialization,
            total_s=sim.total,
            rounds=sim.num_rounds,
            **attrs,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush the metric registry into the sink and close it (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.profiler is not None:
            self.profiler.close()
        if self.enabled:
            self.metrics.emit_to(self.sink, self.tracer.next_seq)
        self.sink.close()
