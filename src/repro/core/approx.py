"""Scaled betweenness-centrality estimation (Bader et al. 2007).

The paper approximates BC "by summing the betweenness scores of that
vertex for randomly sampled sources" (§5.1) — an *unscaled* partial sum,
identical across algorithms given identical sources.  Bader et al.'s
estimator additionally rescales the partial sum by ``n / k`` so that it is
an unbiased estimate of the exact BC value; this module provides that
scaled estimator on top of any of the library's BC engines, plus an
adaptive variant that grows the sample until the estimate of a pivot
vertex stabilizes (the paper's cited technique).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.brandes import brandes_bc
from repro.core.sampling import sample_sources
from repro.graph.digraph import DiGraph
from repro.utils.prng import make_rng

#: Signature of a sampled-BC backend: (graph, sources) -> per-vertex sums.
Backend = Callable[[DiGraph, np.ndarray], np.ndarray]


def _brandes_backend(g: DiGraph, sources: np.ndarray) -> np.ndarray:
    return brandes_bc(g, sources=sources)


@dataclass(frozen=True)
class ApproxResult:
    """A scaled BC estimate."""

    bc_estimate: np.ndarray
    sources: np.ndarray
    scale: float


def approximate_bc(
    g: DiGraph,
    num_sources: int,
    backend: Backend = _brandes_backend,
    mode: str = "uniform",
    seed: int | None = None,
) -> ApproxResult:
    """Unbiased scaled BC estimate from ``num_sources`` sampled sources.

    ``backend`` may be any engine in the library, e.g.
    ``lambda g, s: mrbc_engine(g, sources=s).bc``.
    """
    n = g.num_vertices
    if not 1 <= num_sources <= n:
        raise ValueError(f"num_sources must be in [1, {n}]")
    sources = sample_sources(g, num_sources, mode=mode, seed=seed)
    partial = backend(g, sources)
    scale = n / num_sources
    return ApproxResult(
        bc_estimate=partial * scale, sources=sources, scale=scale
    )


def adaptive_bc_of_vertex(
    g: DiGraph,
    vertex: int,
    c: float = 5.0,
    max_fraction: float = 1.0,
    seed: int | None = None,
) -> tuple[float, int]:
    """Bader et al.'s adaptive estimator for one vertex's BC.

    Samples sources one at a time (without replacement) until the
    accumulated dependency of the sampled sources on ``vertex`` exceeds
    ``c · n``, then returns the scaled estimate and the number of samples
    used.  High-centrality vertices stop early; peripheral ones may need
    the whole vertex set (bounded by ``max_fraction · n``).
    """
    n = g.num_vertices
    if not 0 <= vertex < n:
        raise ValueError("vertex out of range")
    rng = make_rng(seed)
    order = rng.permutation(n)
    limit = max(1, int(np.ceil(max_fraction * n)))

    from repro.baselines.brandes import brandes_dependencies

    acc = 0.0
    used = 0
    for s in order[:limit]:
        s = int(s)
        used += 1
        if s != vertex:
            _, _, delta = brandes_dependencies(g, s)
            acc += float(delta[vertex])
        if acc >= c * n:
            break
    return acc * n / used, used
