"""Recovery orchestration: declarative policies and graceful degradation.

PR 2 gave the repository one recovery *mechanism* — replay from the
latest checkpoint — but no *policy*: nothing decided how long to wait on
a stalled host, how many restarts a run deserves, how often to snapshot,
or what to salvage when bounded recovery is exhausted.  This module is
that policy layer:

- :class:`RecoveryPolicy` — a declarative bundle of the recovery knobs:
  bounded channel retries, bounded restart escalation, deterministic
  *sim-time* exponential backoff between restarts (charged as recovery
  rounds, so the cost shows up in Figure 2-style breakdowns), a per-round
  stall deadline that converts silent stragglers into detectable
  :class:`~repro.resilience.errors.HostTimeoutError` failures, and the
  checkpoint cadence/retention the guarded round loop uses.  Named
  presets live in :data:`POLICIES`; drivers accept ``policy=`` (a name or
  an instance) next to ``resilience=``.
- :class:`Supervisor` — wraps one driver execution.  The paper's batched
  structure makes source batches natural failure domains: the supervisor
  runs each batch as a unit, records a :class:`BatchStatus` per unit,
  and — when the policy says ``degrade`` — converts an unrecoverable
  unit failure into a skipped batch instead of an aborted run.
- :class:`PartialResult` — what graceful degradation salvages: the BC
  contributions of every completed batch, per-batch completion status,
  source coverage, and a sampled-BC-style additive error bound for the
  coverage-scaled estimate (Crescenzi–Fraigniaud–Paz ground the
  treat-the-survivors-as-a-sample reading; see :meth:`PartialResult
  .error_bound`).

Policy attachment is *neutral*: with no faults firing, a driver run with
a policy attached produces a byte-identical deterministic signature and
BC output (the chaos harness and ``repro bench --compare`` both gate
this).  All backoff/deadline costs are charged only when a fault
actually materializes, and they are charged in simulated rounds — never
wall-clock — so recovery experiments stay exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, TypeVar

import numpy as np

from repro.resilience.errors import HostCrashError, ResilienceError

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic sim-time exponential backoff between restarts.

    Restart attempt ``a`` waits ``min(cap_rounds, base_rounds *
    multiplier**(a-1))`` simulated rounds before replaying (charged to
    the ``recovery`` phase).  ``base_rounds=0`` disables waiting.  No
    jitter on purpose: randomized backoff would make recovery overhead
    seed-dependent, breaking the exact-reproducibility contract.
    """

    base_rounds: int = 1
    multiplier: float = 2.0
    cap_rounds: int = 8

    def __post_init__(self) -> None:
        if self.base_rounds < 0:
            raise ValueError("base_rounds must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.cap_rounds < 0:
            raise ValueError("cap_rounds must be >= 0")

    def rounds_before(self, attempt: int) -> int:
        """Backoff rounds charged before restart attempt ``attempt`` (1-based)."""
        if self.base_rounds == 0:
            return 0
        raw = self.base_rounds * self.multiplier ** max(0, attempt - 1)
        return min(self.cap_rounds, int(math.ceil(raw)))

    def to_dict(self) -> dict[str, Any]:
        return {
            "base_rounds": self.base_rounds,
            "multiplier": self.multiplier,
            "cap_rounds": self.cap_rounds,
        }


@dataclass(frozen=True)
class RecoveryPolicy:
    """Declarative recovery policy for one driver execution.

    Attributes
    ----------
    max_retries:
        Channel retransmissions per faulty sync before the fault is
        unrecoverable (the channel guard's bounded-repair budget).
    max_restarts:
        Crash restarts per recovery unit before escalation gives up.
    backoff:
        Sim-time wait schedule between restarts (see
        :class:`BackoffPolicy`).
    stall_timeout_rounds:
        Per-round deadline on host stalls: a stall longer than this many
        rounds is converted into a :class:`~repro.resilience.errors
        .HostTimeoutError` (handled like a crash) after waiting out the
        deadline.  ``None`` waits out any stall, however long — the
        classic BSP barrier semantics.
    checkpoint_interval:
        Rounds between snapshots in the guarded (checkpointed) loop.
    checkpoint_retention:
        How many checkpoint tags the store retains (older tags are
        pruned); ``None`` retains everything.
    degrade:
        On an unrecoverable unit failure, salvage completed units into a
        :class:`PartialResult` instead of raising — per-batch graceful
        degradation.
    """

    name: str = "custom"
    max_retries: int = 5
    max_restarts: int = 3
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    stall_timeout_rounds: int | None = None
    checkpoint_interval: int = 4
    checkpoint_retention: int | None = 4
    degrade: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.max_restarts < 0:
            raise ValueError("retry/restart budgets must be >= 0")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.checkpoint_retention is not None and self.checkpoint_retention < 1:
            raise ValueError("checkpoint_retention must be >= 1 or None")
        if self.stall_timeout_rounds is not None and self.stall_timeout_rounds < 0:
            raise ValueError("stall_timeout_rounds must be >= 0 or None")

    def with_name(self, name: str) -> "RecoveryPolicy":
        return replace(self, name=name)

    def configure(self, ctx) -> None:
        """Attach this policy to a :class:`~repro.resilience.context
        .ResilienceContext`: sync the bounded-recovery budgets and the
        checkpoint retention, and make the context consult the policy for
        backoff and stall deadlines."""
        ctx.policy = self
        ctx.max_retries = self.max_retries
        ctx.max_restarts = self.max_restarts
        ctx.checkpoints.retention = self.checkpoint_retention

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "max_retries": self.max_retries,
            "max_restarts": self.max_restarts,
            "backoff": self.backoff.to_dict(),
            "stall_timeout_rounds": self.stall_timeout_rounds,
            "checkpoint_interval": self.checkpoint_interval,
            "checkpoint_retention": self.checkpoint_retention,
            "degrade": self.degrade,
        }

    @classmethod
    def from_dict(cls, rec: dict[str, Any]) -> "RecoveryPolicy":
        rec = dict(rec)
        backoff = rec.pop("backoff", None)
        if backoff is not None:
            rec["backoff"] = BackoffPolicy(**backoff)
        return cls(**rec)


#: Named policy presets (the ``policies`` axis of a chaos campaign).
#:
#: - ``default`` — PR 2's implicit behavior made explicit: generous retry
#:   and restart budgets, modest backoff, wait out stalls, abort on
#:   unrecoverable failure.
#: - ``failfast`` — minimal budgets with graceful degradation: one retry
#:   round, zero restarts, no backoff; an unrecoverable unit is dropped
#:   and the run salvages what completed.  Exercises the
#:   :class:`PartialResult` path deterministically.
#: - ``patient`` — large budgets, aggressive backoff, and a 1-round stall
#:   deadline that converts stragglers into restarts; degrades only after
#:   escalation is exhausted.
POLICIES: dict[str, RecoveryPolicy] = {
    "default": RecoveryPolicy(name="default"),
    "failfast": RecoveryPolicy(
        name="failfast",
        max_retries=1,
        max_restarts=0,
        backoff=BackoffPolicy(base_rounds=0),
        checkpoint_interval=2,
        checkpoint_retention=2,
        degrade=True,
    ),
    "patient": RecoveryPolicy(
        name="patient",
        max_retries=8,
        max_restarts=5,
        backoff=BackoffPolicy(base_rounds=2, multiplier=2.0, cap_rounds=16),
        stall_timeout_rounds=1,
        checkpoint_interval=4,
        checkpoint_retention=4,
        degrade=True,
    ),
}


def get_policy(policy: "RecoveryPolicy | str | None") -> RecoveryPolicy | None:
    """Resolve a policy argument: an instance, a preset name, or None."""
    if policy is None or isinstance(policy, RecoveryPolicy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown recovery policy {policy!r} "
            f"(presets: {', '.join(sorted(POLICIES))})"
        ) from None


def attach_policy(resilience, policy: "RecoveryPolicy | str | None"):
    """Driver-side policy resolution: returns ``(ctx, supervisor)``.

    With no policy the driver keeps its legacy behavior exactly
    (``supervisor`` is None).  With a policy, a bare
    :class:`~repro.resilience.context.ResilienceContext` is created when
    the caller did not pass one (policy attachment without a fault plan
    must be valid — and neutral), the policy is configured onto the
    context, and a :class:`Supervisor` is returned to wrap the driver's
    recovery units.
    """
    policy = get_policy(policy)
    if policy is None:
        return resilience, None
    if resilience is None:
        from repro.resilience.context import ResilienceContext

        resilience = ResilienceContext(mode="repair")
    policy.configure(resilience)
    return resilience, Supervisor(resilience, policy)


# -- graceful degradation --------------------------------------------------------


@dataclass
class BatchStatus:
    """Completion record for one failure domain (an MRBC source batch, an
    SBBC source)."""

    index: int
    sources: list[int]
    completed: bool
    failure: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "sources": list(self.sources),
            "completed": self.completed,
            "failure": self.failure,
        }


@dataclass
class PartialResult:
    """What graceful degradation salvaged from a partially failed run.

    ``bc`` sums the exact per-source dependency contributions of every
    *completed* batch — for the covered sources it is exact BC, bit-for-
    bit what a fault-free run over those batches computes.  The failed
    batches' sources are simply missing, so ``bc`` is a lower bound on
    the full-source BC and :meth:`scaled_bc` is the coverage-corrected
    estimate with :meth:`error_bound` as its confidence radius.
    """

    bc: np.ndarray
    batches: list[BatchStatus]
    requested_sources: int
    #: ``n - 1``-style normalization base for the error bound (the max a
    #: single source's dependency contribution to one vertex can reach).
    num_vertices: int

    @property
    def covered_sources(self) -> np.ndarray:
        """Sources of completed batches, in batch order."""
        out: list[int] = []
        for st in self.batches:
            if st.completed:
                out.extend(st.sources)
        return np.asarray(out, dtype=np.int64)

    @property
    def failed_sources(self) -> np.ndarray:
        out: list[int] = []
        for st in self.batches:
            if not st.completed:
                out.extend(st.sources)
        return np.asarray(out, dtype=np.int64)

    @property
    def coverage(self) -> float:
        """Fraction of requested sources whose contributions were salvaged."""
        if self.requested_sources == 0:
            return 0.0
        return self.covered_sources.size / self.requested_sources

    def scaled_bc(self) -> np.ndarray:
        """Coverage-corrected BC estimate: treat the surviving batches as
        a sample of the requested sources and scale up (the estimator of
        sampled BC à la Crescenzi–Fraigniaud–Paz)."""
        m = self.covered_sources.size
        if m == 0:
            return np.zeros_like(self.bc)
        return self.bc * (self.requested_sources / m)

    def error_bound(self, confidence: float = 0.95) -> float:
        """Additive per-vertex bound on ``scaled_bc`` at ``confidence``.

        Hoeffding over the ``m`` surviving sources: each source's
        dependency contribution to a fixed vertex lies in ``[0, n-1]``,
        so the coverage-scaled sum deviates from the true ``k``-source BC
        by at most ``k * (n-1) * sqrt(ln(2/(1-confidence)) / (2m))``.
        Failure domains are *not* a uniform sample (faults hit specific
        batches), so this is the exchangeability heuristic the docs
        caveat — exact coverage is what :attr:`covered_sources` reports.
        """
        m = self.covered_sources.size
        if m == 0:
            return float("inf")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        delta = 1.0 - confidence
        return (
            self.requested_sources
            * max(1, self.num_vertices - 1)
            * math.sqrt(math.log(2.0 / delta) / (2.0 * m))
        )

    def summary(self) -> dict[str, Any]:
        """JSON-able degradation report (lands in manifests and the chaos
        campaign report)."""
        return {
            "requested_sources": self.requested_sources,
            "covered_sources": [int(s) for s in self.covered_sources],
            "failed_sources": [int(s) for s in self.failed_sources],
            "coverage": self.coverage,
            "batches": [st.to_dict() for st in self.batches],
            "error_bound_95": (
                None
                if self.covered_sources.size == 0
                else self.error_bound(0.95)
            ),
        }


class Supervisor:
    """Per-run recovery orchestrator: unit tracking + graceful degradation.

    One supervisor accompanies one driver execution.  Drivers call
    :meth:`run_unit` once per failure domain; the supervisor lets the
    runtime's restart policies do their bounded work and only steps in
    when they give up — recording the unit as failed and (policy
    permitting) letting the run continue with the surviving units.
    """

    def __init__(self, ctx, policy: RecoveryPolicy) -> None:
        self.ctx = ctx
        self.policy = policy
        self.statuses: list[BatchStatus] = []

    @property
    def any_failed(self) -> bool:
        return any(not st.completed for st in self.statuses)

    def run_unit(
        self, index: int, sources, work: Callable[[], T]
    ) -> tuple[T | None, bool]:
        """Execute one failure domain; returns ``(result, completed)``.

        A :class:`~repro.resilience.errors.ResilienceError` escaping
        ``work`` means bounded recovery inside the unit was exhausted.
        Under a degrading policy the unit is recorded as failed and the
        caller skips its contributions; otherwise the error propagates
        (abort-the-run semantics, exactly as before this layer existed).
        """
        srcs = [int(s) for s in np.asarray(sources).ravel().tolist()]
        try:
            out = work()
        except ResilienceError as err:
            if not self.policy.degrade:
                raise
            self.statuses.append(
                BatchStatus(
                    index=index,
                    sources=srcs,
                    completed=False,
                    failure=f"{type(err).__name__}: {err}",
                )
            )
            self.ctx.note_degraded(index, srcs, err)
            return None, False
        self.statuses.append(
            BatchStatus(index=index, sources=srcs, completed=True)
        )
        return out, True

    def partial_result(
        self, bc: np.ndarray, requested_sources: int, num_vertices: int
    ) -> PartialResult | None:
        """Build the salvage record, or None when every unit completed."""
        if not self.any_failed:
            return None
        return PartialResult(
            bc=bc,
            batches=list(self.statuses),
            requested_sources=requested_sources,
            num_vertices=num_vertices,
        )


def run_congest_with_restart(ctx, body: Callable[[], T]) -> T:
    """Whole-phase restart for CONGEST network runs.

    The CONGEST engines' natural recovery unit is one network execution
    (programs are rebuilt from immutable inputs, so a replay is exact).
    ``body()`` must construct a *fresh* network and run it; an injected
    crash consults the context's restart budget and backoff, then
    retries.  Without a context, crashes cannot be injected and ``body``
    runs bare.
    """
    if ctx is None:
        return body()
    attempt = 0
    while True:
        attempt += 1
        try:
            return body()
        except HostCrashError as err:
            ctx.on_crash(err, attempt)
            ctx.charge_backoff(attempt)
