"""repro.lint.dataflow: effects, call graph, SARIF, cache, CLI modes.

Covers the interprocedural layer end to end:

- per-function effect inference on the aliasing/closure/global fixtures
  the rules are built from, plus the JSON round-trip the cache depends on;
- call-graph construction over a multi-module fixture package (import
  edges, constructor edges, method resolution, nested-def edges, cones
  and shortest call chains);
- the interprocedural RL404 refinement;
- SARIF 2.1.0 export/import round-trip;
- incremental-cache hit/miss behavior on file edit, and the acceptance
  criterion that cached and cold runs produce identical findings;
- ``--changed`` git-scoped selection and the ``--write-baseline`` prune
  report (rename + rule-retirement cases);
- the per-driver readiness report and the ``--effects`` explain mode.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from textwrap import dedent

from repro.lint import sarif
from repro.lint.baseline import Baseline
from repro.lint.cli import lint_main
from repro.lint.dataflow import (
    Program,
    analyze_sources,
    explain_effects,
    readiness_report,
)
from repro.lint.effects import ModuleEffects, infer_effects
from repro.lint.findings import Finding
from repro.lint.runner import LintCache, run_lint
from repro.lint.rules import ModuleInfo


def effects_of(source: str, relpath: str = "src/repro/core/mod.py") -> ModuleEffects:
    src = dedent(source)
    return infer_effects(ModuleInfo(path=relpath, relpath=relpath, source=src))


# -- effect inference ----------------------------------------------------------


class TestEffectInference:
    def test_state_reads_writes_and_delivery_pattern(self):
        me = effects_of(
            """
            class Host:
                def deliver(self, st, lid, si, d):
                    st.fin_dist[lid, si] = d          # subscript store = write
                    st.dirty[lid] = True
                    return st.cand_dist[lid, si]      # subscript load = read
            """
        )
        fe = me.functions["Host.deliver"]
        assert {a for a, _ in fe.state_writes} == {"fin_dist", "dirty"}
        assert {a for a, _ in fe.state_reads} == {"cand_dist"}
        assert not fe.pure

    def test_global_mutations_all_three_forms(self):
        me = effects_of(
            """
            _CACHE = {}
            _SEEN = []
            _COUNT = 0

            def mutate():
                global _COUNT
                _COUNT = 1
                _CACHE["k"] = 2
                _SEEN.append(3)
            """
        )
        muts = {(n, how) for n, how, _ in me.functions["mutate"].global_mutations}
        assert muts == {("_COUNT", "assign"), ("_CACHE", "store"), ("_SEEN", ".append()")}
        assert {n for n, _k, _ln in me.mutable_globals} == {"_CACHE", "_SEEN"}

    def test_shadowed_local_is_not_a_global_mutation(self):
        me = effects_of(
            """
            _CACHE = {}

            def local_only():
                _CACHE = {}
                _CACHE["k"] = 1
            """
        )
        assert me.functions["local_only"].global_mutations == []

    def test_seam_closures_nested_and_module_level(self):
        me = effects_of(
            """
            def module_step(rnd):
                return False

            def some_engine(runtime, resilience=None):
                def step(rnd):
                    return False

                runtime.run_loop("fwd", step)
                runtime.run_guarded(module_step, step)
            """
        )
        fe = me.functions["some_engine"]
        assert "some_engine.step" in fe.seam_closures
        assert "module_step" in fe.seam_closures

    def test_telemetry_writes_and_purity(self):
        me = effects_of(
            """
            def bad(tele):
                tele.rounds = 3

            def fine(tele):
                return tele.rounds
            """
        )
        assert me.functions["bad"].telemetry_writes
        assert not me.functions["bad"].pure
        assert me.functions["fine"].pure

    def test_handler_records_calls_for_refinement(self):
        me = effects_of(
            """
            def guarded():
                try:
                    work()
                except FaultDetectedError as exc:
                    cleanup(exc)
            """
        )
        (handler,) = me.functions["guarded"].handlers
        assert handler.caught == ("FaultDetectedError",)
        assert not handler.routed
        assert "cleanup" in handler.calls

    def test_json_round_trip(self):
        me = effects_of(
            """
            _REG = {}

            class C:
                def m(self, st):
                    st.entries = []
                    _REG["x"] = 1

            def f(runtime):
                def step():
                    pass
                runtime.run_loop("p", step)
                raise ValueError
            """
        )
        back = ModuleEffects.from_dict(json.loads(json.dumps(me.to_dict())))
        assert back.to_dict() == me.to_dict()
        assert back.functions["f"].raises


# -- call graph ----------------------------------------------------------------

FIXTURE_PKG = {
    "src/repro/core/alpha.py": dedent(
        """
        from repro.core.beta import shared_helper

        class Table:
            def __init__(self):
                self.entries = {}

            def fill(self, k):
                self.entries[k] = shared_helper(k)

        def alpha_engine(pg, resilience=None):
            t = Table()
            t.fill(1)

            def step(rnd):
                return inner(rnd)

            def inner(rnd):
                return False

            pg.runtime.run_loop("fwd", step)
        """
    ),
    "src/repro/core/beta.py": dedent(
        """
        import repro.core.gamma as gamma

        def shared_helper(k):
            return gamma.leafy(k)
        """
    ),
    "src/repro/core/gamma.py": dedent(
        """
        def leafy(k):
            return k + 1

        def mrbc_congest(g, sources, resilience=None):
            return leafy(0)
        """
    ),
}


class TestCallGraph:
    def build(self) -> Program:
        _findings, program = analyze_sources(FIXTURE_PKG)
        return program

    def test_import_constructor_method_and_module_attr_edges(self):
        p = self.build()
        a = "src/repro/core/alpha.py"
        assert f"{a}::Table.__init__" in p.edges[f"{a}::alpha_engine"]
        assert (
            "src/repro/core/beta.py::shared_helper"
            in p.edges[f"{a}::Table.fill"]
        )
        # module-attribute call through `import ... as gamma`
        assert (
            "src/repro/core/gamma.py::leafy"
            in p.edges["src/repro/core/beta.py::shared_helper"]
        )

    def test_nested_def_edges_and_cone(self):
        p = self.build()
        a = "src/repro/core/alpha.py"
        cone = p.cone([f"{a}::alpha_engine"])
        assert f"{a}::alpha_engine.step" in cone
        assert f"{a}::alpha_engine.inner" in cone
        assert "src/repro/core/gamma.py::leafy" in cone

    def test_chain_is_shortest_path(self):
        p = self.build()
        chain = p.chain(
            "src/repro/core/alpha.py::alpha_engine",
            "src/repro/core/gamma.py::leafy",
        )
        names = [p.functions[k][1].qualname for k in chain]
        assert names == ["alpha_engine", "Table.fill", "shared_helper", "leafy"]

    def test_driver_discovery_gluon_and_congest(self):
        p = self.build()
        kinds = {p.functions[k][1].qualname: kind for k, kind in p.drivers()}
        assert kinds == {"alpha_engine": "gluon", "mrbc_congest": "congest"}

    def test_round_roots_include_seam_closures(self):
        p = self.build()
        assert "src/repro/core/alpha.py::alpha_engine.step" in p.round_roots()


class TestRL404Refinement:
    def test_handler_routing_through_helper_is_rescinded(self):
        findings, _ = analyze_sources(
            {
                "src/repro/core/mod.py": dedent(
                    """
                    def escalate(exc):
                        raise RuntimeError(str(exc))

                    def routed_via_helper():
                        try:
                            work()
                        except FaultDetectedError as exc:
                            escalate(exc)

                    def swallowed():
                        try:
                            work()
                        except FaultDetectedError:
                            log_quietly()

                    def log_quietly():
                        pass
                    """
                )
            }
        )
        rl404 = {f.symbol for f in findings if f.code == "RL404"}
        assert rl404 == {"swallowed"}


# -- SARIF ---------------------------------------------------------------------


class TestSarif:
    FINDINGS = [
        Finding(
            code="RL503",
            severity="error",
            path="src/repro/core/mod.py",
            line=12,
            col=1,
            message="orphan writer",
            symbol="orphan",
            chain="a -> b",
        ),
        Finding(
            code="RL101",
            severity="error",
            path="src/repro/core/mod.py",
            line=4,
            col=9,
            message="set iteration",
            symbol="Engine.send",
        ),
    ]
    SUPPRESSED = [
        Finding(
            code="RL602",
            severity="error",
            path="src/repro/core/mod.py",
            line=7,
            col=1,
            message="telemetry store",
            symbol="report",
            suppressed_by="pragma",
        )
    ]

    def test_document_shape(self):
        doc = sarif.to_sarif(self.FINDINGS, self.SUPPRESSED)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted({"RL503", "RL101", "RL602"})
        assert len(run["results"]) == 3
        suppressed = [r for r in run["results"] if r.get("suppressions")]
        assert len(suppressed) == 1
        assert suppressed[0]["suppressions"][0]["kind"] == "inSource"

    def test_round_trip_preserves_findings(self):
        doc = sarif.to_sarif(self.FINDINGS, self.SUPPRESSED)
        back = sarif.from_sarif(json.loads(json.dumps(doc)))
        assert len(back) == 3
        by_code = {f.code: f for f in back}
        orig = self.FINDINGS[0]
        got = by_code["RL503"]
        for attr in ("path", "line", "col", "message", "symbol", "chain"):
            assert getattr(got, attr) == getattr(orig, attr)
        assert by_code["RL602"].suppressed_by == "pragma"

    def test_write_sarif_is_valid_json(self, tmp_path):
        out = tmp_path / "lint.sarif"
        sarif.write_sarif(out, self.FINDINGS)
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["runs"][0]["results"]


# -- incremental cache ---------------------------------------------------------


def make_project(root: Path) -> Path:
    (root / "pyproject.toml").write_text(
        '[tool.repro-lint]\nbaseline = "lint-baseline.json"\n',
        encoding="utf-8",
    )
    pkg = root / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (root / "src" / "repro" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "clean.py").write_text(
        dedent(
            """
            def tidy(x):
                return x + 1
            """
        ),
        encoding="utf-8",
    )
    (pkg / "dirty.py").write_text(
        dedent(
            """
            import time

            def stamp():
                return time.time()
            """
        ),
        encoding="utf-8",
    )
    return root


class TestIncrementalCache:
    def test_cold_then_warm_identical_findings(self, tmp_path):
        root = make_project(tmp_path)
        cache_path = root / ".repro-lint-cache.json"

        cache = LintCache.load(cache_path)
        cold = run_lint([root / "src"], project_root=root, cache=cache)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        assert cache_path.is_file()

        warm = run_lint(
            [root / "src"], project_root=root, cache=LintCache.load(cache_path)
        )
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert [f.to_dict() for f in warm.active] == [
            f.to_dict() for f in cold.active
        ]
        assert {f.code for f in cold.active} == {"RL103"}

    def test_edit_invalidates_only_that_file(self, tmp_path):
        root = make_project(tmp_path)
        cache_path = root / ".repro-lint-cache.json"
        run_lint(
            [root / "src"], project_root=root, cache=LintCache.load(cache_path)
        )

        dirty = root / "src" / "repro" / "core" / "dirty.py"
        dirty.write_text(
            "def stamp():\n    return 0\n", encoding="utf-8"
        )
        after = run_lint(
            [root / "src"], project_root=root, cache=LintCache.load(cache_path)
        )
        assert after.cache_misses == 1
        assert after.active == []

    def test_no_cache_matches_cached_run(self, tmp_path):
        root = make_project(tmp_path)
        cache_path = root / ".repro-lint-cache.json"
        cached = run_lint(
            [root / "src"], project_root=root, cache=LintCache.load(cache_path)
        )
        cached2 = run_lint(
            [root / "src"], project_root=root, cache=LintCache.load(cache_path)
        )
        cold = run_lint([root / "src"], project_root=root)
        assert (
            [f.to_dict() for f in cold.active]
            == [f.to_dict() for f in cached.active]
            == [f.to_dict() for f in cached2.active]
        )


# -- --changed mode ------------------------------------------------------------


def _git(root: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=root,
        check=True,
        capture_output=True,
    )


class TestChangedMode:
    def test_changed_scopes_report_to_touched_files(self, tmp_path, monkeypatch, capsys):
        root = make_project(tmp_path)
        _git(root, "init", "-q")
        _git(root, "add", "-A")
        _git(root, "commit", "-qm", "init")

        monkeypatch.chdir(root)
        # Nothing changed: exits clean without analyzing.
        assert lint_main(["--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().out

        # Touch only the clean file; the dirty file's finding must NOT
        # appear even though the whole-program graph covers it.
        clean = root / "src" / "repro" / "core" / "clean.py"
        clean.write_text(
            "def tidy(x):\n    return x + 2\n", encoding="utf-8"
        )
        assert lint_main(["--changed", "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "1 files" in out
        assert "RL103" not in out

        # Introduce a finding in the touched file: now it fails.
        clean.write_text(
            "import time\n\ndef tidy(x):\n    return time.time()\n",
            encoding="utf-8",
        )
        assert lint_main(["--changed", "--no-baseline"]) == 1
        assert "RL103" in capsys.readouterr().out


# -- --write-baseline prune report ---------------------------------------------


class TestBaselinePrune:
    def test_prune_reports_renames_and_retired_rules(self, tmp_path, monkeypatch, capsys):
        root = make_project(tmp_path)
        monkeypatch.chdir(root)

        stale_rename = Finding(
            code="RL103",
            severity="error",
            path="src/repro/core/old_name.py",
            line=3,
            col=5,
            message="time.time() reads the wall clock",
            symbol="stamp",
        )
        retired = Finding(
            code="RL999",
            severity="error",
            path="src/repro/core/dirty.py",
            line=1,
            col=1,
            message="some finding of a rule that no longer exists",
            symbol="stamp",
        )
        old = Baseline.from_findings([stale_rename, retired])
        old.dump(root / "lint-baseline.json")

        assert lint_main(["src", "--write-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 stale baseline entr" in out
        assert "rule retired" in out and "RL999" in out
        assert "finding fixed or renamed" in out and "old_name.py" in out

        new = Baseline.load(root / "lint-baseline.json")
        assert all(e["code"] == "RL103" for e in new.entries.values())
        assert not any(
            "old_name.py" in str(e["where"]) for e in new.entries.values()
        )


# -- readiness report & explain mode -------------------------------------------


class TestReadiness:
    def test_blocked_and_ready_verdicts(self):
        findings, program = analyze_sources(
            {
                "src/repro/core/good.py": dedent(
                    """
                    def clean_engine(pg, resilience=None):
                        return pg
                    """
                ),
                "src/repro/core/bad.py": dedent(
                    """
                    _CACHE = {}

                    def step(rnd):
                        _CACHE["r"] = rnd
                        return False

                    def racy_engine(runtime, resilience=None):
                        runtime.run_loop("fwd", step)
                    """
                ),
            }
        )
        report = readiness_report(program, findings)
        drivers = report["drivers"]
        assert drivers["clean_engine"]["parallel_safety"]["verdict"] == "ready"
        racy = drivers["racy_engine"]
        assert racy["parallel_safety"]["verdict"] == "blocked"
        (blocker,) = racy["parallel_safety"]["blockers"]
        assert blocker["code"] == "RL601"
        assert "step" in blocker["chain"]

    def test_every_repo_driver_has_a_verdict(self):
        repo_root = Path(__file__).resolve().parent.parent
        result = run_lint([repo_root / "src"], project_root=repo_root)
        drivers = result.readiness["drivers"]
        for name in (
            "mrbc_engine",
            "sbbc_engine",
            "run_bsp",
            "mrbc_congest",
            "mrbc_congest_batched",
            "sbbc_congest",
            "directed_apsp",
            "lenzen_peleg_apsp",
        ):
            assert name in drivers, f"driver {name} missing from readiness"
            for gate in ("vectorization", "parallel_safety"):
                assert drivers[name][gate]["verdict"] in ("ready", "blocked")


class TestExplainMode:
    def test_explain_reports_effects_and_neighborhood(self):
        findings, program = analyze_sources(
            {
                "src/repro/core/mod.py": dedent(
                    """
                    def writer(st, v):
                        st.cand_dist[0] = v

                    def some_engine(pg, resilience=None):
                        writer(pg.hosts[0], 1)
                    """
                )
            }
        )
        text = explain_effects(program, "writer", findings)
        assert "state writes: .cand_dist" in text
        assert "called by:   some_engine" in text
        assert explain_effects(program, "no_such_function") is None

    def test_cli_effects_flag(self, tmp_path, monkeypatch, capsys):
        root = make_project(tmp_path)
        monkeypatch.chdir(root)
        assert lint_main(["src", "--effects", "tidy", "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "tidy" in out and "purity:" in out
        assert lint_main(["src", "--effects", "zzz", "--no-baseline"]) == 2
