"""Gluon-style communication substrate (paper §4.1, Dathathri et al. 2018).

Gluon reconciles the labels of a vertex's proxies with a reduce phase
(mirrors send their updates to the master) and a broadcast phase (the
master sends the reconciled value to mirrors).  Its key communication
optimizations, all modelled here:

- **Update tracking** — only labels the algorithm marks as updated are
  sent (callers pass exactly the items to synchronize, which is how the
  paper's *delayed synchronization* optimization plugs in: MRBC passes a
  label only in the round the algorithm proves it final).
- **Message aggregation** — all values exchanged between one host pair in
  one round travel in a single message (one header per pair per round).
- **Metadata compression** — the proxies being synchronized are identified
  by whichever is smaller: an explicit index list (4 bytes per vertex) or
  a bitmap over the pair's shared proxies.  Synchronizing more proxies per
  round therefore costs fewer metadata bytes per proxy — exactly the
  effect §5.3 credits for MRBC's 2.8× communication-time reduction.
- **Batched-source metadata** — when an algorithm synchronizes per-source
  values for a batch of ``k`` sources (MRBC), the sources present for one
  vertex are identified by min(index list, k-bit bitvector) per vertex.

Byte accounting is exact and deterministic; simulated wire time comes from
:mod:`repro.cluster.model`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Sequence

from repro import obs
from repro.engine.partition import PartitionedGraph
from repro.engine.stats import RoundStats
from repro.runtime.errors import UnknownBroadcastTargetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.context import ResilienceContext

#: Fixed per-message overhead: MPI envelope, per-field descriptors (each
#: Gluon sync moves multiple labeled fields), length words, and buffer
#: padding.  This fixed cost is paid once per host pair per round, so an
#: algorithm that synchronizes the same labels in fewer rounds (MRBC)
#: amortizes it — the §5.3 mechanism behind MRBC's lower communication
#: volume despite its larger per-value messages.
MESSAGE_HEADER_BYTES = 384
#: Bytes to name one vertex in an explicit index list.
VERTEX_ID_BYTES = 4
#: Bytes to name one source slot in an explicit per-vertex source list.
SOURCE_ID_BYTES = 4

#: Broadcast target selectors.
TARGET_OUT_EDGES = "out_edges"
TARGET_IN_EDGES = "in_edges"
TARGET_ALL_PROXIES = "proxies"


class GluonSubstrate:
    """Reduce/broadcast primitives over a :class:`PartitionedGraph`.

    With ``exact_sizes=True``, message sizes come from actually encoding
    each aggregated message with the wire format in
    :mod:`repro.engine.serialize` instead of the closed-form model — the
    two agree within a few percent (asserted in the tests), but exact mode
    pays the encoding cost on every sync.

    With a :class:`~repro.resilience.context.ResilienceContext` attached,
    every aggregated pair message passes through the context's channel
    guard between accounting and delivery: the guard injects the active
    fault plan's perturbations and — depending on its mode — verifies and
    repairs the channel before the items reach the destination inboxes.
    """

    def __init__(
        self,
        pgraph: PartitionedGraph,
        exact_sizes: bool = False,
        resilience: "ResilienceContext | None" = None,
    ) -> None:
        self.pg = pgraph
        self.H = pgraph.num_hosts
        self.exact_sizes = exact_sizes
        self.resilience = resilience

    # -- metadata model --------------------------------------------------------

    def _message_bytes(
        self,
        sender: int,
        receiver: int,
        items_by_vertex: dict[int, int],
        payload_bytes: int,
        batch_width: int,
    ) -> int:
        """Size of one aggregated pair message.

        ``items_by_vertex`` maps each distinct vertex in the message to its
        number of per-source items.
        """
        n_vertices = len(items_by_vertex)
        n_items = sum(items_by_vertex.values())
        shared = int(self.pg.shared_proxies[sender, receiver])
        vertex_meta = min(
            VERTEX_ID_BYTES * n_vertices,
            (shared + 7) // 8 if shared else VERTEX_ID_BYTES * n_vertices,
        )
        if batch_width > 1:
            per_vertex_bitvec = (batch_width + 7) // 8
            source_meta = sum(
                min(SOURCE_ID_BYTES * c, per_vertex_bitvec)
                for c in items_by_vertex.values()
            )
        else:
            source_meta = 0
        return (
            MESSAGE_HEADER_BYTES
            + vertex_meta
            + source_meta
            + payload_bytes * n_items
        )

    def _pair_bytes_from_stats(
        self,
        sender: int,
        receiver: int,
        n_vertices: int,
        n_items: int,
        source_meta: int,
        payload_bytes: int,
    ) -> int:
        """The :meth:`_message_bytes` formula from pre-aggregated counts.

        The array plane computes ``n_vertices`` (distinct vertices in the
        pair message), ``n_items`` and ``source_meta`` (the summed
        min(index list, k-bit bitvector) term) with array reductions
        instead of a per-item dict scan; the byte model is shared so both
        planes charge identical sizes.
        """
        shared = int(self.pg.shared_proxies[sender, receiver])
        vertex_meta = min(
            VERTEX_ID_BYTES * n_vertices,
            (shared + 7) // 8 if shared else VERTEX_ID_BYTES * n_vertices,
        )
        return (
            MESSAGE_HEADER_BYTES
            + vertex_meta
            + source_meta
            + payload_bytes * n_items
        )

    def account_column_pairs(
        self,
        pair_stats: Sequence[tuple[int, int, int, int, int]],
        payload_bytes: int,
        batch_width: int,
        rs: RoundStats,
        op: str = "sync",
    ) -> None:
        """Columnar twin of :meth:`_account`.

        ``pair_stats`` rows are ``(sender, receiver, n_items, n_vertices,
        source_meta_bytes)`` — one row per host pair with traffic this
        round.  Every byte, counter, ledger entry and telemetry sample is
        produced exactly as the tuple path would; only the aggregation
        that *computes* the per-pair counts moved into array code.
        Requires the closed-form size model (``exact_sizes`` encodes each
        item and has no columnar equivalent).
        """
        if self.exact_sizes:
            raise ValueError(
                "columnar accounting requires the closed-form size model; "
                "exact_sizes stays on the dict plane"
            )
        del batch_width  # folded into source_meta_bytes by the caller
        tele = obs.current()
        ledger = tele.comm
        if tele.enabled:
            before = (
                int(rs.bytes_out.sum()),
                rs.pair_messages,
                rs.items_synced,
                rs.proxies_synced,
            )
        for sender, receiver, n_items, n_vertices, source_meta in pair_stats:
            rs.items_synced += n_items
            rs.proxies_synced += n_vertices
            if sender == receiver:
                continue  # local delivery is free
            nbytes = self._pair_bytes_from_stats(
                sender, receiver, n_vertices, n_items, source_meta, payload_bytes
            )
            rs.pair_messages += 1
            rs.bytes_out[sender] += nbytes
            rs.bytes_in[receiver] += nbytes
            rs.msgs_out[sender] += 1
            rs.msgs_in[receiver] += 1
            if ledger is not None:
                ledger.record_pair_message(
                    rs, sender, receiver, n_items, nbytes, op
                )
            if tele.enabled:
                tele.metrics.histogram("gluon.message_bytes", op=op).observe(
                    nbytes
                )
        if tele.enabled:
            m = tele.metrics
            m.counter("gluon.bytes", op=op).inc(
                int(rs.bytes_out.sum()) - before[0]
            )
            m.counter("gluon.pair_messages", op=op).inc(
                rs.pair_messages - before[1]
            )
            m.counter("gluon.items_synced", op=op).inc(
                rs.items_synced - before[2]
            )
            m.counter("gluon.proxies_synced", op=op).inc(
                rs.proxies_synced - before[3]
            )

    def _encoded_bytes(
        self,
        items: list[tuple[Any, ...]],
        payload_bytes: int,
        batch_width: int,
    ) -> int:
        """Exact size: actually encode the aggregated message."""
        from repro.engine.serialize import encoded_size

        # Payload layout: dist i32 + sigma f64 (12 B) or a single f64 per
        # value (8 B) — pick the struct format matching payload_bytes.
        fmt = "<id" if payload_bytes >= 12 else "<d"
        wire_items = []
        for it in items:
            gid = int(it[0])
            si = int(it[1]) if batch_width > 1 and len(it) > 2 else 0
            if fmt == "<id":
                wire_items.append((gid, si, (0, 0.0)))
            else:
                wire_items.append((gid, si, (0.0,)))
        return encoded_size(wire_items, batch_width, payload_format=fmt)

    def _account(
        self,
        per_pair: dict[tuple[int, int], list[tuple[Any, ...]]],
        payload_bytes: int,
        batch_width: int,
        rs: RoundStats,
        op: str = "sync",
    ) -> None:
        tele = obs.current()
        ledger = tele.comm
        if tele.enabled:
            before = (
                int(rs.bytes_out.sum()),
                rs.pair_messages,
                rs.items_synced,
                rs.proxies_synced,
            )
        for (sender, receiver), items in per_pair.items():
            vertices: dict[int, int] = defaultdict(int)
            for it in items:
                vertices[it[0]] += 1
            rs.items_synced += len(items)
            rs.proxies_synced += len(vertices)
            if sender == receiver:
                continue  # local delivery is free
            if self.exact_sizes:
                nbytes = self._encoded_bytes(items, payload_bytes, batch_width)
            else:
                nbytes = self._message_bytes(
                    sender, receiver, vertices, payload_bytes, batch_width
                )
            rs.pair_messages += 1
            rs.bytes_out[sender] += nbytes
            rs.bytes_in[receiver] += nbytes
            rs.msgs_out[sender] += 1
            rs.msgs_in[receiver] += 1
            if ledger is not None:
                ledger.record_pair_message(
                    rs, sender, receiver, len(items), nbytes, op
                )
            if tele.enabled:
                tele.metrics.histogram("gluon.message_bytes", op=op).observe(
                    nbytes
                )
        if tele.enabled:
            m = tele.metrics
            m.counter("gluon.bytes", op=op).inc(
                int(rs.bytes_out.sum()) - before[0]
            )
            m.counter("gluon.pair_messages", op=op).inc(
                rs.pair_messages - before[1]
            )
            m.counter("gluon.items_synced", op=op).inc(
                rs.items_synced - before[2]
            )
            m.counter("gluon.proxies_synced", op=op).inc(
                rs.proxies_synced - before[3]
            )

    # -- primitives -------------------------------------------------------------

    def reduce_to_masters(
        self,
        per_host_items: Sequence[list[tuple[Any, ...]]],
        payload_bytes: int,
        batch_width: int,
        rs: RoundStats,
    ) -> list[list[tuple[Any, ...]]]:
        """Send each host's updated items to the owning masters.

        ``per_host_items[h]`` is a list of ``(gid, *payload)`` tuples
        produced on host ``h``.  Returns per-host master inboxes of
        ``(gid, sender_host, *payload)`` tuples; the reduction operator
        itself is applied by the caller (it is algorithm-specific).
        """
        master_of = self.pg.master_of
        per_pair: dict[tuple[int, int], list[tuple[Any, ...]]] = defaultdict(list)
        for h, items in enumerate(per_host_items):
            for it in items:
                per_pair[(h, int(master_of[it[0]]))].append(it)
        self._account(per_pair, payload_bytes, batch_width, rs, op="reduce")
        # The sender-side bytes above are authoritative; the channel guard
        # perturbs (and possibly repairs) what actually arrives.
        if self.resilience is not None:
            per_pair = self.resilience.guard_sync(
                self, per_pair, payload_bytes, batch_width, rs
            )
        inbox: list[list[tuple[Any, ...]]] = [[] for _ in range(self.H)]
        for (h, dest), delivered in per_pair.items():
            for it in delivered:
                inbox[dest].append((it[0], h, *it[1:]))
        return inbox

    def broadcast_from_masters(
        self,
        per_host_items: Sequence[list[tuple[Any, ...]]],
        targets: str,
        payload_bytes: int,
        batch_width: int,
        rs: RoundStats,
    ) -> list[list[tuple[Any, ...]]]:
        """Send master-side items to the hosts holding relevant proxies.

        ``targets`` selects the destination set per vertex:
        :data:`TARGET_OUT_EDGES` (hosts owning out-edges — forward phase),
        :data:`TARGET_IN_EDGES` (accumulation phase), or
        :data:`TARGET_ALL_PROXIES`.  The sending host receives its own copy
        locally for free.  Returns per-host inboxes of ``(gid, *payload)``.
        """
        if targets == TARGET_OUT_EDGES:
            hosts_of = self.pg.hosts_with_out_edges
        elif targets == TARGET_IN_EDGES:
            hosts_of = self.pg.hosts_with_in_edges
        elif targets == TARGET_ALL_PROXIES:
            hosts_of = self.pg.hosts_with_proxy
        else:
            raise UnknownBroadcastTargetError(
                f"unknown broadcast target {targets!r}"
            )

        per_pair: dict[tuple[int, int], list[tuple[Any, ...]]] = defaultdict(list)
        for h, items in enumerate(per_host_items):
            for it in items:
                for dest in hosts_of(it[0]):
                    per_pair[(h, int(dest))].append(it)
        self._account(per_pair, payload_bytes, batch_width, rs, op="broadcast")
        if self.resilience is not None:
            per_pair = self.resilience.guard_sync(
                self, per_pair, payload_bytes, batch_width, rs
            )
        inbox: list[list[tuple[Any, ...]]] = [[] for _ in range(self.H)]
        for (_h, dest), delivered in per_pair.items():
            inbox[dest].extend(delivered)
        return inbox
