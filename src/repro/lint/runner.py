"""Drive the rule registry over a file tree and render the report.

The pipeline per file: read → parse (`RL900` on syntax errors) → run
enabled rules → drop pragma-suppressed findings → drop baseline-matched
findings.  The runner returns both the *active* findings (what fails the
build) and the suppressed ones (so ``--format json`` can show the full
picture and ``--write-baseline`` can capture everything).
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint import pragmas as pragmas_mod
from repro.lint.baseline import Baseline
from repro.lint.findings import SEVERITY_ERROR, Finding, sort_findings
from repro.lint.rules import RULES, ModuleInfo, run_rules

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build"}

PARSE_ERROR_CODE = "RL900"


@dataclass
class LintResult:
    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    stale_baseline: dict[str, dict[str, object]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.active


def iter_python_files(targets: list[str | Path]) -> list[Path]:
    out: list[Path] = []
    for target in targets:
        p = Path(target)
        if p.is_file() and p.suffix == ".py":
            out.append(p)
        elif p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not (_SKIP_DIRS & set(f.parts))
            )
    # de-dup while keeping deterministic order
    seen: set[Path] = set()
    uniq: list[Path] = []
    for f in out:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            uniq.append(f)
    return uniq


def lint_file(
    path: Path, project_root: Path, enabled: set[str] | None = None
) -> tuple[list[Finding], list[Finding]]:
    """Lint one file → (active, pragma-suppressed) findings."""
    try:
        relpath = str(path.resolve().relative_to(project_root.resolve()))
    except ValueError:
        relpath = str(path)
    relpath = relpath.replace("\\", "/")
    source = path.read_text(encoding="utf-8")
    try:
        mod = ModuleInfo(path=str(path), relpath=relpath, source=source)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    code=PARSE_ERROR_CODE,
                    severity=SEVERITY_ERROR,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            [],
        )
    findings = run_rules(mod, enabled=enabled)
    line_pragmas = pragmas_mod.parse_pragmas(source)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for f in findings:
        if pragmas_mod.is_suppressed(line_pragmas, f.line, f.code):
            suppressed.append(
                Finding(**{**f.__dict__, "suppressed_by": "pragma"})
            )
        else:
            active.append(f)
    return active, suppressed


def run_lint(
    targets: list[str | Path],
    project_root: Path,
    enabled: set[str] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    result = LintResult()
    if baseline is not None:
        baseline.reset()
    for path in iter_python_files(targets):
        active, suppressed = lint_file(path, project_root, enabled=enabled)
        result.files_checked += 1
        result.suppressed.extend(suppressed)
        for f in sort_findings(active):
            if baseline is not None and baseline.matches(f):
                result.suppressed.append(
                    Finding(**{**f.__dict__, "suppressed_by": "baseline"})
                )
            else:
                result.active.append(f)
    result.active = sort_findings(result.active)
    result.suppressed = sort_findings(result.suppressed)
    if baseline is not None:
        result.stale_baseline = baseline.stale_entries()
    return result


# -- rendering -----------------------------------------------------------------


def render_text(result: LintResult, stream=None) -> None:
    stream = stream or sys.stdout
    for f in result.active:
        print(
            f"{f.location()}: {f.severity}: {f.code} {f.message}"
            + (f"  [{f.symbol}]" if f.symbol else ""),
            file=stream,
        )
    n_err = sum(1 for f in result.active if f.severity == SEVERITY_ERROR)
    n_warn = len(result.active) - n_err
    print(
        f"repro-lint: {result.files_checked} files, "
        f"{n_err} error(s), {n_warn} warning(s), "
        f"{len(result.suppressed)} suppressed"
        + (" -- PASS" if result.ok else " -- FAIL"),
        file=stream,
    )
    if result.stale_baseline:
        print(
            f"note: {len(result.stale_baseline)} stale baseline "
            "entr(y/ies) no longer match any finding; regenerate with "
            "--write-baseline to drop them",
            file=stream,
        )


def render_json(result: LintResult, stream=None) -> None:
    stream = stream or sys.stdout
    payload = {
        "pass": result.ok,
        "files_checked": result.files_checked,
        "rules": {
            code: {
                "name": rule.name,
                "severity": rule.severity,
                "summary": rule.summary,
            }
            for code, rule in sorted(RULES.items())
        },
        "findings": [f.to_dict() for f in result.active],
        "suppressed": [
            {**f.to_dict(), "suppressed_by": f.suppressed_by}
            for f in result.suppressed
        ],
        "stale_baseline": result.stale_baseline,
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")
