"""The bench trajectory: a pinned suite, versioned snapshots, regression gates.

``repro bench`` runs a pinned matrix of engine configurations
(mrbc/sbbc × graph shapes × host counts), repeats each case after a
warmup, and writes one ``BENCH_<git-sha>.json`` snapshot at the repo
root.  Each case records two kinds of numbers:

- **deterministic counts** off the engine run (rounds, bytes, pair
  messages, items synced, load imbalance) plus the simulated cluster
  time — bit-identical across same-seed runs, so *any* drift is a real
  behavioural change;
- **wall-clock samples** (median/IQR over the repeats) — the local
  simulation cost, inherently noisy, gated with noise-aware thresholds.

``repro bench --compare baseline.json`` diffs a fresh snapshot against a
stored one: any change to the gated counts fails, a wall-clock median
more than ``threshold × IQR`` above the baseline fails (only when the
environment fingerprints match, unless forced), and the exit code is the
verdict — which is what lets CI hold the performance line the paper's
claims rest on.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.manifest import git_sha
from repro.obs.metrics import quantile

#: Bumped on any incompatible snapshot schema change; readers refuse newer.
BENCH_VERSION = 1

#: Per-case deterministic fields where *any* drift fails the compare gate.
GATED_COUNTS = ("rounds", "bytes", "pair_messages")

#: Per-case comm-ledger fields gated the same way (only when the baseline
#: snapshot carries a ``comm`` section — pre-ledger baselines still compare).
GATED_COMM_COUNTS = (
    "messages",
    "values",
    "payload_bytes",
    "reduce_bytes",
    "broadcast_bytes",
)

#: Per-case round-ledger fields gated the same way (only when the baseline
#: snapshot carries a ``rounds`` section — pre-ledger baselines still compare).
GATED_ROUND_COUNTS = (
    "total",
    "forward",
    "backward",
    "recovery",
    "units",
    "max_unit_rounds",
    "max_frontier",
    "settled",
)


@dataclass(frozen=True)
class BenchCase:
    """One pinned engine configuration in the suite."""

    name: str
    algorithm: str  # "mrbc" | "sbbc"
    graph: str  # generator spec, e.g. "er:200:4"
    hosts: int
    sources: int
    batch: int = 16
    seed: int = 7  # source-sampling seed (graph specs use the default seed)
    plane: str = "dict"  # execution tier: "dict" (reference) | "array"


#: The default suite: the paper's three graph regimes (random power-law,
#: web-crawl with long tails, high-diameter road) for both engines, plus a
#: host-count and a batch-size variation for MRBC.
DEFAULT_SUITE: tuple[BenchCase, ...] = (
    BenchCase("mrbc-er200-h8", "mrbc", "er:200:4", hosts=8, sources=32),
    BenchCase("mrbc-er200-h4", "mrbc", "er:200:4", hosts=4, sources=32),
    BenchCase("mrbc-web-h8", "mrbc", "webcrawl:120:80", hosts=8, sources=32),
    BenchCase("mrbc-road-h8", "mrbc", "grid:16:16", hosts=8, sources=32),
    BenchCase("mrbc-rmat-h8", "mrbc", "rmat:8:8", hosts=8, sources=32),
    BenchCase("mrbc-rmat-h8-b8", "mrbc", "rmat:8:8", hosts=8, sources=32, batch=8),
    BenchCase("sbbc-er200-h8", "sbbc", "er:200:4", hosts=8, sources=32),
    BenchCase("sbbc-road-h8", "sbbc", "grid:16:16", hosts=8, sources=32),
    BenchCase("sbbc-rmat-h8", "sbbc", "rmat:8:8", hosts=8, sources=32),
)

#: The CI-sized suite: seconds, not minutes, but still both engines and
#: both the low- and high-diameter regimes.
SMOKE_SUITE: tuple[BenchCase, ...] = (
    BenchCase("mrbc-er60-h4", "mrbc", "er:60:3", hosts=4, sources=8, batch=8),
    BenchCase("mrbc-road8-h4", "mrbc", "grid:8:8", hosts=4, sources=8, batch=8),
    BenchCase("sbbc-er60-h4", "sbbc", "er:60:3", hosts=4, sources=8),
    BenchCase("sbbc-road8-h4", "sbbc", "grid:8:8", hosts=4, sources=8),
)


def expand_planes(
    cases: "tuple[BenchCase, ...] | list[BenchCase]", plane: str
) -> tuple[BenchCase, ...]:
    """Project a suite onto an execution-tier axis.

    ``"dict"`` returns the suite as pinned; ``"array"`` rewrites every
    case onto the columnar plane under the twin name ``<name>@array``;
    ``"both"`` interleaves each dict case with its array twin, which is
    what lets :func:`run_suite` annotate per-case speedups.  The dict
    cases keep their unsuffixed names so snapshots taken with any
    ``plane`` value stay comparable against dict-only baselines.
    """
    from dataclasses import replace

    if plane == "dict":
        return tuple(cases)
    if plane == "array":
        return tuple(
            replace(c, name=f"{c.name}@array", plane="array") for c in cases
        )
    if plane == "both":
        out: list[BenchCase] = []
        for c in cases:
            out.append(c)
            out.append(replace(c, name=f"{c.name}@array", plane="array"))
        return tuple(out)
    raise ValueError(f"unknown plane axis {plane!r} (dict|array|both)")


def environment_fingerprint() -> dict[str, str]:
    """Where the wall-clock numbers came from (not part of the identity)."""
    return {
        "hostname": platform.node(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "platform": platform.platform(),
    }


def _run_engine(case: BenchCase, g: Any, sources: Any) -> Any:
    # Imported lazily so ``repro.obs`` keeps no engine dependency at import.
    if case.algorithm == "sbbc":
        from repro.baselines.sbbc import sbbc_engine

        return sbbc_engine(
            g, sources=sources, num_hosts=case.hosts, plane=case.plane
        )
    if case.algorithm == "mrbc":
        from repro.core.mrbc import mrbc_engine

        return mrbc_engine(
            g,
            sources=sources,
            batch_size=case.batch,
            num_hosts=case.hosts,
            plane=case.plane,
        )
    raise ValueError(f"unknown bench algorithm {case.algorithm!r}")


class _CaseRun:
    """One case's repetition state: setup once, run reps, assemble record.

    Every repetition runs with a fresh :class:`~repro.obs.comm.CommLedger`
    and :class:`~repro.obs.rounds.RoundLedger` attached (null sink —
    accounting only), so the snapshot's ``comm`` and ``rounds`` sections
    gate communication and round-complexity regressions alongside the
    engine's deterministic counts.
    """

    def __init__(self, case: BenchCase, warmup: int) -> None:
        from repro.core.sampling import sample_sources
        from repro.graph import generators

        self.case = case
        self.warmup = warmup
        self.g = generators.from_spec(case.graph)
        self.sources = sample_sources(
            self.g, min(case.sources, self.g.num_vertices), seed=case.seed
        )
        self.samples: list[float] = []
        self.res = None
        self.ledger = None
        self.rledger = None

    def rep(self, i: int) -> None:
        from repro import obs
        from repro.obs.comm import CommLedger
        from repro.obs.rounds import RoundLedger

        self.ledger = CommLedger()
        self.rledger = RoundLedger()
        with obs.session(comm=self.ledger, rounds=self.rledger):
            t0 = time.perf_counter()
            self.res = _run_engine(self.case, self.g, self.sources)
            dt = time.perf_counter() - t0
        if i >= self.warmup:
            self.samples.append(dt)

    def record(self) -> dict[str, Any]:
        from repro.cluster.model import ClusterModel

        case = self.case
        samples = self.samples
        deterministic = dict(self.res.run.deterministic_signature())
        sim = ClusterModel(case.hosts).time_run(self.res.run)
        deterministic.update(
            sim_computation_s=sim.computation,
            sim_communication_s=sim.communication,
            sim_total_s=sim.total,
        )
        return {
            "name": case.name,
            "config": {
                "algorithm": case.algorithm,
                "graph": case.graph,
                "hosts": case.hosts,
                "sources": int(self.sources.size),
                "batch": case.batch,
                "seed": case.seed,
                "plane": case.plane,
                "num_vertices": self.g.num_vertices,
                "num_edges": self.g.num_edges,
            },
            "deterministic": deterministic,
            "comm": self.ledger.bench_counts(),
            "rounds": self.rledger.bench_counts(),
            "wall_s": {
                "samples": [round(s, 6) for s in samples],
                "median": round(quantile(samples, 0.5), 6),
                "iqr": round(
                    quantile(samples, 0.75) - quantile(samples, 0.25), 6
                ),
            },
        }


def run_case(case: BenchCase, repeats: int = 3, warmup: int = 1) -> dict[str, Any]:
    """Run one case ``warmup + repeats`` times; record counts and wall times."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    run = _CaseRun(case, warmup)
    for i in range(warmup + repeats):
        run.rep(i)
    return run.record()


def run_case_paired(
    a: BenchCase, b: BenchCase, repeats: int = 3, warmup: int = 1
) -> "tuple[dict[str, Any], dict[str, Any]]":
    """Run two cases with their repetitions interleaved (a0 b0 a1 b1 …).

    Used for a dict case and its ``@array`` twin: the machine's speed
    drifts on a timescale comparable to a repetition block, so running
    all of one plane's reps and then all of the other's lets that drift
    leak into ``speedup_vs_dict``. Alternating reps pairs the two
    planes' samples in time — the ratio of medians becomes insensitive
    to drift while each case's own samples, medians and counts are
    computed exactly as in the unpaired path.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    ra, rb = _CaseRun(a, warmup), _CaseRun(b, warmup)
    for i in range(warmup + repeats):
        ra.rep(i)
        rb.rep(i)
    return ra.record(), rb.record()


def run_suite(
    cases: "tuple[BenchCase, ...] | list[BenchCase]",
    repeats: int = 3,
    warmup: int = 1,
    suite_name: str = "default",
    progress: Callable[[BenchCase], None] | None = None,
) -> dict[str, Any]:
    """Run every case and assemble one versioned bench snapshot document.

    A dict case immediately followed by its ``@array`` twin (the layout
    :func:`expand_planes` produces for ``plane="both"``) runs through
    :func:`run_case_paired` so the recorded speedup is drift-immune.
    """
    recorded = []
    cl = list(cases)
    i = 0
    while i < len(cl):
        case = cl[i]
        nxt = cl[i + 1] if i + 1 < len(cl) else None
        if (
            nxt is not None
            and case.plane == "dict"
            and nxt.plane == "array"
            and nxt.name == case.name + "@array"
        ):
            if progress is not None:
                progress(case)
                progress(nxt)
            recorded.extend(
                run_case_paired(case, nxt, repeats=repeats, warmup=warmup)
            )
            i += 2
            continue
        if progress is not None:
            progress(case)
        recorded.append(run_case(case, repeats=repeats, warmup=warmup))
        i += 1
    # Annotate each array case whose dict twin is in the same snapshot
    # with its wall-clock speedup — the number `repro trend` plots for
    # the columnar tier.  Lives under wall_s: it is a clock, not an
    # identity, so the deterministic view never sees it.
    by_name = {rec["name"]: rec for rec in recorded}
    for rec in recorded:
        if rec["config"].get("plane") != "array":
            continue
        twin = by_name.get(rec["name"].removesuffix("@array"))
        if twin is None:
            continue
        med = rec["wall_s"]["median"]
        if med > 0:
            rec["wall_s"]["speedup_vs_dict"] = round(
                twin["wall_s"]["median"] / med, 3
            )
    return {
        "bench_version": BENCH_VERSION,
        "suite": suite_name,
        "git_sha": git_sha(),
        "created_unix": time.time(),
        "repeats": repeats,
        "warmup": warmup,
        "environment": environment_fingerprint(),
        "cases": recorded,
    }


def deterministic_view(doc: dict[str, Any]) -> dict[str, Any]:
    """The snapshot minus clocks and machine identity.

    Two same-seed runs of the same tree must produce byte-identical JSON
    for this view — the determinism contract ``repro bench`` is tested
    against and the part ``--compare`` gates hard.
    """
    out = {
        k: v
        for k, v in doc.items()
        if k not in ("created_unix", "environment", "git_sha")
    }
    out["cases"] = [
        {k: v for k, v in case.items() if k != "wall_s"}
        for case in doc.get("cases", [])
    ]
    return out


# -- snapshot files ----------------------------------------------------------------


def bench_filename(sha: str | None) -> str:
    """``BENCH_<sha12>.json`` (or ``BENCH_nogit.json`` outside a checkout)."""
    return f"BENCH_{(sha or 'nogit')[:12]}.json"


def repo_root() -> str:
    """Git toplevel of the cwd, falling back to the cwd itself."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return os.getcwd()
    top = out.stdout.strip()
    return top if out.returncode == 0 and top else os.getcwd()


def write_bench(doc: dict[str, Any], path: str | os.PathLike) -> None:
    """Write a snapshot as canonical (sorted-key) pretty JSON."""
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_bench(path: str | os.PathLike) -> dict[str, Any]:
    """Load a snapshot written by :func:`write_bench` (version-checked)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    v = doc.get("bench_version")
    if v != BENCH_VERSION:
        raise ValueError(
            f"unsupported bench snapshot version {v!r} "
            f"(this reader understands {BENCH_VERSION})"
        )
    return doc


# -- comparison / regression gating ------------------------------------------------


@dataclass
class CaseComparison:
    """Verdict for one case present in both snapshots."""

    name: str
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class BenchComparison:
    """Outcome of diffing a fresh snapshot against a baseline."""

    cases: list[CaseComparison] = field(default_factory=list)
    #: Baseline cases the new snapshot no longer runs (a failure: the
    #: suite silently shrank) and cases new to this snapshot (fine).
    missing: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    wall_gated: bool = False
    wall_skip_reason: str | None = None

    @property
    def ok(self) -> bool:
        return not self.missing and all(c.ok for c in self.cases)


def compare_bench(
    new: dict[str, Any],
    baseline: dict[str, Any],
    wall: str = "auto",
    wall_threshold: float = 3.0,
    wall_floor_s: float = 0.005,
) -> BenchComparison:
    """Gate a fresh snapshot against a baseline.

    Deterministic counts (:data:`GATED_COUNTS`) must match exactly; other
    deterministic drift (sim times, items synced) is reported as a note.
    Wall-clock gating fails a case whose median grew by more than
    ``wall_threshold × max(IQR_baseline, IQR_new, noise_floor)``, where
    the noise floor is ``max(wall_floor_s, 10% of the baseline median)``
    — sub-100ms smoke cases jitter far more than their IQR suggests on a
    loaded machine.  With ``wall="auto"`` the gate only applies when both
    snapshots carry the same environment fingerprint (medians from
    different machines are not comparable); ``"always"``/``"never"``
    force it either way.
    """
    if wall not in ("auto", "always", "never"):
        raise ValueError(f"wall must be auto|always|never, got {wall!r}")
    base_by = {c["name"]: c for c in baseline.get("cases", [])}
    new_by = {c["name"]: c for c in new.get("cases", [])}
    cmp = BenchComparison(
        missing=sorted(set(base_by) - set(new_by)),
        added=sorted(set(new_by) - set(base_by)),
    )
    if wall == "always":
        cmp.wall_gated = True
    elif wall == "never":
        cmp.wall_skip_reason = "disabled (--wall never)"
    else:
        same_env = new.get("environment") == baseline.get("environment")
        cmp.wall_gated = same_env
        if not same_env:
            cmp.wall_skip_reason = (
                "environment fingerprints differ (wall medians from "
                "different machines are not comparable; force with --wall always)"
            )

    for name in sorted(set(base_by) & set(new_by)):
        b, n = base_by[name], new_by[name]
        cc = CaseComparison(name)
        bdet, ndet = b.get("deterministic", {}), n.get("deterministic", {})
        for f in GATED_COUNTS:
            if ndet.get(f) != bdet.get(f):
                cc.failures.append(
                    f"{f} changed: {bdet.get(f)} -> {ndet.get(f)}"
                )
        for f in sorted(set(bdet) | set(ndet)):
            if f in GATED_COUNTS:
                continue
            if ndet.get(f) != bdet.get(f):
                cc.notes.append(f"{f}: {bdet.get(f)} -> {ndet.get(f)}")
        bcomm, ncomm = b.get("comm"), n.get("comm")
        if bcomm is not None and ncomm is not None:
            for f in GATED_COMM_COUNTS:
                if ncomm.get(f) != bcomm.get(f):
                    cc.failures.append(
                        f"comm.{f} changed: {bcomm.get(f)} -> {ncomm.get(f)}"
                    )
        elif bcomm is not None and ncomm is None:
            cc.failures.append("comm section missing from the new snapshot")
        elif bcomm is None and ncomm is not None:
            cc.notes.append("comm: no baseline yet (pre-ledger snapshot)")
        brnd, nrnd = b.get("rounds"), n.get("rounds")
        if brnd is not None and nrnd is not None:
            for f in GATED_ROUND_COUNTS:
                if nrnd.get(f) != brnd.get(f):
                    cc.failures.append(
                        f"rounds.{f} changed: {brnd.get(f)} -> {nrnd.get(f)}"
                    )
        elif brnd is not None and nrnd is None:
            cc.failures.append("rounds section missing from the new snapshot")
        elif brnd is None and nrnd is not None:
            cc.notes.append("rounds: no baseline yet (pre-ledger snapshot)")
        if cmp.wall_gated:
            bw, nw = b.get("wall_s", {}), n.get("wall_s", {})
            bm, nm = bw.get("median"), nw.get("median")
            if bm is not None and nm is not None:
                floor = max(wall_floor_s, 0.1 * bm)
                noise = max(bw.get("iqr", 0.0), nw.get("iqr", 0.0), floor)
                budget = wall_threshold * noise
                if nm > bm + budget:
                    cc.failures.append(
                        f"wall median regressed: {bm:.4f}s -> {nm:.4f}s "
                        f"(> {wall_threshold:g}x noise {noise:.4f}s)"
                    )
                elif nm < bm - budget:
                    cc.notes.append(
                        f"wall median improved: {bm:.4f}s -> {nm:.4f}s"
                    )
        cmp.cases.append(cc)
    return cmp


def render_comparison(cmp: BenchComparison) -> str:
    """Human-readable comparison report with a final PASS/FAIL line."""
    from repro.analysis.reporting import format_table

    rows: list[list[object]] = []
    for cc in cmp.cases:
        detail = "; ".join(cc.failures) or "; ".join(cc.notes) or "-"
        rows.append([cc.name, "FAIL" if cc.failures else "ok", detail])
    for name in cmp.missing:
        rows.append([name, "FAIL", "case missing from the new snapshot"])
    for name in cmp.added:
        rows.append([name, "new", "no baseline yet"])
    lines = [format_table(["case", "status", "detail"], rows,
                          title="bench comparison")]
    if cmp.wall_skip_reason:
        lines.append(f"wall-clock gate skipped: {cmp.wall_skip_reason}")
    lines.append(f"bench verdict: {'PASS' if cmp.ok else 'FAIL'}")
    return "\n".join(lines)
