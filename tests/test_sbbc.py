"""Tests for the SBBC baseline on the engine."""

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.baselines.sbbc import sbbc_engine
from repro.core.mrbc import mrbc_engine
from repro.engine.partition import partition_graph
from repro.graph.properties import bfs_distances
from tests.conftest import some_sources


class TestBCCorrectness:
    @pytest.mark.parametrize(
        "fixture", ["diamond", "er_graph", "powerlaw_graph", "road_graph"]
    )
    @pytest.mark.parametrize("H", [1, 4])
    def test_matches_brandes(self, fixture, H, request):
        g = request.getfixturevalue(fixture)
        srcs = some_sources(g)
        res = sbbc_engine(g, sources=srcs, num_hosts=H)
        assert np.allclose(res.bc, brandes_bc(g, sources=srcs))

    @pytest.mark.parametrize("policy", ["oec", "iec", "cvc"])
    def test_partition_policies(self, er_graph, policy):
        srcs = some_sources(er_graph, 4)
        res = sbbc_engine(er_graph, sources=srcs, num_hosts=4, policy=policy)
        assert np.allclose(res.bc, brandes_bc(er_graph, sources=srcs))

    def test_exact_all_sources(self, diamond):
        res = sbbc_engine(diamond, num_hosts=2)
        assert np.allclose(res.bc, brandes_bc(diamond))

    def test_distances_match_bfs(self, er_graph):
        srcs = some_sources(er_graph, 3)
        res = sbbc_engine(er_graph, sources=srcs, num_hosts=4)
        for i, s in enumerate(srcs):
            assert np.array_equal(res.dist[i], bfs_distances(er_graph, s))


class TestRoundStructure:
    def test_rounds_track_eccentricity(self, road_graph):
        """SBBC rounds per source ≈ 2·ecc(s) + O(1) — the defining cost."""
        srcs = some_sources(road_graph, 4)
        res = sbbc_engine(road_graph, sources=srcs, num_hosts=2)
        total_ecc = sum(
            int(bfs_distances(road_graph, s).max()) for s in srcs
        )
        assert total_ecc <= res.total_rounds <= 2 * total_ecc + 4 * len(srcs)

    def test_mrbc_needs_fewer_rounds(self, webcrawl_graph):
        """The headline Table 1 claim, at our scale."""
        g = webcrawl_graph
        srcs = some_sources(g, 8)
        pg = partition_graph(g, 4, "cvc")
        sb = sbbc_engine(g, sources=srcs, partition=pg)
        mr = mrbc_engine(g, sources=srcs, batch_size=8, partition=pg)
        assert mr.total_rounds < sb.total_rounds
        assert mr.rounds_per_source() < sb.rounds_per_source()

    def test_mrbc_uses_less_communication_volume(self, webcrawl_graph):
        """Figure 2's volume labels: MRBC < SBBC on web-crawl shapes."""
        g = webcrawl_graph
        srcs = some_sources(g, 8)
        pg = partition_graph(g, 4, "cvc")
        sb = sbbc_engine(g, sources=srcs, partition=pg)
        mr = mrbc_engine(g, sources=srcs, batch_size=8, partition=pg)
        assert mr.run.total_bytes < sb.run.total_bytes

    def test_proxies_synced_similar(self, er_graph):
        """§5.3: total proxies synchronized are similar between the two."""
        srcs = some_sources(er_graph, 6)
        pg = partition_graph(er_graph, 4, "cvc")
        sb = sbbc_engine(er_graph, sources=srcs, partition=pg)
        mr = mrbc_engine(er_graph, sources=srcs, batch_size=6, partition=pg)
        ratio = mr.run.total_items_synced / max(1, sb.run.total_items_synced)
        assert 0.4 < ratio < 2.5


class TestEdgeCases:
    def test_isolated_source(self):
        from repro.graph.builders import from_edges

        g = from_edges(4, [(1, 2)])
        res = sbbc_engine(g, sources=[0], num_hosts=2)
        assert np.allclose(res.bc, 0.0)
        assert res.dist[0, 0] == 0
        assert res.dist[0, 1] == -1

    def test_empty_sources_rejected(self, er_graph):
        with pytest.raises(ValueError):
            sbbc_engine(er_graph, sources=[])

    def test_foreign_partition_rejected(self, er_graph, road_graph):
        pg = partition_graph(road_graph, 2, "oec")
        with pytest.raises(ValueError):
            sbbc_engine(er_graph, sources=[0], partition=pg)
