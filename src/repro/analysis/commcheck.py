"""Predicted-vs-measured communication conformance (``repro comm --check``).

The :class:`~repro.obs.comm.CommLedger` measures who sent what; this
module checks the measurements against what the theory and the rest of
the stack *predict*, producing a PASS/FAIL report:

- **ledger ↔ engine reconciliation** — Gluon ledger totals must equal the
  authoritative :class:`~repro.engine.stats.EngineRun` accounting exactly
  (total bytes, pair messages, and the per-host ``bytes_out``/``bytes_in``
  arrays), and CONGEST ledger totals must equal the network's
  :class:`~repro.congest.messages.MessageStats`;
- **α/β model conformance** — rebuilding the per-round per-host traffic
  from the ledger's channel records and pricing it with the
  :class:`~repro.cluster.model.ClusterModel` constants must reproduce the
  model's wire / serialization / barrier+message terms within
  :data:`REL_TOL` (the documented tolerance: the two sums associate
  floats in different orders);
- **CONGEST bandwidth bound** — no channel may carry more than
  ``B = c·⌈log₂ n⌉`` words in any round (Theorem 1's per-message budget),
  and no round may use more than the 2m directed channels that exist;
- **delayed-sync savings** — the paper's delayed-synchronization
  optimization must show up as a measured byte *reduction* (MRBC with
  ``delayed_sync=True`` vs the eager ablation).

The default suite (:data:`DEFAULT_CHECK_SUITE`) is CI-sized: both graph
regimes (random, high-diameter road) across the Gluon engines and the
CONGEST implementation.  Fault injection is deliberately absent — the
reconciliation invariants are defined on fault-free runs (retransmit
traffic is recorded too, but perturbed-channel *deliveries* are not
re-measured).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.comm import (
    PLANE_CONGEST,
    PLANE_GLUON,
    CommLedger,
    congest_bound_words,
)

#: Relative tolerance for the α/β float reconstructions.  The ledger
#: reconstruction and ``ClusterModel.time_run`` sum the same per-round
#: terms in different association orders, so they agree to rounding, not
#: bit-exactly; counts are still compared exactly.
REL_TOL = 1e-9


@dataclass
class CheckResult:
    """One predicted-vs-measured comparison."""

    case: str
    check: str
    predicted: Any
    measured: Any
    ok: bool
    tolerance: str = "exact"
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "case": self.case,
            "check": self.check,
            "predicted": self.predicted,
            "measured": self.measured,
            "ok": self.ok,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }


@dataclass
class CommReport:
    """All checks of one conformance run, with the overall verdict."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": 1,
            "verdict": "PASS" if self.ok else "FAIL",
            "checks": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


@dataclass(frozen=True)
class CommCheckCase:
    """One engine configuration the conformance suite runs."""

    name: str
    algorithm: str  # "mrbc" | "sbbc" | "mrbc-congest"
    graph: str
    hosts: int = 4
    sources: int = 8
    batch: int = 8
    seed: int = 7
    plane: str = "dict"  # engine tier (ignored by mrbc-congest)


#: CI-sized: seconds total, both engines and both graph regimes, plus the
#: CONGEST implementation on both.
DEFAULT_CHECK_SUITE: tuple[CommCheckCase, ...] = (
    CommCheckCase("mrbc-er60", "mrbc", "er:60:3"),
    CommCheckCase("mrbc-road8", "mrbc", "grid:8:8"),
    CommCheckCase("sbbc-er60", "sbbc", "er:60:3"),
    CommCheckCase("congest-er60", "mrbc-congest", "er:60:3"),
    CommCheckCase("congest-road8", "mrbc-congest", "grid:8:8"),
)


def _rel_close(a: float, b: float, tol: float = REL_TOL) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


# -- gluon-side checks -------------------------------------------------------------


def check_engine_ledger(case: str, run: Any, ledger: CommLedger) -> list[CheckResult]:
    """Ledger ↔ :class:`EngineRun` reconciliation (exact)."""
    totals = ledger.totals(PLANE_GLUON)
    out: list[CheckResult] = [
        CheckResult(
            case,
            "ledger-bytes-vs-run",
            predicted=run.total_bytes,
            measured=totals.payload_bytes,
            ok=totals.payload_bytes == run.total_bytes,
            detail="ledger payload bytes must equal EngineRun.total_bytes",
        ),
        CheckResult(
            case,
            "ledger-messages-vs-run",
            predicted=run.total_pair_messages,
            measured=totals.messages,
            ok=totals.messages == run.total_pair_messages,
            detail="one ledger record per aggregated pair message",
        ),
    ]
    led_out, led_in = ledger.per_host_bytes(run.num_hosts)
    run_out = [0] * run.num_hosts
    run_in = [0] * run.num_hosts
    for rs in run.rounds:
        for h in range(run.num_hosts):
            run_out[h] += int(rs.bytes_out[h])
            run_in[h] += int(rs.bytes_in[h])
    out.append(
        CheckResult(
            case,
            "ledger-per-host-bytes-vs-run",
            predicted={"out": run_out, "in": run_in},
            measured={"out": led_out, "in": led_in},
            ok=led_out == run_out and led_in == run_in,
            detail="channel records must reconstruct the per-host byte arrays",
        )
    )
    return out


def check_alpha_beta(
    case: str, run: Any, ledger: CommLedger, model: Any
) -> list[CheckResult]:
    """α/β conformance: price the ledger's traffic, match the model's terms."""
    c = model.constants
    wire = 0.0
    ser = 0.0
    msg = 0.0
    for rc in ledger.rounds(PLANE_GLUON):
        out_b = [0] * run.num_hosts
        in_b = [0] * run.num_hosts
        out_m = [0] * run.num_hosts
        in_m = [0] * run.num_hosts
        for (src, dst), t in rc.pairs.items():
            out_b[src] += t.payload_bytes
            in_b[dst] += t.payload_bytes
            out_m[src] += t.messages
            in_m[dst] += t.messages
        max_bytes = max(o + i for o, i in zip(out_b, in_b))
        max_msgs = max(o + i for o, i in zip(out_m, in_m))
        wire += max_bytes * c.wire_per_byte
        ser += max_bytes * c.serialize_per_byte
        msg += max_msgs * c.per_message
    barrier = run.num_rounds * model.barrier_latency() + msg
    sim = model.time_run(run)
    tol = f"relative {REL_TOL:g}"
    return [
        CheckResult(
            case,
            "alpha-beta-wire",
            predicted=wire,
            measured=sim.wire,
            ok=_rel_close(wire, sim.wire),
            tolerance=tol,
            detail="ledger-reconstructed max-host bytes x wire_per_byte",
        ),
        CheckResult(
            case,
            "alpha-beta-serialization",
            predicted=ser,
            measured=sim.serialization,
            ok=_rel_close(ser, sim.serialization),
            tolerance=tol,
            detail="ledger-reconstructed max-host bytes x serialize_per_byte",
        ),
        CheckResult(
            case,
            "alpha-beta-barrier-msg",
            predicted=barrier,
            measured=sim.barrier,
            ok=_rel_close(barrier, sim.barrier),
            tolerance=tol,
            detail="rounds x barrier latency + max-host messages x per_message",
        ),
    ]


def check_delayed_sync(
    case: str, bytes_delayed: int, bytes_eager: int
) -> CheckResult:
    """The §4.2 optimization must be a measured byte reduction (≤ eager)."""
    saved = bytes_eager - bytes_delayed
    return CheckResult(
        case,
        "delayed-sync-savings",
        predicted=f"<= {bytes_eager}",
        measured=bytes_delayed,
        ok=bytes_delayed <= bytes_eager,
        detail=f"delayed sync saved {saved} bytes vs the eager ablation",
    )


# -- CONGEST-side checks -----------------------------------------------------------


def check_congest_bound(
    case: str, ledger: CommLedger, bound_words: int
) -> CheckResult:
    """No channel may exceed B = c·⌈log₂ n⌉ words in any round."""
    words, where = ledger.max_channel_words()
    detail = "no CONGEST traffic recorded"
    if where is not None:
        detail = (
            f"max channel {where.src}->{where.dst} in round "
            f"{where.round_index}; {len(ledger.violations)} violation(s)"
        )
    return CheckResult(
        case,
        "congest-channel-bound",
        predicted=f"<= {bound_words} words/round",
        measured=words,
        ok=words <= bound_words and not ledger.violations,
        detail=detail,
    )


def check_congest_channels(
    case: str, ledger: CommLedger, num_channels: int
) -> CheckResult:
    """Per round, at most one message per directed channel (2m total)."""
    peak = ledger.max_round_messages(PLANE_CONGEST)
    return CheckResult(
        case,
        "congest-round-channels",
        predicted=f"<= {num_channels} (directed channels)",
        measured=peak,
        ok=peak <= num_channels,
        detail="the outbox is keyed by channel: one combined message each",
    )


def check_congest_stats(case: str, res: Any, ledger: CommLedger) -> list[CheckResult]:
    """Ledger ↔ :class:`MessageStats` reconciliation (exact)."""
    totals = ledger.totals(PLANE_CONGEST)
    fwd, back = res.stats_forward, res.stats_backward
    return [
        CheckResult(
            case,
            "ledger-messages-vs-stats",
            predicted=fwd.messages + back.messages,
            measured=totals.messages,
            ok=totals.messages == fwd.messages + back.messages,
            detail="one ledger record per channel send",
        ),
        CheckResult(
            case,
            "ledger-values-vs-stats",
            predicted=fwd.values + back.values,
            measured=totals.values,
            ok=totals.values == fwd.values + back.values,
            detail="combined payload values per channel",
        ),
        CheckResult(
            case,
            "ledger-words-vs-stats",
            predicted=fwd.words + back.words,
            measured=totals.words,
            ok=totals.words == fwd.words + back.words,
            detail="machine words per payload_words()",
        ),
    ]


# -- suite driver ------------------------------------------------------------------


def run_case_checks(case: CommCheckCase) -> list[CheckResult]:
    """Run one case's engine under a fresh ledger and evaluate its checks."""
    from repro import obs
    from repro.core.sampling import sample_sources
    from repro.graph import generators

    g = generators.from_spec(case.graph)
    sources = sample_sources(g, min(case.sources, g.num_vertices), seed=case.seed)

    if case.algorithm == "mrbc-congest":
        from repro.core.mrbc_congest import mrbc_congest

        bound = congest_bound_words(g.num_vertices)
        ledger = CommLedger(bound_words=bound)
        with obs.session(comm=ledger):
            res = mrbc_congest(g, sources=sources)
        ug = g.to_undirected()
        num_channels = sum(
            len(ug.out_neighbors(v)) for v in range(g.num_vertices)
        )
        return [
            check_congest_bound(case.name, ledger, bound),
            check_congest_channels(case.name, ledger, num_channels),
            *check_congest_stats(case.name, res, ledger),
        ]

    from repro.cluster.model import ClusterModel

    model = ClusterModel(case.hosts)
    ledger = CommLedger()
    if case.algorithm == "sbbc":
        from repro.baselines.sbbc import sbbc_engine

        with obs.session(comm=ledger):
            res = sbbc_engine(
                g, sources=sources, num_hosts=case.hosts, plane=case.plane
            )
    elif case.algorithm == "mrbc":
        from repro.core.mrbc import mrbc_engine

        with obs.session(comm=ledger):
            res = mrbc_engine(
                g,
                sources=sources,
                batch_size=case.batch,
                num_hosts=case.hosts,
                plane=case.plane,
            )
    else:
        raise ValueError(f"unknown commcheck algorithm {case.algorithm!r}")

    results = [
        *check_engine_ledger(case.name, res.run, ledger),
        *check_alpha_beta(case.name, res.run, ledger, model),
    ]
    if case.algorithm == "mrbc":
        from repro.core.mrbc import mrbc_engine

        eager_ledger = CommLedger()
        with obs.session(comm=eager_ledger):
            mrbc_engine(
                g,
                sources=sources,
                batch_size=case.batch,
                num_hosts=case.hosts,
                delayed_sync=False,
                plane=case.plane,
            )
        results.append(
            check_delayed_sync(
                case.name,
                ledger.totals(PLANE_GLUON).payload_bytes,
                eager_ledger.totals(PLANE_GLUON).payload_bytes,
            )
        )
    return results


def run_conformance(
    cases: "tuple[CommCheckCase, ...] | list[CommCheckCase]" = DEFAULT_CHECK_SUITE,
    progress: Callable[[CommCheckCase], None] | None = None,
) -> CommReport:
    """Run the conformance suite and assemble the PASS/FAIL report."""
    report = CommReport()
    for case in cases:
        if progress is not None:
            progress(case)
        report.results.extend(run_case_checks(case))
    return report


def render_comm_report(report: CommReport) -> str:
    """Text table with one row per check and a final verdict line."""
    from repro.analysis.reporting import format_table

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.6g}"
        if isinstance(v, dict):
            return "per-host arrays"
        return str(v)

    rows = [
        [r.case, r.check, fmt(r.predicted), fmt(r.measured),
         "ok" if r.ok else "FAIL", r.tolerance]
        for r in report.results
    ]
    table = format_table(
        ["case", "check", "predicted", "measured", "status", "tolerance"],
        rows,
        title="communication conformance",
    )
    return f"{table}\ncommcheck verdict: {'PASS' if report.ok else 'FAIL'}"
