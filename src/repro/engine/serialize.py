"""Binary serialization of Gluon messages.

Gluon aggregates all values exchanged between one host pair in one round
into a single message and compresses the metadata identifying the proxies
(paper §4.1, §5.3).  This module implements that wire format for real:
:func:`encode_message` packs an aggregated message into bytes and
:func:`decode_message` recovers it exactly.  The substrate's byte
accounting can therefore be the *length of the actual encoding*
(``GluonSubstrate`` uses it through :func:`encoded_size`), and the
(de)serialization cost charged by the cluster model corresponds to work
this module really performs.

Wire format (little-endian)
---------------------------
::

    header:  magic  u16 | version u8 | flags u8
             batch_width u16 | n_vertices u32 | n_items u32
             shared_proxies u32  (bitmap domain size; 0 = index mode)
             reserved 16 B       (field descriptors / MPI envelope stand-in)
    vertex block:
        index mode:  u32 per distinct vertex id
        bitmap mode: ceil(shared_proxies / 8) bytes over the pair's
                     shared-proxy rank space
    per-vertex source block (only if batch_width > 1):
        u8 mode per vertex: 0 = u16 index list (+count u16), 1 = bitvector
        followed by the chosen encoding
    payload block:
        values in (vertex, source) order, each item's payload packed as
        f64/i32 fields per the payload descriptor

The format chooses per component whichever encoding is smaller — the same
choice the size model in :mod:`repro.engine.gluon` makes — so the modelled
sizes and the encoded sizes agree up to alignment padding (asserted in the
tests).
"""

from __future__ import annotations

import struct
from collections import defaultdict
from typing import Any, Sequence

MAGIC = 0x47C7  # "Gluon Compressed"
VERSION = 1
#: Stand-in for MPI envelope + per-field descriptors that a real transport
#: adds around the encoded body (kept consistent with the gluon module).
ENVELOPE_BYTES = 352

_HEADER = struct.Struct("<HBBHIII16x")


def _pack_vertex_block(
    vertices: Sequence[int],
    shared_rank: dict[int, int] | None,
) -> bytes:
    """Index list or bitmap over the shared-proxy rank space."""
    index_cost = 4 * len(vertices)
    if shared_rank is not None and all(v in shared_rank for v in vertices):
        domain = len(shared_rank)
        bitmap_cost = (domain + 7) // 8
        if bitmap_cost < index_cost:
            buf = bytearray(bitmap_cost)
            for v in vertices:
                r = shared_rank[v]
                buf[r >> 3] |= 1 << (r & 7)
            return bytes(buf)
    return b"".join(struct.pack("<I", v) for v in vertices)


def _pack_source_block(sources: Sequence[int], batch_width: int) -> bytes:
    """Per-vertex source set: u16 list or k-bit bitvector, whichever wins."""
    list_cost = 2 + 2 * len(sources)
    vec_cost = (batch_width + 7) // 8
    if vec_cost < list_cost:
        buf = bytearray(vec_cost)
        for s in sources:
            buf[s >> 3] |= 1 << (s & 7)
        return b"\x01" + bytes(buf)
    out = bytearray(b"\x00")
    out += struct.pack("<H", len(sources))
    for s in sources:
        out += struct.pack("<H", s)
    return bytes(out)


def encode_message(
    items: Sequence[tuple[int, int, tuple[Any, ...]]],
    batch_width: int,
    shared_rank: dict[int, int] | None = None,
    payload_format: str = "<if d",
) -> bytes:
    """Encode one aggregated pair message.

    ``items`` are ``(vertex, source_index, payload)`` triples; ``payload``
    fields are packed with ``payload_format`` (a ``struct`` format, spaces
    ignored).  ``shared_rank`` maps vertex id → rank among the pair's
    shared proxies and enables bitmap vertex metadata.
    """
    fmt = struct.Struct(payload_format.replace(" ", ""))
    by_vertex: dict[int, list[tuple[int, tuple[Any, ...]]]] = defaultdict(list)
    for v, si, payload in items:
        if batch_width > 1 and not 0 <= si < batch_width:
            raise ValueError(f"source index {si} outside batch {batch_width}")
        by_vertex[v].append((si, payload))
    vertices = sorted(by_vertex)

    body = bytearray()
    body += _pack_vertex_block(vertices, shared_rank)
    payload_bytes = bytearray()
    for v in vertices:
        entries = sorted(by_vertex[v])
        if batch_width > 1:
            body += _pack_source_block([si for si, _ in entries], batch_width)
        for _si, payload in entries:
            payload_bytes += fmt.pack(*payload)
    body += payload_bytes

    flags = 1 if (shared_rank is not None) else 0
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        flags,
        batch_width,
        len(vertices),
        len(items),
        len(shared_rank) if shared_rank else 0,
    )
    return header + bytes(body)


def decode_message(
    data: bytes,
    shared_vertices: Sequence[int] | None = None,
    payload_format: str = "<if d",
) -> list[tuple[int, int, tuple[Any, ...]]]:
    """Inverse of :func:`encode_message`.

    ``shared_vertices`` must list the pair's shared proxies in rank order
    when the message was encoded with a ``shared_rank`` (bitmap-capable)
    context.
    """
    fmt = struct.Struct(payload_format.replace(" ", ""))
    magic, version, flags, k, n_vertices, n_items, domain = _HEADER.unpack_from(
        data, 0
    )
    if magic != MAGIC or version != VERSION:
        raise ValueError("not a Gluon message (bad magic/version)")
    off = _HEADER.size

    # -- vertex block
    vertices: list[int]
    index_cost = 4 * n_vertices
    bitmap_cost = (domain + 7) // 8 if domain else None
    if flags & 1 and bitmap_cost is not None and bitmap_cost < index_cost:
        if shared_vertices is None:
            raise ValueError("bitmap message needs the shared-proxy list")
        raw = data[off : off + bitmap_cost]
        off += bitmap_cost
        vertices = [
            shared_vertices[r]
            for r in range(domain)
            if raw[r >> 3] & (1 << (r & 7))
        ]
    else:
        vertices = [
            struct.unpack_from("<I", data, off + 4 * i)[0]
            for i in range(n_vertices)
        ]
        off += index_cost
    if len(vertices) != n_vertices:
        raise ValueError("vertex count mismatch")

    # -- per-vertex source blocks
    per_vertex_sources: list[list[int]] = []
    for _v in vertices:
        if k > 1:
            mode = data[off]
            off += 1
            if mode == 1:
                vec_cost = (k + 7) // 8
                raw = data[off : off + vec_cost]
                off += vec_cost
                srcs = [s for s in range(k) if raw[s >> 3] & (1 << (s & 7))]
            else:
                (cnt,) = struct.unpack_from("<H", data, off)
                off += 2
                srcs = [
                    struct.unpack_from("<H", data, off + 2 * i)[0]
                    for i in range(cnt)
                ]
                off += 2 * cnt
        else:
            srcs = [0]
        per_vertex_sources.append(srcs)

    # -- payloads
    out: list[tuple[int, int, tuple[Any, ...]]] = []
    for v, srcs in zip(vertices, per_vertex_sources):
        for si in srcs:
            payload = fmt.unpack_from(data, off)
            off += fmt.size
            out.append((v, si, payload))
    if len(out) != n_items:
        raise ValueError("item count mismatch")
    return out


def encoded_size(
    items: Sequence[tuple[int, int, tuple[Any, ...]]],
    batch_width: int,
    shared_rank: dict[int, int] | None = None,
    payload_format: str = "<if d",
) -> int:
    """Length of the encoding plus the transport envelope."""
    return ENVELOPE_BYTES + len(
        encode_message(items, batch_width, shared_rank, payload_format)
    )
