"""Per-function effect inference — the atoms of the dataflow layer.

For every function scope in a module this pass records, from one AST
walk, the *effect summary* the interprocedural rules and the call graph
consume: which per-source state fields it reads/writes, which module
globals it mutates, which telemetry/ledger objects it stores into,
every call site (as a dotted chain, so the graph builder can resolve
it), which nested closures it defines and where it hands them, whether
it raises or routes resilience errors, and each resilience ``except``
handler with the calls made inside it (for the interprocedural RL404
refinement).

Summaries are plain data — JSON round-trippable via :meth:`to_dict` /
:meth:`from_dict` — so the incremental cache can persist them and a
``--changed`` run can rebuild the whole-program call graph without
re-parsing unchanged files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint import model
from repro.lint.rules import FunctionScope, ModuleInfo, chain_root, terminal_name


def chain_text(node: ast.AST) -> str:
    """Render a call/attribute chain as dotted text.

    Subscripts are elided (``self.hosts[h].push`` → ``self.hosts.push``)
    — resolution works over names, not indices.  Unrenderable roots
    (calls of calls, literals) contribute ``()``.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            parts.append("()")
            break
    return ".".join(reversed(parts))


@dataclass
class CallSite:
    """One call expression: its dotted chain and bare-name arguments."""

    chain: str
    line: int
    arg_names: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"chain": self.chain, "line": self.line, "args": list(self.arg_names)}

    @classmethod
    def from_dict(cls, d: dict) -> "CallSite":
        return cls(chain=d["chain"], line=int(d["line"]), arg_names=tuple(d["args"]))


@dataclass
class HandlerInfo:
    """One ``except``-a-resilience-error handler (RL404 refinement)."""

    line: int
    caught: tuple[str, ...]
    routed: bool
    calls: tuple[str, ...]  # terminal names called inside the handler

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "caught": list(self.caught),
            "routed": self.routed,
            "calls": list(self.calls),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "HandlerInfo":
        return cls(
            line=int(d["line"]),
            caught=tuple(d["caught"]),
            routed=bool(d["routed"]),
            calls=tuple(d["calls"]),
        )


@dataclass
class FunctionEffects:
    """The inferred effect summary of one function scope."""

    qualname: str
    line: int
    class_name: str = ""
    parent: str = ""  # qualname of the enclosing function scope
    params: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    state_reads: list[tuple[str, int]] = field(default_factory=list)
    state_writes: list[tuple[str, int]] = field(default_factory=list)
    global_mutations: list[tuple[str, str, int]] = field(default_factory=list)
    telemetry_writes: list[tuple[str, int]] = field(default_factory=list)
    sync_lines: list[int] = field(default_factory=list)
    raises: bool = False
    routes: bool = False
    nested_defs: list[str] = field(default_factory=list)
    #: Nested defs (or lambda pseudo-names) passed to a runtime seam.
    seam_closures: list[str] = field(default_factory=list)
    handlers: list[HandlerInfo] = field(default_factory=list)

    # -- classification --------------------------------------------------------

    @property
    def pure(self) -> bool:
        """Locally side-effect-free: no state/global/telemetry writes and
        no synchronization.  (Transitive purity is the Program's job.)"""
        return not (
            self.state_writes
            or self.global_mutations
            or self.telemetry_writes
            or self.sync_lines
        )

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "class_name": self.class_name,
            "parent": self.parent,
            "params": list(self.params),
            "calls": [c.to_dict() for c in self.calls],
            "state_reads": [list(t) for t in self.state_reads],
            "state_writes": [list(t) for t in self.state_writes],
            "global_mutations": [list(t) for t in self.global_mutations],
            "telemetry_writes": [list(t) for t in self.telemetry_writes],
            "sync_lines": list(self.sync_lines),
            "raises": self.raises,
            "routes": self.routes,
            "nested_defs": list(self.nested_defs),
            "seam_closures": list(self.seam_closures),
            "handlers": [h.to_dict() for h in self.handlers],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionEffects":
        return cls(
            qualname=d["qualname"],
            line=int(d["line"]),
            class_name=d.get("class_name", ""),
            parent=d.get("parent", ""),
            params=tuple(d.get("params", ())),
            calls=[CallSite.from_dict(c) for c in d.get("calls", ())],
            state_reads=[(a, int(ln)) for a, ln in d.get("state_reads", ())],
            state_writes=[(a, int(ln)) for a, ln in d.get("state_writes", ())],
            global_mutations=[
                (n, how, int(ln)) for n, how, ln in d.get("global_mutations", ())
            ],
            telemetry_writes=[(c, int(ln)) for c, ln in d.get("telemetry_writes", ())],
            sync_lines=[int(x) for x in d.get("sync_lines", ())],
            raises=bool(d.get("raises", False)),
            routes=bool(d.get("routes", False)),
            nested_defs=list(d.get("nested_defs", ())),
            seam_closures=list(d.get("seam_closures", ())),
            handlers=[HandlerInfo.from_dict(h) for h in d.get("handlers", ())],
        )


@dataclass
class ModuleEffects:
    """Effect summaries plus the module-level facts the graph needs."""

    relpath: str
    module: str  # dotted import name, "" outside the package tree
    functions: dict[str, FunctionEffects] = field(default_factory=dict)
    #: local name -> dotted import target ("from X import a as b" → b: X.a)
    imports: dict[str, str] = field(default_factory=dict)
    #: class name -> sorted method names
    classes: dict[str, list[str]] = field(default_factory=dict)
    #: module-level names bound to mutable containers: (name, kind, line)
    mutable_globals: list[tuple[str, str, int]] = field(default_factory=list)
    vertex_programs: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "functions": {q: fe.to_dict() for q, fe in self.functions.items()},
            "imports": dict(self.imports),
            "classes": {c: list(ms) for c, ms in self.classes.items()},
            "mutable_globals": [list(t) for t in self.mutable_globals],
            "vertex_programs": list(self.vertex_programs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleEffects":
        return cls(
            relpath=d["relpath"],
            module=d.get("module", ""),
            functions={
                q: FunctionEffects.from_dict(fe)
                for q, fe in d.get("functions", {}).items()
            },
            imports=dict(d.get("imports", {})),
            classes={c: list(ms) for c, ms in d.get("classes", {}).items()},
            mutable_globals=[
                (n, k, int(ln)) for n, k, ln in d.get("mutable_globals", ())
            ],
            vertex_programs=list(d.get("vertex_programs", ())),
        )


def module_name_of(relpath: str) -> str:
    """Dotted import name for a source path (``src/repro/core/mrbc.py`` →
    ``repro.core.mrbc``); "" when the path is not under a package tree."""
    norm = relpath.replace("\\", "/")
    if not norm.endswith(".py"):
        return ""
    parts = norm[: -len(".py")].split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_mutable_ctor(node: ast.AST) -> str | None:
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        t = terminal_name(node.func)
        if t in model.MUTABLE_CONSTRUCTOR_NAMES:
            return t
    return None


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def _bound_names(scope: FunctionScope) -> set[str]:
    """Names assigned (or bound as params/loop targets) in this scope."""
    bound = set(scope.params)
    for node in scope.walk():
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def _infer_function(
    mod: ModuleInfo,
    scope: FunctionScope,
    module_mutables: set[str],
    nested_names: set[str],
) -> FunctionEffects:
    fe = FunctionEffects(
        qualname=scope.qualname,
        line=getattr(scope.node, "lineno", 1),
        class_name=scope.class_node.name if scope.class_node is not None else "",
        params=tuple(scope.params),
    )
    bound = _bound_names(scope)
    global_decls: set[str] = set()
    closure_args_seen: set[str] = set()

    for node in scope.walk():
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Raise):
            fe.raises = True
        elif isinstance(node, ast.Call):
            chain = chain_text(node.func)
            args = tuple(
                a.id
                for a in list(node.args) + [k.value for k in node.keywords]
                if isinstance(a, ast.Name)
            )
            fe.calls.append(
                CallSite(chain=chain, line=node.lineno, arg_names=args)
            )
            t = terminal_name(node.func)
            if t in model.SYNC_PRIMITIVES:
                fe.sync_lines.append(node.lineno)
            if t in model.RESILIENCE_ROUTING_NAMES:
                fe.routes = True
            if t in model.RUNTIME_SEAM_CALLS:
                closure_args_seen.update(args)
            # in-place mutation of a module-level mutable global
            if (
                t in model.MUTATING_METHODS
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in module_mutables
                and node.func.value.id not in bound
            ):
                fe.global_mutations.append(
                    (node.func.value.id, f".{t}()", node.lineno)
                )
        elif isinstance(node, ast.Attribute):
            if node.attr in model.STATE_FIELD_ATTRS and isinstance(
                node.ctx, ast.Load
            ):
                parent = mod.parent(node)
                store_through = isinstance(
                    parent, ast.Subscript
                ) and isinstance(parent.ctx, (ast.Store, ast.Del))
                if store_through:
                    fe.state_writes.append((node.attr, node.lineno))
                else:
                    fe.state_reads.append((node.attr, node.lineno))
            elif node.attr in model.STATE_FIELD_ATTRS and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                fe.state_writes.append((node.attr, node.lineno))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    if tgt.id in global_decls:
                        fe.global_mutations.append(
                            (tgt.id, "assign", node.lineno)
                        )
                    continue
                if not isinstance(tgt, (ast.Attribute, ast.Subscript)):
                    continue
                root = chain_root(tgt)
                if isinstance(root, ast.Name):
                    rid = root.id
                    if rid in module_mutables and rid not in bound:
                        fe.global_mutations.append((rid, "store", node.lineno))
                    if (
                        rid in model.TELEMETRY_RECEIVER_NAMES
                        or rid in model.LEDGER_RECEIVER_NAMES
                    ):
                        fe.telemetry_writes.append(
                            (chain_text(tgt), node.lineno)
                        )
        elif isinstance(node, ast.ExceptHandler):
            caught = _caught_names(node.type)
            hit = tuple(sorted(caught & model.RESILIENCE_ERROR_NAMES))
            if not hit:
                continue
            routed = False
            calls: list[str] = []
            for inner in ast.walk(node):
                if isinstance(inner, ast.Raise):
                    routed = True
                elif isinstance(inner, ast.Call):
                    ct = terminal_name(inner.func)
                    if ct in model.RESILIENCE_ROUTING_NAMES:
                        routed = True
                    elif ct is not None:
                        calls.append(ct)
            fe.handlers.append(
                HandlerInfo(
                    line=node.lineno,
                    caught=hit,
                    routed=routed,
                    calls=tuple(dict.fromkeys(calls)),
                )
            )
    # Nested defs become their qualname; anything else is kept raw so the
    # graph can try a module-level function of that name (a step function
    # defined at module scope and handed to run_loop is still a round root).
    fe.seam_closures = sorted(
        f"{scope.qualname}.{n}" if n in nested_names else n
        for n in closure_args_seen
    )
    return fe


def _caught_names(node: ast.AST | None) -> set[str]:
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        out: set[str] = set()
        for elt in node.elts:
            out |= _caught_names(elt)
        return out
    t = terminal_name(node)
    return set() if t is None else {t}


def infer_effects(mod: ModuleInfo) -> ModuleEffects:
    """Run effect inference over every function scope of ``mod``."""
    me = ModuleEffects(
        relpath=mod.relpath,
        module=module_name_of(mod.relpath),
        imports=_collect_imports(mod.tree),
        vertex_programs=sorted(mod.vertex_program_classes),
    )
    # module-level mutable bindings
    for node in ast.iter_child_nodes(mod.tree):
        if isinstance(node, ast.Assign):
            kind = _is_mutable_ctor(node.value)
            if kind is None:
                continue
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    me.mutable_globals.append((tgt.id, kind, node.lineno))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            kind = _is_mutable_ctor(node.value)
            if kind is not None and isinstance(node.target, ast.Name):
                me.mutable_globals.append((node.target.id, kind, node.lineno))
    module_mutables = {n for n, _k, _ln in me.mutable_globals}

    # class method tables
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ClassDef):
            me.classes[node.name] = sorted(
                c.name
                for c in node.body
                if isinstance(c, (ast.FunctionDef, ast.AsyncFunctionDef))
            )

    func_scopes = [s for s in mod.scopes if s.qualname]
    qualnames = {s.qualname for s in func_scopes}
    for scope in func_scopes:
        nested = {
            q.rsplit(".", 1)[1]
            for q in qualnames
            if q.startswith(scope.qualname + ".") and "." not in q[len(scope.qualname) + 1 :]
        }
        fe = _infer_function(mod, scope, module_mutables, nested)
        parent_qn = scope.qualname.rsplit(".", 1)[0] if "." in scope.qualname else ""
        if parent_qn in qualnames:
            fe.parent = parent_qn
        fe.nested_defs = sorted(
            f"{scope.qualname}.{n}" for n in nested
        )
        me.functions[scope.qualname] = fe
    return me
