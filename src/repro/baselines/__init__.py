"""Baseline BC algorithms the paper evaluates MRBC against.

- :mod:`repro.baselines.brandes` — Brandes' sequential algorithm
  (Algorithms 1-2 of the paper); the correctness reference for everything
  else in the library.
- :mod:`repro.baselines.sbbc` — Synchronous-Brandes BC: level-by-level BFS
  plus level-by-level accumulation on the distributed engine, one source
  at a time (the paper's main distributed comparison point).
- :mod:`repro.baselines.abbc` — Asynchronous-Brandes BC: worklist-driven
  shared-memory implementation (Lonestar style); no BSP barriers, wins on
  high-diameter graphs, single-host only.
- :mod:`repro.baselines.mfbc` — Maximal-Frontier BC: sparse-matrix
  Bellman-Ford formulation (Solomonik et al.), batched over sources.
"""

from repro.baselines.abbc import ABBCResult, abbc
from repro.baselines.brandes import brandes_bc, brandes_sssp
from repro.baselines.mfbc import MFBCResult, mfbc
from repro.baselines.sbbc import SBBCResult, sbbc_engine
from repro.baselines.sbbc_congest import SBBCCongestResult, sbbc_congest
from repro.baselines.weighted_brandes import weighted_brandes_bc
from repro.baselines.weighted_mfbc import WeightedMFBCResult, weighted_mfbc

__all__ = [
    "ABBCResult",
    "MFBCResult",
    "SBBCCongestResult",
    "SBBCResult",
    "WeightedMFBCResult",
    "abbc",
    "brandes_bc",
    "brandes_sssp",
    "mfbc",
    "sbbc_congest",
    "sbbc_engine",
    "weighted_brandes_bc",
    "weighted_mfbc",
]
