"""Predicted-vs-measured round-bound conformance (``repro rounds --check``).

The :class:`~repro.obs.rounds.RoundLedger` measures how many BSP /
CONGEST rounds each source batch actually took; this module checks the
measurements against what §4 of the paper predicts, producing a PASS/FAIL
report:

- **ledger ↔ engine reconciliation** — ledger round totals (overall and
  per phase) must equal the authoritative :class:`~repro.engine.stats
  .EngineRun` accounting exactly; CONGEST ledger totals must equal the
  batched result's round sum;
- **per-batch round budget** — every forward (and backward) pass over a
  batch of ``k`` sources must finish within ``Diam + k + slack`` rounds,
  the engine-level form of Lemma 8's ``k + H`` bound (``H`` measured as
  the largest finite distance from the case's sources, ``slack`` absorbs
  the detector's trailing all-quiet round);
- **Lemma 8 batch bound (CONGEST)** — each batch's forward + accumulation
  network runs must finish within ``2(k + H) + slack`` rounds, the
  Theorem 1 part II per-batch quantity;
- **quiescence** — on fault-free runs every phase unit must terminate by
  quiescence detection, never by hitting its round limit;
- **work efficiency** — forward fires settle each reachable ``(source,
  vertex)`` pair exactly once (ledger ``settled`` equals the count of
  finite distances), and backward fires settle each non-source pair
  exactly once — the "every pair fires once" invariant behind the round
  bound's work term;
- **delayed-sync round neutrality** — §4.3's delayed synchronization
  saves bytes; it must not *cost* rounds (MRBC with ``delayed_sync=True``
  takes no more rounds than the eager ablation).

The default suite (:data:`DEFAULT_ROUND_SUITE`) is CI-sized: both graph
regimes (random, high-diameter road) across both Gluon engines and the
batched CONGEST implementation.  Fault injection is deliberately absent —
the budgets are defined on fault-free runs (recovery rounds are ledgered
separately and excluded from the per-batch counts by construction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.analysis.commcheck import CheckResult
from repro.obs.rounds import RoundLedger, UnitRounds

#: Extra rounds allowed on top of the theoretical ``Diam + k`` budget:
#: one trailing all-quiet round for the quiescence detector, one for the
#: batch's startup round.  Deliberately small — the paper's bound is the
#: point, and the engines meet it tightly (see ``tests/test_rounds.py``).
DEFAULT_SLACK = 2


@dataclass
class RoundReport:
    """All checks of one conformance run, with the overall verdict."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": 1,
            "verdict": "PASS" if self.ok else "FAIL",
            "checks": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


@dataclass(frozen=True)
class RoundCheckCase:
    """One engine configuration the conformance suite runs."""

    name: str
    algorithm: str  # "mrbc" | "sbbc" | "mrbc-congest"
    graph: str
    hosts: int = 4
    sources: int = 8
    batch: int = 4
    seed: int = 7
    slack: int = DEFAULT_SLACK
    plane: str = "dict"  # engine tier (ignored by mrbc-congest)


#: CI-sized: seconds total, both engines and both graph regimes, plus the
#: batched CONGEST implementation (the Lemma 8 bound holds per batch).
DEFAULT_ROUND_SUITE: tuple[RoundCheckCase, ...] = (
    RoundCheckCase("mrbc-er60", "mrbc", "er:60:3"),
    RoundCheckCase("mrbc-road8", "mrbc", "grid:8:8"),
    RoundCheckCase("sbbc-er60", "sbbc", "er:60:3"),
    RoundCheckCase("sbbc-road8", "sbbc", "grid:8:8"),
    RoundCheckCase("congest-er60", "mrbc-congest", "er:60:3"),
    RoundCheckCase("congest-road8", "mrbc-congest", "grid:8:8"),
)


# -- engine-side checks ------------------------------------------------------------


def check_ledger_run(case: str, run: Any, ledger: RoundLedger) -> list[CheckResult]:
    """Ledger ↔ :class:`EngineRun` reconciliation (exact)."""
    by_phase = ledger.rounds_by_phase()
    run_by_phase = {
        p: run.rounds_in_phase(p) for p in sorted(by_phase)
    }
    return [
        CheckResult(
            case,
            "ledger-rounds-vs-run",
            predicted=run.num_rounds,
            measured=ledger.total_rounds(),
            ok=ledger.total_rounds() == run.num_rounds,
            detail="one ledger row per EngineRun round, crashes included",
        ),
        CheckResult(
            case,
            "ledger-phase-rounds-vs-run",
            predicted=run_by_phase,
            measured=by_phase,
            ok=by_phase == run_by_phase,
            detail="per-phase ledger rows must match effective_phase counts",
        ),
    ]


def check_round_budget(
    case: str,
    units: list[UnitRounds],
    diameter: int,
    default_k: int,
    slack: int,
) -> list[CheckResult]:
    """Every phase unit must finish within ``Diam + k + slack`` rounds.

    ``k`` is read from the unit's attrs when the driver recorded it
    (MRBC batches), else 1 for per-source units (SBBC), else
    ``default_k``.  The backward pass reverses the forward schedule, so
    the same budget applies to it (Theorem 1 part II's factor 2).
    """
    out: list[CheckResult] = []
    worst = 0
    worst_budget = 0
    worst_margin = float("-inf")
    ok = True
    for u in units:
        if "k" in u.attrs:
            k = int(u.attrs["k"])
        elif "source" in u.attrs:
            k = 1
        else:
            k = default_k
        budget = diameter + k + slack
        if u.num_rounds - budget > worst_margin:
            worst, worst_budget = u.num_rounds, budget
            worst_margin = u.num_rounds - budget
        if u.num_rounds > budget:
            ok = False
            out.append(
                CheckResult(
                    case,
                    "round-budget",
                    predicted=f"<= {budget} (Diam {diameter} + k {k} + slack {slack})",
                    measured=u.num_rounds,
                    ok=False,
                    detail=f"unit {u.phase} {u.label} exceeded its budget",
                )
            )
    if ok:
        out.append(
            CheckResult(
                case,
                "round-budget",
                predicted=f"<= Diam {diameter} + k + slack {slack} per unit",
                measured=worst,
                ok=True,
                detail=f"worst unit used {worst} of {worst_budget} rounds",
            )
        )
    return out


def check_quiescence(case: str, units: list[UnitRounds]) -> CheckResult:
    """Fault-free units must end by quiescence, never by round limit."""
    bad = [
        f"{u.phase} {u.label}: {u.terminated_by}"
        for u in units
        if u.terminated_by not in ("quiescence", "stopped")
    ]
    return CheckResult(
        case,
        "unit-quiescence",
        predicted="every unit terminates by quiescence",
        measured=bad or "all quiescent",
        ok=not bad,
        detail="round-limit termination means the bound was never reached",
    )


def check_work_efficiency(
    case: str, ledger: RoundLedger, dist: np.ndarray, num_sources: int
) -> list[CheckResult]:
    """Each reachable (source, vertex) pair fires exactly once per phase.

    Forward fires settle every finite-distance pair; backward fires settle
    every finite pair except the sources themselves (a source has no
    dependency contribution to receive).
    """
    finite = int((np.asarray(dist) >= 0).sum())
    fwd = ledger.total_settled("forward")
    bwd = ledger.total_settled("backward")
    return [
        CheckResult(
            case,
            "work-efficiency-forward",
            predicted=finite,
            measured=fwd,
            ok=fwd == finite,
            detail="forward fires must equal the finite-distance pair count",
        ),
        CheckResult(
            case,
            "work-efficiency-backward",
            predicted=finite - num_sources,
            measured=bwd,
            ok=bwd == finite - num_sources,
            detail="backward fires cover every finite pair except the sources",
        ),
    ]


def check_delayed_rounds(
    case: str, rounds_delayed: int, rounds_eager: int
) -> CheckResult:
    """§4.3's delayed sync saves bytes; it must not cost rounds."""
    return CheckResult(
        case,
        "delayed-sync-rounds",
        predicted=f"<= {rounds_eager}",
        measured=rounds_delayed,
        ok=rounds_delayed <= rounds_eager,
        detail="delayed sync must not inflate the round count vs eager",
    )


# -- CONGEST-side checks -----------------------------------------------------------


def check_lemma8_batches(
    case: str,
    ledger: RoundLedger,
    diameter: int,
    slack: int,
) -> CheckResult:
    """Each batch's network runs stay within ``2(k + H) + slack`` rounds.

    Groups the ledger's "congest" units by their ``batch`` attr (one
    forward k-SSP run plus one Alg. 5 accumulation run each) and compares
    the per-batch sum against Lemma 8's two-phase budget.
    """
    per_batch: dict[Any, int] = {}
    k_of: dict[Any, int] = {}
    for u in ledger.units("congest"):
        b = u.attrs.get("batch")
        per_batch[b] = per_batch.get(b, 0) + u.num_rounds
        k_of[b] = int(u.attrs.get("k", 1))
    bad: list[str] = []
    worst = 0
    worst_budget = 0
    worst_margin = float("-inf")
    for b, rounds in per_batch.items():
        budget = 2 * (k_of[b] + diameter) + slack
        if rounds - budget > worst_margin:
            worst, worst_budget = rounds, budget
            worst_margin = rounds - budget
        if rounds > budget:
            bad.append(f"batch {b}: {rounds} > {budget}")
    return CheckResult(
        case,
        "lemma8-batch-rounds",
        predicted=f"<= 2(k + H {diameter}) + slack {slack} per batch",
        measured=bad or worst,
        ok=not bad,
        detail=(
            f"worst batch used {worst} of {worst_budget} rounds"
            if not bad
            else "per-batch round budget exceeded"
        ),
    )


def check_ledger_congest(case: str, res: Any, ledger: RoundLedger) -> CheckResult:
    """Ledger ↔ :class:`BatchedMRBCResult` reconciliation (exact)."""
    return CheckResult(
        case,
        "ledger-rounds-vs-result",
        predicted=res.total_rounds,
        measured=ledger.total_rounds(),
        ok=ledger.total_rounds() == res.total_rounds,
        detail="one ledger row per CONGEST network round, across batches",
    )


# -- suite driver ------------------------------------------------------------------


def run_case_checks(case: RoundCheckCase) -> list[CheckResult]:
    """Run one case's engine under a fresh ledger and evaluate its checks."""
    from repro import obs
    from repro.core.sampling import sample_sources
    from repro.graph import generators
    from repro.graph.properties import estimate_diameter

    g = generators.from_spec(case.graph)
    sources = sample_sources(g, min(case.sources, g.num_vertices), seed=case.seed)
    # The paper's H: the largest finite distance from any case source — an
    # upper bound on every batch's eccentricity.
    diameter = estimate_diameter(g, sources)

    if case.algorithm == "mrbc-congest":
        from repro.core.mrbc_congest import mrbc_congest_batched

        ledger = RoundLedger()
        with obs.session(rounds=ledger):
            res = mrbc_congest_batched(g, sources=sources, batch_size=case.batch)
        return [
            check_ledger_congest(case.name, res, ledger),
            check_lemma8_batches(case.name, ledger, diameter, case.slack),
            check_quiescence(case.name, ledger.units()),
        ]

    ledger = RoundLedger()
    if case.algorithm == "sbbc":
        from repro.baselines.sbbc import sbbc_engine

        with obs.session(rounds=ledger):
            res = sbbc_engine(
                g, sources=sources, num_hosts=case.hosts, plane=case.plane
            )
    elif case.algorithm == "mrbc":
        from repro.core.mrbc import mrbc_engine

        with obs.session(rounds=ledger):
            res = mrbc_engine(
                g,
                sources=sources,
                batch_size=case.batch,
                num_hosts=case.hosts,
                plane=case.plane,
            )
    else:
        raise ValueError(f"unknown roundcheck algorithm {case.algorithm!r}")

    results = [
        *check_ledger_run(case.name, res.run, ledger),
        *check_round_budget(
            case.name, ledger.units(), diameter, case.batch, case.slack
        ),
        check_quiescence(case.name, ledger.units()),
        *check_work_efficiency(
            case.name, ledger, res.dist, int(sources.size)
        ),
    ]
    if case.algorithm == "mrbc":
        from repro.core.mrbc import mrbc_engine

        eager = RoundLedger()
        with obs.session(rounds=eager):
            mrbc_engine(
                g,
                sources=sources,
                batch_size=case.batch,
                num_hosts=case.hosts,
                delayed_sync=False,
                plane=case.plane,
            )
        results.append(
            check_delayed_rounds(
                case.name, ledger.total_rounds(), eager.total_rounds()
            )
        )
    return results


def run_conformance(
    cases: "tuple[RoundCheckCase, ...] | list[RoundCheckCase]" = DEFAULT_ROUND_SUITE,
    progress: Callable[[RoundCheckCase], None] | None = None,
) -> RoundReport:
    """Run the conformance suite and assemble the PASS/FAIL report."""
    report = RoundReport()
    for case in cases:
        if progress is not None:
            progress(case)
        report.results.extend(run_case_checks(case))
    return report


def render_rounds_report(report: RoundReport) -> str:
    """Text table with one row per check and a final verdict line."""
    from repro.analysis.reporting import format_table

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.6g}"
        if isinstance(v, dict):
            return str(dict(sorted(v.items())))
        if isinstance(v, list):
            return "; ".join(str(x) for x in v)
        return str(v)

    rows = [
        [r.case, r.check, fmt(r.predicted), fmt(r.measured),
         "ok" if r.ok else "FAIL"]
        for r in report.results
    ]
    table = format_table(
        ["case", "check", "predicted", "measured", "status"],
        rows,
        title="round-bound conformance",
    )
    return f"{table}\nroundcheck verdict: {'PASS' if report.ok else 'FAIL'}"
