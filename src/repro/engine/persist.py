"""Persistence for engine statistics: save/load an EngineRun as ``.npz``.

The benchmark harness compares many (algorithm × graph × hosts × batch)
configurations; persisting the per-round statistics lets expensive runs be
collected once and re-analyzed under different cluster-model constants
without re-simulating (the artifact-appendix workflow: collect on the
cluster, post-process locally).
"""

from __future__ import annotations

import os

import numpy as np

from repro.engine.stats import EngineRun, RoundStats
from repro.utils.timing import OpCounter

_FORMAT_VERSION = 1

#: Phase names are stored as small integers for compactness.
_PHASES = ("forward", "backward", "bfs", "wcc", "pagerank", "other")


def _phase_code(phase: str) -> int:
    try:
        return _PHASES.index(phase)
    except ValueError:
        return _PHASES.index("other")


def save_run(run: EngineRun, path: str | os.PathLike) -> None:
    """Serialize ``run`` to a compressed NumPy archive."""
    R = run.num_rounds
    H = run.num_hosts
    compute = np.zeros((R, H, 3), dtype=np.int64)
    bytes_io = np.zeros((R, H, 2), dtype=np.int64)
    msgs_io = np.zeros((R, H, 2), dtype=np.int64)
    scalars = np.zeros((R, 4), dtype=np.int64)
    phases = np.zeros(R, dtype=np.int64)
    for i, rs in enumerate(run.rounds):
        for h, oc in enumerate(rs.compute):
            compute[i, h] = (oc.vertex_ops, oc.edge_ops, oc.struct_ops)
        bytes_io[i, :, 0] = rs.bytes_out
        bytes_io[i, :, 1] = rs.bytes_in
        msgs_io[i, :, 0] = rs.msgs_out
        msgs_io[i, :, 1] = rs.msgs_in
        scalars[i] = (
            rs.pair_messages,
            rs.items_synced,
            rs.proxies_synced,
            rs.round_index,
        )
        phases[i] = _phase_code(rs.phase)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        num_hosts=np.int64(H),
        compute=compute,
        bytes_io=bytes_io,
        msgs_io=msgs_io,
        scalars=scalars,
        phases=phases,
    )


def load_run(path: str | os.PathLike) -> EngineRun:
    """Load an :class:`EngineRun` written by :func:`save_run`."""
    with np.load(path) as data:
        if int(data["version"]) != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported run-file version {int(data['version'])}"
            )
        H = int(data["num_hosts"])
        run = EngineRun(num_hosts=H)
        compute = data["compute"]
        bytes_io = data["bytes_io"]
        msgs_io = data["msgs_io"]
        scalars = data["scalars"]
        phases = data["phases"]
        for i in range(compute.shape[0]):
            rs = RoundStats(
                round_index=int(scalars[i, 3]),
                phase=_PHASES[int(phases[i])],
                compute=[
                    OpCounter(*(int(x) for x in compute[i, h]))
                    for h in range(H)
                ],
                bytes_out=bytes_io[i, :, 0].copy(),
                bytes_in=bytes_io[i, :, 1].copy(),
                msgs_out=msgs_io[i, :, 0].copy(),
                msgs_in=msgs_io[i, :, 1].copy(),
                pair_messages=int(scalars[i, 0]),
                items_synced=int(scalars[i, 1]),
                proxies_synced=int(scalars[i, 2]),
            )
            run.rounds.append(rs)
        return run
