"""Tests for repro.analysis: metrics, reporting, validation helpers."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import summarize_engine_result
from repro.analysis.reporting import (
    format_table,
    geometric_mean,
    ratio,
    rows_from_dicts,
)
from repro.analysis.validation import compare_bc, max_abs_error
from repro.cluster.model import ClusterModel
from repro.core.mrbc import mrbc_engine
from repro.graph import generators as gen
from tests.conftest import some_sources


class TestMetrics:
    def test_summary_from_real_run(self):
        g = gen.erdos_renyi(40, 3.0, seed=71)
        srcs = some_sources(g)
        res = mrbc_engine(g, sources=srcs, batch_size=6, num_hosts=4)
        s = summarize_engine_result("mrbc", "er40", res.run, len(srcs))
        assert s.algorithm == "mrbc"
        assert s.num_hosts == 4
        assert s.total_rounds == res.run.num_rounds
        assert s.execution_time == pytest.approx(
            s.computation_time + s.communication_time
        )
        assert s.rounds_per_source == pytest.approx(s.total_rounds / len(srcs))
        assert s.time_per_source > 0
        row = s.as_row()
        assert row["hosts"] == 4

    def test_explicit_rounds_and_model(self):
        g = gen.erdos_renyi(30, 3.0, seed=72)
        res = mrbc_engine(g, sources=[0, 1], batch_size=2, num_hosts=2)
        s = summarize_engine_result(
            "x", "g", res.run, 2, total_rounds=999, model=ClusterModel(2)
        )
        assert s.total_rounds == 999


class TestReporting:
    def test_format_table_alignment(self):
        txt = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert lines[-1].startswith("333")

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_rows_from_dicts(self):
        headers, rows = rows_from_dicts([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert headers == ["x", "y"]
        assert rows == [[1, 2], [3, 4]]
        assert rows_from_dicts([]) == ([], [])

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_ratio(self):
        assert ratio(6, 3) == 2
        assert math.isinf(ratio(1, 0))


class TestValidationHelpers:
    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.0, 2.5])) == 0.5
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(2), np.zeros(3))

    def test_compare_bc_tolerance(self):
        a = np.array([1.0, 2.0])
        assert compare_bc(a, a + 1e-12)
        assert not compare_bc(a, a + 1.0)
