"""Tests for the Gluon wire format (engine/serialize.py)."""

import struct

import pytest

from repro.engine.gluon import MESSAGE_HEADER_BYTES
from repro.engine.serialize import (
    decode_message,
    encode_message,
    encoded_size,
)

FMT = "<i d"  # MRBC forward payload: dist i32 + sigma f64 = 12 B


def items_for(pairs):
    """Build (vertex, source, (dist, sigma)) items; payload = (i32, f64)."""
    return [(v, si, (d, float(sg))) for v, si, d, sg in pairs]


class TestRoundTrip:
    def test_single_item(self):
        items = items_for([(7, 0, 3, 2.0)])
        data = encode_message(items, batch_width=1, payload_format=FMT)
        assert decode_message(data, payload_format=FMT) == items

    def test_multi_vertex_multi_source(self):
        items = items_for(
            [(3, 1, 2, 1.0), (3, 5, 4, 2.0), (9, 0, 1, 3.0), (9, 7, 2, 4.0)]
        )
        data = encode_message(items, batch_width=8, payload_format=FMT)
        back = decode_message(data, payload_format=FMT)
        assert sorted(back) == sorted(items)

    def test_bitmap_vertex_mode(self):
        shared = list(range(100, 200))
        rank = {v: i for i, v in enumerate(shared)}
        items = items_for([(v, 0, 1, 1.0) for v in shared[::2]])
        data = encode_message(
            items, batch_width=1, shared_rank=rank, payload_format=FMT
        )
        back = decode_message(data, shared_vertices=shared, payload_format=FMT)
        assert sorted(back) == sorted(items)

    def test_bitvector_source_mode(self):
        # Many sources of one vertex: bitvector beats the index list.
        items = items_for([(5, si, 2, 1.0) for si in range(0, 64, 2)])
        data = encode_message(items, batch_width=64, payload_format=FMT)
        back = decode_message(data, payload_format=FMT)
        assert sorted(back) == sorted(items)

    def test_empty_message(self):
        data = encode_message([], batch_width=4, payload_format=FMT)
        assert decode_message(data, payload_format=FMT) == []


class TestCompressionChoices:
    def test_bitmap_smaller_when_dense(self):
        shared = list(range(400))
        rank = {v: i for i, v in enumerate(shared)}
        dense = items_for([(v, 0, 1, 1.0) for v in shared])
        with_bitmap = encode_message(dense, 1, shared_rank=rank, payload_format=FMT)
        without = encode_message(dense, 1, shared_rank=None, payload_format=FMT)
        assert len(with_bitmap) < len(without)

    def test_index_mode_when_sparse(self):
        shared = list(range(10_000))
        rank = {v: i for i, v in enumerate(shared)}
        sparse = items_for([(3, 0, 1, 1.0)])
        a = encode_message(sparse, 1, shared_rank=rank, payload_format=FMT)
        b = encode_message(sparse, 1, shared_rank=None, payload_format=FMT)
        assert len(a) == len(b)  # bitmap would be 1250 B; index wins

    def test_source_bitvector_amortizes(self):
        """Marginal bytes per extra source fall below the 2 B list entry
        once the bitvector kicks in."""
        def size(n_sources):
            items = items_for([(5, si, 1, 1.0) for si in range(n_sources)])
            return len(encode_message(items, batch_width=64, payload_format=FMT))

        fmt_size = struct.calcsize(FMT.replace(" ", ""))
        per_item = (size(40) - size(20)) / 20
        assert per_item == pytest.approx(fmt_size)  # only payload grows


class TestModelAgreement:
    def test_envelope_matches_gluon_constant(self):
        """The size model's fixed header and the serializer's envelope +
        wire header stay in the same ballpark (within 10%)."""
        empty = encoded_size([], batch_width=1, payload_format=FMT)
        assert abs(empty - MESSAGE_HEADER_BYTES) <= 0.1 * MESSAGE_HEADER_BYTES

    def test_modeled_size_close_to_encoded(self):
        """Gluon's formula and the real encoding agree within ~15% on a
        representative MRBC message."""
        shared = list(range(500))
        rank = {v: i for i, v in enumerate(shared)}
        items = items_for(
            [(v, si, 2, 1.0) for v in shared[:120] for si in (0, 3)]
        )
        encoded = encoded_size(items, 16, shared_rank=rank, payload_format=FMT)
        # Model: header + vertex bitmap + per-vertex source bitvec + payload
        modeled = (
            MESSAGE_HEADER_BYTES
            + min(4 * 120, (500 + 7) // 8)
            + 120 * min(4 * 2, (16 + 7) // 8)
            + len(items) * 12
        )
        assert abs(encoded - modeled) / modeled < 0.15


class TestValidation:
    def test_bad_magic_rejected(self):
        data = encode_message([], 1, payload_format=FMT)
        with pytest.raises(ValueError):
            decode_message(b"\x00\x00" + data[2:], payload_format=FMT)

    def test_source_out_of_batch_rejected(self):
        with pytest.raises(ValueError):
            encode_message(items_for([(1, 9, 1, 1.0)]), batch_width=4,
                           payload_format=FMT)

    def test_bitmap_decode_needs_shared_list(self):
        shared = list(range(64))
        rank = {v: i for i, v in enumerate(shared)}
        items = items_for([(v, 0, 1, 1.0) for v in shared])
        data = encode_message(items, 1, shared_rank=rank, payload_format=FMT)
        with pytest.raises(ValueError):
            decode_message(data, payload_format=FMT)
