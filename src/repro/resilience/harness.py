"""The fault-experiment harness: run an algorithm under a fault plan.

:func:`run_under_faults` wires one :class:`ResilienceContext` into an
engine algorithm, executes it, and reports the experiment outcome against
the exact Brandes reference: whether the run survived, how many faults
were injected/detected/recovered, the detection latency, the recovery
round overhead, and the maximum BC error.  This is the function behind
``repro faults`` and the CI fault matrix.

Failure semantics match the guard modes: in ``detect`` mode a materialized
fault is *supposed* to abort the run — the report records the failure
instead of raising, so callers can assert on it.  ``off`` mode is the
poison experiment: the run completes but the BC is typically wrong.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.resilience.context import ResilienceContext
from repro.resilience.errors import ResilienceError
from repro.resilience.plan import FaultPlan, get_plan

#: Engine algorithms the harness can run under faults.
ALGORITHMS = ("mrbc", "sbbc")


@dataclass
class FaultRunReport:
    """Outcome of one fault experiment."""

    algorithm: str
    plan: FaultPlan
    mode: str
    invariants: str
    #: ``None`` when the run aborted (detect mode, unrecoverable fault, or
    #: an engine assertion tripped by an unchecked fault).
    bc: np.ndarray | None
    reference_bc: np.ndarray
    max_abs_error: float | None
    #: ``"<ErrorType>: <message>"`` when the run aborted, else ``None``.
    failure: str | None
    #: ``ctx.summary()`` — injection/detection/recovery tallies.
    resilience: dict[str, Any]
    #: Rounds recorded up to completion or abort (includes recovery rounds).
    rounds: int
    manifest: "obs.RunManifest | None"

    @property
    def completed(self) -> bool:
        return self.failure is None

    @property
    def correct(self) -> bool:
        """Completed and matched Brandes within the harness tolerance."""
        return self.max_abs_error is not None and self.max_abs_error <= self.tol

    tol: float = 1e-9


def run_under_faults(
    algorithm: str,
    g,
    sources=None,
    plan: FaultPlan | str = "drop",
    mode: str = "repair",
    invariants: str | None = None,
    num_hosts: int = 8,
    batch_size: int = 16,
    out_dir: str | os.PathLike | None = None,
    tol: float = 1e-9,
) -> FaultRunReport:
    """Execute ``algorithm`` on ``g`` under ``plan`` and report the outcome.

    Parameters
    ----------
    algorithm:
        ``"mrbc"`` or ``"sbbc"``.
    plan:
        A :class:`FaultPlan` or the name of a default plan.
    mode, invariants:
        Guard modes (see :class:`ResilienceContext`).
    out_dir:
        When given, a telemetry session records the run into
        ``<out_dir>/events.jsonl`` and the manifest (with the resilience
        summary under ``extra["resilience"]``) into
        ``<out_dir>/manifest.json``.  Otherwise the ambient session (if
        any) receives the events.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"algorithm must be one of {ALGORITHMS}")
    if isinstance(plan, str):
        plan = get_plan(plan)
    from repro.baselines.brandes import brandes_bc

    reference = brandes_bc(g, sources=sources)
    model = ClusterModel(num_hosts)
    ctx = ResilienceContext(plan=plan, mode=mode, invariants=invariants)

    res = None
    failure: str | None = None

    def execute() -> None:
        nonlocal res, failure
        try:
            if algorithm == "mrbc":
                from repro.core.mrbc import mrbc_engine

                res = mrbc_engine(
                    g,
                    sources=sources,
                    batch_size=batch_size,
                    num_hosts=num_hosts,
                    resilience=ctx,
                )
            else:
                from repro.baselines.sbbc import sbbc_engine

                res = sbbc_engine(
                    g, sources=sources, num_hosts=num_hosts, resilience=ctx
                )
        except (ResilienceError, AssertionError) as err:
            # Aborting on a detected fault is the *designed* detect-mode
            # outcome; engine assertions are the pre-existing last line of
            # defense for unchecked (off-mode) runs.
            failure = f"{type(err).__name__}: {err}"

    if out_dir is not None:
        out_dir = os.fspath(out_dir)
        os.makedirs(out_dir, exist_ok=True)
        sink = obs.FileSink(os.path.join(out_dir, "events.jsonl"))
        with obs.session(sink, model=model):
            execute()
    else:
        execute()

    bc = res.bc if res is not None else None
    max_err = (
        float(np.max(np.abs(bc - reference))) if bc is not None else None
    )
    run = ctx.run
    n_sources = int(g.num_vertices if sources is None else len(sources))
    manifest = None
    if run is not None and run.rounds:
        manifest = obs.build_manifest(
            algorithm,
            run,
            model,
            num_vertices=g.num_vertices,
            num_edges=g.num_edges,
            num_hosts=num_hosts,
            num_sources=n_sources,
            batch_size=batch_size if algorithm == "mrbc" else None,
            fault_plan=plan.name,
            fault_mode=mode,
            resilience=ctx.summary(),
        )
        if out_dir is not None:
            obs.write_manifest(manifest, os.path.join(out_dir, "manifest.json"))

    return FaultRunReport(
        algorithm=algorithm,
        plan=plan,
        mode=mode,
        invariants=ctx.invariants,
        bc=bc,
        reference_bc=reference,
        max_abs_error=max_err,
        failure=failure,
        resilience=ctx.summary(),
        rounds=run.num_rounds if run is not None else 0,
        manifest=manifest,
        tol=tol,
    )
