"""Brandes' sequential betweenness centrality (paper Algorithms 1-2).

This is the library's correctness oracle: every distributed implementation
(MRBC CONGEST, MRBC engine, SBBC, ABBC, MFBC) is validated against it in
the test suite.  For unweighted graphs the SSSP step is a BFS; vertices are
processed in non-increasing distance order for the dependency accumulation

    δ_s•(v) = Σ_{w : v ∈ P_s(w)} (σ_sv / σ_sw) · (1 + δ_s•(w))

and ``BC(v) = Σ_{s ≠ v} δ_s•(v)``.  When a source subset is given, the
result is the sampled approximation of Bader et al. that the paper's
evaluation uses (identical sources ⇒ identical approximate values across
algorithms, as in §5.1).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.digraph import DiGraph


def brandes_sssp(
    g: DiGraph, source: int
) -> tuple[np.ndarray, np.ndarray, list[list[int]], list[int]]:
    """BFS SSSP DAG from ``source``.

    Returns ``(dist, sigma, preds, order)`` where ``dist`` uses −1 for
    unreachable, ``sigma`` counts shortest paths, ``preds[v]`` lists v's
    predecessors in the SP DAG, and ``order`` lists reached vertices in
    non-decreasing distance (the accumulation stack, bottom to top).
    """
    n = g.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    preds: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []

    dist[source] = 0
    sigma[source] = 1.0
    q: deque[int] = deque([source])
    while q:
        v = q.popleft()
        order.append(v)
        dv = dist[v]
        for w in g.out_neighbors(v):
            w = int(w)
            if dist[w] == -1:
                dist[w] = dv + 1
                q.append(w)
            if dist[w] == dv + 1:
                sigma[w] += sigma[v]
                preds[w].append(v)
    return dist, sigma, preds, order


def brandes_dependencies(
    g: DiGraph, source: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distances, σ, and dependencies δ_s• for one source."""
    dist, sigma, preds, order = brandes_sssp(g, source)
    delta = np.zeros(g.num_vertices, dtype=np.float64)
    for w in reversed(order):
        coeff = (1.0 + delta[w]) / sigma[w]
        for v in preds[w]:
            delta[v] += sigma[v] * coeff
    return dist, sigma, delta


def brandes_bc(
    g: DiGraph, sources: np.ndarray | list[int] | None = None
) -> np.ndarray:
    """Betweenness centrality of every vertex.

    ``sources=None`` gives exact BC; a subset gives the sampled
    approximation (sum of betweenness scores over the sampled sources).
    """
    n = g.num_vertices
    if sources is None:
        iter_sources = range(n)
    else:
        iter_sources = [int(s) for s in np.asarray(sources).ravel()]
        for s in iter_sources:
            if not 0 <= s < n:
                raise ValueError(f"source {s} out of range")
    bc = np.zeros(n, dtype=np.float64)
    for s in iter_sources:
        _, _, delta = brandes_dependencies(g, s)
        delta[s] = 0.0  # Alg. 2 line 5: the source itself gets no credit
        bc += delta
    return bc
