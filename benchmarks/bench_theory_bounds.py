"""Theory benchmark: Theorem 1 / Lemma 8 round and message counts against
their bounds, across graph families (§3).

Not a paper table per se, but the quantities Theorem 1 bounds are the
paper's first contribution; this bench records how tight the bounds run in
practice on each graph family (the k-SSP round bound is typically met
within a few rounds of equality; the message bound within the fraction of
(vertex, source) pairs actually reachable).
"""

import pytest

from repro.core.mrbc_congest import directed_apsp, mrbc_congest
from repro.core.sampling import sample_sources
from repro.graph import generators as gen

from conftest import COLLECTOR

HEADERS = [
    "family",
    "n",
    "m",
    "k",
    "rounds",
    "bound k+H",
    "tightness",
    "messages",
    "bound mk",
]

FAMILIES = {
    "erdos-renyi": lambda: gen.erdos_renyi(300, 4.0, seed=11),
    "rmat": lambda: gen.rmat(8, 6, seed=12),
    "road-grid": lambda: gen.grid_road(16, 16, seed=13),
    "web-crawl": lambda: gen.web_crawl_like(200, 120, avg_tail_len=25, seed=14),
    "small-world": lambda: gen.small_world(250, k=3, rewire_prob=0.1, seed=15),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_kssp_bounds(family, benchmark):
    g = FAMILIES[family]()
    srcs = sample_sources(g, 12, seed=16)

    res = benchmark.pedantic(
        lambda: directed_apsp(g, sources=srcs), rounds=1, iterations=1
    )
    H = int(res.dist.max())
    k = srcs.size
    bound_rounds = k + H
    msgs = res.stats.count_for_tag("apsp")
    bound_msgs = g.num_edges * k

    assert res.last_send_round <= bound_rounds
    assert msgs <= bound_msgs

    COLLECTOR.add(
        "Theory: Lemma 8 k-SSP bounds by graph family",
        HEADERS,
        [
            family,
            g.num_vertices,
            g.num_edges,
            k,
            res.last_send_round,
            bound_rounds,
            f"{res.last_send_round / bound_rounds:.2f}",
            msgs,
            bound_msgs,
        ],
    )


@pytest.mark.parametrize("family", ["erdos-renyi", "road-grid"])
def test_bc_at_most_twice_kssp(family, benchmark):
    """Theorem 1 part II at the full-BC level."""
    g = FAMILIES[family]()
    srcs = sample_sources(g, 8, seed=17)
    res = benchmark.pedantic(
        lambda: mrbc_congest(g, sources=srcs), rounds=1, iterations=1
    )
    assert res.backward_rounds <= res.forward_rounds
    assert res.total_rounds <= 2 * res.forward_rounds
