"""Hierarchical span tracing: ``run → phase → round → host``.

A span is a named interval with a parent, wall-clock bounds, and an
attribute dict that may also carry *simulated* cluster-time attribution
(``sim_computation_s`` / ``sim_communication_s`` from
:class:`repro.cluster.model.ClusterModel`), so one trace answers both
"how long did the simulation take on my laptop" and "how long would this
phase take on the modelled cluster".

The two coarse levels (``run``, ``phase``) are real :class:`Span`
objects.  The two fine levels (``round``, ``host``) are emitted as
columnar ``round`` events referencing the enclosing phase span id — one
event per round carrying per-host arrays — which bounds tracing overhead
to O(rounds), not O(messages).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.events import KIND_SPAN, Event
from repro.obs.sinks import Sink

#: Span kinds used by the engine instrumentation.
KIND_RUN = "run"
KIND_PHASE = "phase"


@dataclass
class Span:
    """One open (or finished) interval in the trace tree."""

    name: str
    kind: str
    span_id: int
    parent_id: int | None
    #: Wall-clock epoch time at start (and, once finished, at end).
    ts_start: float = 0.0
    ts_end: float | None = None
    #: Monotonic clock bounds, used for the duration to avoid NTP steps.
    _t0: float = field(default=0.0, repr=False)
    attrs: dict[str, Any] = field(default_factory=dict)
    wall_s: float | None = None

    @property
    def finished(self) -> bool:
        return self.ts_end is not None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self


class SpanTracer:
    """Allocates span ids, tracks the open-span stack, emits span events.

    Spans must be closed in LIFO order (enforced); the emitted event
    carries the full interval, so a span appears in the stream exactly
    once, at close time.
    """

    def __init__(self, sink: Sink) -> None:
        self._sink = sink
        self._next_id = 1
        self._seq = 0
        self._stack: list[Span] = []
        self._start_hooks: list[Callable[[Span], None]] = []
        self._end_hooks: list[Callable[[Span], None]] = []

    def add_hooks(
        self,
        on_start: Callable[[Span], None] | None = None,
        on_end: Callable[[Span], None] | None = None,
    ) -> None:
        """Register observers called at span open / close.

        Start hooks run right after the span is pushed; end hooks run
        after the span's timing is final but *before* its event is
        emitted, so a hook may still attach attributes (this is how the
        opt-in phase profiler annotates phase spans).
        """
        if on_start is not None:
            self._start_hooks.append(on_start)
        if on_end is not None:
            self._end_hooks.append(on_end)

    # -- sequence numbers are shared with the owning session -------------------

    def next_seq(self) -> int:
        """Monotonic event sequence number for this trace."""
        self._seq += 1
        return self._seq

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @property
    def current(self) -> Span | None:
        """Innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, kind: str = KIND_PHASE, **attrs: Any) -> Span:
        """Open a child of the current span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            kind=kind,
            span_id=self._next_id,
            parent_id=parent,
            ts_start=time.time(),
            _t0=time.perf_counter(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        for hook in self._start_hooks:
            hook(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` (must be the innermost open one) and emit it."""
        if not self._stack or self._stack[-1] is not span:
            open_name = self._stack[-1].name if self._stack else "<none>"
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(innermost open span is {open_name!r})"
            )
        self._stack.pop()
        span.ts_end = time.time()
        span.wall_s = time.perf_counter() - span._t0
        for hook in self._end_hooks:
            hook(span)
        self._sink.emit(
            Event(
                kind=KIND_SPAN,
                name=span.name,
                seq=self.next_seq(),
                ts=span.ts_end,
                attrs={
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "span_kind": span.kind,
                    "ts_start": span.ts_start,
                    "wall_s": span.wall_s,
                    **span.attrs,
                },
            )
        )
        return span
