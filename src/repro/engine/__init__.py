"""D-Galois-style distributed graph engine (simulated).

The paper implements MRBC in D-Galois, a BSP graph analytics system built
on the Gluon communication substrate (§4.1): the input graph is partitioned
across hosts, each endpoint of a host-local edge gets a *proxy* on that
host, one proxy per vertex is the *master*, and each BSP round is local
computation followed by Gluon reconciling proxy labels (reduce at the
master, broadcast to mirrors).

This subpackage simulates that stack faithfully at Python scale:

- :mod:`repro.engine.partition` — partitioning policies (outgoing /
  incoming edge-cuts, the Cartesian vertex-cut used in the paper's
  evaluation, random) and the per-host CSR structures.
- :mod:`repro.engine.gluon` — the communication substrate: reduce and
  broadcast primitives with update tracking, metadata compression
  modelling, and exact per-host-pair byte accounting.
- :mod:`repro.engine.stats` — per-round computation and communication
  statistics (the raw material for Figures 2-3 and the load-imbalance rows
  of Table 1), consumed by :mod:`repro.cluster`.
"""

from repro.engine.partition import (
    HostPartition,
    PartitionedGraph,
    cartesian_vertex_cut,
    edge_cut_incoming,
    edge_cut_outgoing,
    partition_graph,
    random_edge_cut,
)
from repro.engine.bsp import BSPAlgorithm, BSPRunResult, run_bsp, sssp_engine
from repro.engine.gluon import GluonSubstrate
from repro.engine.persist import load_run, save_run
from repro.engine.serialize import decode_message, encode_message, encoded_size
from repro.engine.programs import (
    VertexProgramResult,
    bfs_engine,
    kcore_engine,
    pagerank_engine,
    wcc_engine,
)
from repro.engine.stats import EngineRun, RoundStats

__all__ = [
    "BSPAlgorithm",
    "BSPRunResult",
    "EngineRun",
    "GluonSubstrate",
    "HostPartition",
    "PartitionedGraph",
    "RoundStats",
    "VertexProgramResult",
    "bfs_engine",
    "kcore_engine",
    "cartesian_vertex_cut",
    "edge_cut_incoming",
    "edge_cut_outgoing",
    "decode_message",
    "encode_message",
    "encoded_size",
    "load_run",
    "pagerank_engine",
    "partition_graph",
    "random_edge_cut",
    "run_bsp",
    "save_run",
    "sssp_engine",
    "wcc_engine",
]
