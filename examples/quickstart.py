"""Quickstart: compute betweenness centrality with Min-Rounds BC.

Builds a power-law graph, runs MRBC on the simulated distributed engine
(8 hosts, Cartesian vertex-cut, 16-source batches), validates the result
against the sequential Brandes reference, and prints the most central
vertices together with the distributed-execution statistics the paper
reports (rounds, communication volume, simulated time).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterModel, brandes_bc, mrbc_engine
from repro.graph import rmat


def main() -> None:
    # A scale-10 R-MAT graph: 1024 vertices, power-law degrees.
    g = rmat(scale=10, edge_factor=8, seed=42)
    print(f"graph: {g}")

    # Approximate BC from 32 sampled sources, 16 per pipelined batch.
    result = mrbc_engine(
        g,
        num_sources=32,
        batch_size=16,
        num_hosts=8,
        policy="cvc",
        seed=7,
    )

    # Cross-check against Brandes on the same sources (identical values —
    # the approximation depends only on the sampled sources, §5.1).
    reference = brandes_bc(g, sources=result.sources)
    assert np.allclose(result.bc, reference), "MRBC must match Brandes"
    print("validated against sequential Brandes: OK")

    top = np.argsort(result.bc)[::-1][:5]
    print("\nmost central vertices (vertex: BC score):")
    for v in top:
        print(f"  {v:>5}: {result.bc[v]:.2f}")

    time = ClusterModel(8).time_run(result.run)
    print("\ndistributed execution statistics (simulated 8-host cluster):")
    print(f"  BSP rounds:        {result.total_rounds}"
          f"  ({result.rounds_per_source():.1f} per source)")
    print(f"  comm volume:       {result.run.total_bytes} bytes")
    print(f"  execution time:    {time.total * 1e3:.2f} ms")
    print(f"  ... computation:   {time.computation * 1e3:.2f} ms")
    print(f"  ... communication: {time.communication * 1e3:.2f} ms")
    print(f"  load imbalance:    {result.run.load_imbalance():.2f}")


if __name__ == "__main__":
    main()
