"""Immutable CSR directed graph.

Vertices are integers ``0 .. n-1``.  Edges are stored twice, in CSR
(out-neighbors) and CSC (in-neighbors) form, because MRBC's forward phase
pushes along outgoing edges while the accumulation phase pushes along
incoming edges (paper Algorithms 3 and 5).  Both directions are exposed as
zero-copy NumPy slices.

Parallel edges are collapsed at construction — the paper's model is a simple
directed graph — and self-loops are rejected (they never lie on a shortest
path and the CONGEST network has no self-channels).
"""

from __future__ import annotations

import numpy as np


class DiGraph:
    """Compressed-sparse-row directed graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.
    src, dst:
        Parallel integer arrays of edge endpoints.  Duplicates are removed;
        self-loops raise ``ValueError``.

    Notes
    -----
    The CSR arrays are made read-only so that simulators can hand out views
    without defensive copies (the hpc guides' "views, not copies" rule).
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_sources",
        "_edge_src",
        "_edge_dst",
    )

    def __init__(self, num_vertices: int, src: np.ndarray, dst: np.ndarray) -> None:
        n = int(num_vertices)
        if n < 0:
            raise ValueError(f"num_vertices must be non-negative, got {n}")
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= n:
                raise ValueError(
                    f"edge endpoint out of range [0, {n}): found [{lo}, {hi}]"
                )
            if np.any(src == dst):
                raise ValueError("self-loops are not allowed")
            # Deduplicate parallel edges via a lexicographic sort on (src, dst).
            order = np.lexsort((dst, src))
            src = src[order]
            dst = dst[order]
            keep = np.ones(src.size, dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src = src[keep]
            dst = dst[keep]

        m = int(src.size)
        self.num_vertices = n
        self.num_edges = m
        self._edge_src = src
        self._edge_dst = dst

        self.out_offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self.out_offsets, src + 1, 1)
        np.cumsum(self.out_offsets, out=self.out_offsets)
        self.out_targets = dst.copy()

        # CSC: sort edges by destination (stable, so in-sources stay sorted
        # by source within each destination bucket).
        order_in = np.argsort(dst, kind="stable")
        self.in_offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self.in_offsets, dst + 1, 1)
        np.cumsum(self.in_offsets, out=self.in_offsets)
        self.in_sources = src[order_in]

        for arr in (
            self.out_offsets,
            self.out_targets,
            self.in_offsets,
            self.in_sources,
            self._edge_src,
            self._edge_dst,
        ):
            arr.setflags(write=False)

    # -- adjacency views ----------------------------------------------------

    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted array of out-neighbors of ``v`` (zero-copy view)."""
        return self.out_targets[self.out_offsets[v] : self.out_offsets[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sorted array of in-neighbors of ``v`` (zero-copy view)."""
        return self.in_sources[self.in_offsets[v] : self.in_offsets[v + 1]]

    def out_degree(self, v: int) -> int:
        """Number of outgoing edges of ``v``."""
        return int(self.out_offsets[v + 1] - self.out_offsets[v])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        return int(self.in_offsets[v + 1] - self.in_offsets[v])

    def out_degrees(self) -> np.ndarray:
        """Array of all out-degrees."""
        return np.diff(self.out_offsets)

    def in_degrees(self) -> np.ndarray:
        """Array of all in-degrees."""
        return np.diff(self.in_offsets)

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether edge ``(u, v)`` exists (binary search)."""
        nbrs = self.out_neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < nbrs.size and nbrs[i] == v

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """The deduplicated ``(src, dst)`` edge arrays, sorted by source."""
        return self._edge_src, self._edge_dst

    # -- derived graphs ------------------------------------------------------

    def reverse(self) -> "DiGraph":
        """Graph with every edge direction flipped."""
        return DiGraph(self.num_vertices, self._edge_dst, self._edge_src)

    def to_undirected(self) -> "DiGraph":
        """The symmetric closure ``UG`` (each edge plus its reverse)."""
        src = np.concatenate([self._edge_src, self._edge_dst])
        dst = np.concatenate([self._edge_dst, self._edge_src])
        return DiGraph(self.num_vertices, src, dst)

    def subgraph(self, vertices: np.ndarray) -> tuple["DiGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices relabelled ``0..len-1`` in the
        order given) and the old-id array such that ``old_ids[new] = old``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if np.unique(vertices).size != vertices.size:
            raise ValueError("vertex list contains duplicates")
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[vertices] = np.arange(vertices.size)
        src, dst = self._edge_src, self._edge_dst
        keep = (remap[src] >= 0) & (remap[dst] >= 0)
        return (
            DiGraph(vertices.size, remap[src[keep]], remap[dst[keep]]),
            vertices.copy(),
        )

    # -- misc -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.num_edges == other.num_edges
            and bool(np.array_equal(self._edge_src, other._edge_src))
            and bool(np.array_equal(self._edge_dst, other._edge_dst))
        )

    def __hash__(self) -> int:  # pragma: no cover
        raise TypeError("DiGraph is unhashable")

    def __repr__(self) -> str:
        return f"DiGraph(n={self.num_vertices}, m={self.num_edges})"
