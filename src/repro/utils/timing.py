"""Deterministic operation counters and wall-clock stopwatches.

The cluster performance model (:mod:`repro.cluster.model`) converts *operation
counts* — not wall-clock samples — into simulated time, so that benchmark
output is identical across runs and machines.  Wall-clock stopwatches are
still provided for the pytest-benchmark harness, which reports real local
compute time alongside the simulated cluster time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Accumulates abstract work units for one simulated host.

    Attributes
    ----------
    vertex_ops:
        Operator applications (one per active vertex per round).
    edge_ops:
        Edge relaxations / messages pushed along local edges.
    struct_ops:
        Data-structure maintenance work (flat-map insertions, bitvector
        scans); MRBC pays more of these than SBBC, which is exactly the
        computation-time overhead Figure 2 of the paper shows.
    """

    vertex_ops: int = 0
    edge_ops: int = 0
    struct_ops: int = 0

    def add(self, other: "OpCounter") -> None:
        """Accumulate another counter into this one in place."""
        self.vertex_ops += other.vertex_ops
        self.edge_ops += other.edge_ops
        self.struct_ops += other.struct_ops

    def reset(self) -> None:
        """Zero every counter."""
        self.vertex_ops = 0
        self.edge_ops = 0
        self.struct_ops = 0

    def total(self) -> int:
        """Sum of all work units."""
        return self.vertex_ops + self.edge_ops + self.struct_ops

    def copy(self) -> "OpCounter":
        """Return an independent copy."""
        return OpCounter(self.vertex_ops, self.edge_ops, self.struct_ops)


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer with ``start``/``stop`` semantics."""

    elapsed: float = 0.0
    _t0: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing; returns self for chaining."""
        if self._t0 is not None:
            raise RuntimeError("Stopwatch already running")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return total elapsed seconds so far."""
        if self._t0 is None:
            raise RuntimeError("Stopwatch is not running")
        self.elapsed += time.perf_counter() - self._t0
        self._t0 = None
        return self.elapsed

    def reset(self) -> None:
        """Discard accumulated time; stopwatch must not be running."""
        if self._t0 is not None:
            raise RuntimeError("Stopwatch is running; stop it before reset")
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
