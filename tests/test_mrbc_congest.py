"""End-to-end tests for MRBC in the CONGEST model (Algorithms 3+4+5)."""

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc, brandes_dependencies
from repro.core.mrbc_congest import mrbc_congest
from repro.graph import generators as gen
from tests.conftest import some_sources


class TestBCCorrectness:
    @pytest.mark.parametrize(
        "fixture",
        [
            "tiny_dag",
            "diamond",
            "bipath",
            "dicycle",
            "er_graph",
            "powerlaw_graph",
            "road_graph",
            "webcrawl_graph",
            "disconnected_graph",
        ],
    )
    def test_exact_bc_matches_brandes(self, fixture, request):
        g = request.getfixturevalue(fixture)
        res = mrbc_congest(g)
        assert np.allclose(res.bc, brandes_bc(g)), fixture

    @pytest.mark.parametrize("fixture", ["er_graph", "road_graph", "webcrawl_graph"])
    def test_sampled_bc_matches_brandes(self, fixture, request):
        g = request.getfixturevalue(fixture)
        srcs = some_sources(g)
        res = mrbc_congest(g, sources=srcs)
        assert np.allclose(res.bc, brandes_bc(g, sources=srcs))

    def test_single_source(self, er_graph):
        res = mrbc_congest(er_graph, sources=[3])
        assert np.allclose(res.bc, brandes_bc(er_graph, sources=[3]))

    def test_finalizer_path_gives_same_bc(self, er_dense_sc):
        a = mrbc_congest(er_dense_sc, use_finalizer=True)
        b = mrbc_congest(er_dense_sc, use_finalizer=False)
        assert np.allclose(a.bc, b.bc)

    def test_diamond_dependencies(self, diamond):
        """Hand-checked: from source 0, δ(1) = δ(2) = 1/2 (σ03 = 2), and
        δ(0) = (1 + δ(1)) + (1 + δ(2)) = 3 (source dependency, excluded
        from BC)."""
        res = mrbc_congest(diamond, sources=[0])
        assert res.delta[0].tolist() == [3.0, 0.5, 0.5, 0.0]
        assert res.bc.tolist() == [0.0, 0.5, 0.5, 0.0]

    def test_per_source_delta_matches_brandes(self, er_graph):
        srcs = some_sources(er_graph, 4)
        res = mrbc_congest(er_graph, sources=srcs)
        for i, s in enumerate(srcs):
            _, _, delta = brandes_dependencies(er_graph, s)
            got = res.delta[i].copy()
            # Brandes keeps δ at the source; ours accumulates it too.
            assert np.allclose(got, delta), f"source {s}"


class TestTheoremBounds:
    def test_bc_rounds_at_most_twice_apsp(self, er_graph):
        """Theorem 1 part II: BC ≤ 2× the APSP rounds/messages."""
        res = mrbc_congest(er_graph)
        assert res.backward_rounds <= res.forward_rounds
        assert res.stats_backward.messages <= res.stats_forward.messages + \
            er_graph.num_edges

    def test_kssp_bc_round_bound(self, webcrawl_graph):
        """Lemma 8: 2(k + H) rounds for the full BC computation."""
        g = webcrawl_graph
        srcs = some_sources(g, 4)
        res = mrbc_congest(g, sources=srcs)
        H = int(res.dist.max())
        k = len(srcs)
        assert res.total_rounds <= 2 * (k + H) + 2

    def test_accumulation_messages_bounded_by_dag_edges(self, er_graph):
        """Each v sends one value per source to each DAG predecessor."""
        srcs = some_sources(er_graph, 5)
        res = mrbc_congest(er_graph, sources=srcs)
        assert (
            res.stats_backward.count_for_tag("acc")
            <= er_graph.num_edges * len(srcs)
        )

    def test_total_messages_property(self, er_graph):
        res = mrbc_congest(er_graph, sources=[0, 1])
        assert res.total_messages == (
            res.stats_forward.messages + res.stats_backward.messages
        )


class TestEdgeCases:
    def test_source_with_no_outedges(self):
        g = gen.star_graph(5, out=False)  # leaves point at hub 0
        res = mrbc_congest(g, sources=[1])
        assert np.allclose(res.bc, brandes_bc(g, sources=[1]))

    def test_isolated_source(self):
        from repro.graph.builders import from_edges

        g = from_edges(4, [(1, 2), (2, 3)])
        res = mrbc_congest(g, sources=[0])
        assert np.allclose(res.bc, 0.0)

    def test_two_vertex_graph(self):
        from repro.graph.builders import from_edges

        g = from_edges(2, [(0, 1)])
        res = mrbc_congest(g)
        assert np.allclose(res.bc, 0.0)

    def test_deep_line_graph_distances(self):
        g = gen.path_graph(30, bidirectional=False)
        res = mrbc_congest(g, sources=[0])
        assert res.dist[0].tolist() == list(range(30))
        # Middle vertices are on every 0→j path: BC matches Brandes.
        assert np.allclose(res.bc, brandes_bc(g, sources=[0]))


class TestBatchedCongest:
    def test_bc_matches_brandes(self, er_graph):
        from repro.core.mrbc_congest import mrbc_congest_batched

        srcs = some_sources(er_graph, 9)
        res = mrbc_congest_batched(er_graph, srcs, batch_size=4)
        assert np.allclose(res.bc, brandes_bc(er_graph, sources=srcs))
        assert len(res.per_batch_rounds) == 3
        assert sum(res.per_batch_rounds) == res.total_rounds

    def test_rounds_per_source_beats_sbbc_congest(self, webcrawl_graph):
        """Table 1 purely inside the CONGEST model."""
        from repro.baselines.sbbc_congest import sbbc_congest
        from repro.core.mrbc_congest import mrbc_congest_batched

        g = webcrawl_graph
        srcs = some_sources(g, 8)
        mr = mrbc_congest_batched(g, srcs, batch_size=8)
        sb = sbbc_congest(g, sources=srcs)
        assert mr.rounds_per_source() < sb.total_rounds / len(srcs)

    def test_larger_batches_fewer_rounds(self, webcrawl_graph):
        from repro.core.mrbc_congest import mrbc_congest_batched

        srcs = some_sources(webcrawl_graph, 8)
        small = mrbc_congest_batched(webcrawl_graph, srcs, batch_size=2)
        large = mrbc_congest_batched(webcrawl_graph, srcs, batch_size=8)
        assert large.total_rounds < small.total_rounds
