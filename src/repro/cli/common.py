"""Shared helpers for the ``repro`` CLI subcommands.

Diagnostics go through :mod:`logging` (logger ``repro``); ``--verbose``
enables debug output and ``--quiet`` silences everything below errors, so
CLI chatter composes with the telemetry sinks instead of interleaving raw
stderr writes with them.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.io import read_edge_list

ALGORITHMS = ("mrbc", "sbbc", "abbc", "mfbc", "brandes")
#: Algorithms that run on the engine and can therefore be traced.
TRACEABLE = ("mrbc", "sbbc")

log = logging.getLogger("repro")


def add_logging_flags(p: argparse.ArgumentParser) -> None:
    """Attach the shared ``--verbose``/``--quiet`` diagnostics flags."""
    g = p.add_mutually_exclusive_group()
    g.add_argument(
        "--verbose", "-v", action="store_true",
        help="debug-level diagnostics on stderr",
    )
    g.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress diagnostics below errors",
    )


def setup_logging(verbose: bool = False, quiet: bool = False) -> None:
    """Configure the ``repro`` logger for CLI use (stderr, level by flags)."""
    level = (
        logging.ERROR if quiet else logging.DEBUG if verbose else logging.INFO
    )
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger("repro")
    root.handlers[:] = [handler]
    root.setLevel(level)
    root.propagate = False


def _generate(spec: str) -> DiGraph:
    """Build a graph from a ``kind:arg:arg`` spec, e.g. ``rmat:8:8``."""
    try:
        return generators.from_spec(spec)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _load_graph_arg(spec: str) -> DiGraph:
    """A ``--graph`` value: an edge-list path if it exists, else a spec."""
    if os.path.exists(spec):
        return read_edge_list(spec)
    return _generate(spec)
