"""Tests for the k-SSP public API."""

import numpy as np
import pytest
import scipy.sparse.csgraph as csgraph

from repro.baselines.brandes import brandes_sssp
from repro.core.kssp import kssp
from repro.graph.builders import to_scipy_csr
from tests.conftest import some_sources


def ref_dist(g, sources):
    d = csgraph.shortest_path(
        to_scipy_csr(g), method="D", unweighted=True, indices=sources
    )
    d[np.isinf(d)] = -1
    return d.astype(np.int64)


class TestKSSP:
    @pytest.mark.parametrize("method", ["congest", "engine"])
    @pytest.mark.parametrize("fixture", ["er_graph", "road_graph", "webcrawl_graph"])
    def test_distances(self, method, fixture, request):
        g = request.getfixturevalue(fixture)
        srcs = some_sources(g, 5)
        kw = {"num_hosts": 4} if method == "engine" else {}
        res = kssp(g, srcs, method=method, **kw)
        assert np.array_equal(res.dist, ref_dist(g, srcs))

    @pytest.mark.parametrize("method", ["congest", "engine"])
    def test_sigma(self, method, er_graph):
        srcs = some_sources(er_graph, 4)
        kw = {"num_hosts": 2} if method == "engine" else {}
        res = kssp(er_graph, srcs, method=method, **kw)
        for i, s in enumerate(srcs):
            _, sigma, _, _ = brandes_sssp(er_graph, s)
            assert np.allclose(res.sigma[i], sigma)

    def test_round_bound_and_properties(self, webcrawl_graph):
        srcs = some_sources(webcrawl_graph, 6)
        res = kssp(webcrawl_graph, srcs, method="congest")
        assert res.k == 6
        assert res.rounds <= res.k + res.max_finite_distance + 1

    def test_predecessor_reconstruction(self, er_graph):
        srcs = some_sources(er_graph, 3)
        res = kssp(er_graph, srcs, method="congest")
        for i, s in enumerate(srcs):
            _, _, ref_preds, _ = brandes_sssp(er_graph, s)
            got = res.predecessors(er_graph, i)
            for v in range(er_graph.num_vertices):
                assert set(got[v]) == set(ref_preds[v]), (s, v)

    def test_engine_forward_only_has_zero_backward(self, er_graph):
        from repro.core.mrbc import mrbc_engine

        res = mrbc_engine(
            er_graph, sources=[0, 1], batch_size=2, num_hosts=2,
            forward_only=True,
        )
        assert res.backward_rounds == 0
        assert np.allclose(res.bc, 0.0)
        assert res.run.rounds_in_phase("backward") == 0

    def test_validation(self, er_graph):
        with pytest.raises(ValueError):
            kssp(er_graph, [], method="congest")
        with pytest.raises(ValueError):
            kssp(er_graph, [0], method="carrier-pigeon")
