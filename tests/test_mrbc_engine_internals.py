"""White-box tests for the MRBC engine executor internals:
local-list maintenance, delayed-sync staging, and backward scheduling."""

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.core.mrbc import INF, _BatchExecutor, mrbc_engine
from repro.engine.gluon import GluonSubstrate
from repro.engine.partition import partition_graph
from repro.engine.stats import EngineRun
from repro.graph import generators as gen
from repro.graph.builders import from_edges


def make_executor(g, batch, H=2, delayed=True):
    pg = partition_graph(g, H, "cvc")
    run = EngineRun(num_hosts=H)
    gluon = GluonSubstrate(pg)
    return _BatchExecutor(pg, gluon, run, np.asarray(batch, dtype=np.int64), delayed)


class TestLocalListMaintenance:
    def test_insert_and_replace(self):
        g = gen.path_graph(4, bidirectional=False)
        ex = make_executor(g, [0, 1])
        st = ex.hosts[0]
        ex._update_local_list(st, 2, 0, INF, 5)
        assert st.local_lists[2] == [(5, 0)]
        assert 2 in st.unsent
        ex._update_local_list(st, 2, 0, 5, 3)  # improvement replaces
        assert st.local_lists[2] == [(3, 0)]
        ex._update_local_list(st, 2, 1, INF, 3)  # second source
        assert st.local_lists[2] == [(3, 0), (3, 1)]

    def test_same_distance_noop_on_list(self):
        g = gen.path_graph(3, bidirectional=False)
        ex = make_executor(g, [0])
        st = ex.hosts[0]
        ex._update_local_list(st, 1, 0, INF, 2)
        ex._update_local_list(st, 1, 0, 2, 2)  # σ-only update
        assert st.local_lists[1] == [(2, 0)]


class TestDelayedStaging:
    def test_stages_only_due_pairs(self):
        g = gen.path_graph(4, bidirectional=False)
        ex = make_executor(g, [0, 1], H=1)
        st = ex.hosts[0]
        st.cand_dist[2, 0] = 1
        st.cand_sigma[2, 0] = 1.0
        st.cand_dist[2, 1] = 3
        st.cand_sigma[2, 1] = 2.0
        ex._update_local_list(st, 2, 0, INF, 1)
        ex._update_local_list(st, 2, 1, INF, 3)
        rs = ex.run.new_round("forward")
        pending = [[] for _ in range(1)]
        # Round 1: (1,0) at position 1 → due round 2 → staged (arrives at
        # its due round); (3,1) at position 2 → due 5 → not staged.
        ex._stage_delayed(1, pending, rs)
        assert len(pending[0]) == 1
        assert pending[0][0][1] == 0  # source index 0
        assert st.sent_d[2, 0] == 1
        # Round 4: the second pair becomes due.
        pending = [[] for _ in range(1)]
        ex._stage_delayed(4, pending, rs)
        assert len(pending[0]) == 1
        assert pending[0][0][1] == 1

    def test_no_restaging_once_sent(self):
        g = gen.path_graph(3, bidirectional=False)
        ex = make_executor(g, [0], H=1)
        st = ex.hosts[0]
        st.cand_dist[1, 0] = 1
        st.cand_sigma[1, 0] = 1.0
        ex._update_local_list(st, 1, 0, INF, 1)
        rs = ex.run.new_round("forward")
        p1 = [[]]
        ex._stage_delayed(2, p1, rs)
        assert len(p1[0]) == 1
        p2 = [[]]
        ex._stage_delayed(3, p2, rs)
        assert p2[0] == []
        assert not st.unsent  # cleaned up

    def test_sigma_growth_after_send_restages(self):
        g = gen.path_graph(3, bidirectional=False)
        ex = make_executor(g, [0], H=1)
        st = ex.hosts[0]
        st.cand_dist[1, 0] = 1
        st.cand_sigma[1, 0] = 1.0
        ex._update_local_list(st, 1, 0, INF, 1)
        rs = ex.run.new_round("forward")
        p1 = [[]]
        ex._stage_delayed(2, p1, rs)
        assert st.sent_d[1, 0] == 1
        # Simulate the executor's σ-growth path: reset sent flag.
        st.cand_sigma[1, 0] = 2.0
        st.sent_d[1, 0] = -1
        st.unsent.add(1)
        p2 = [[]]
        ex._stage_delayed(2, p2, rs)
        assert len(p2[0]) == 1
        assert p2[0][0][3] == 2.0  # the refreshed σ


class TestBackwardScheduling:
    def test_fire_rounds_reverse_taus(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        ex = make_executor(g, [0], H=1)
        ex.run_forward()
        taus = {gid: ms.tau[0] for gid, ms in ex.masters.items() if ms.tau}
        ex.run_backward()
        # Vertex 2 (latest forward τ) fires earliest backward; the source
        # never fires.  δ values are the exact Brandes dependencies.
        assert taus[2] > taus[1] > taus[0]
        assert np.isclose(ex.delta[1][0], 1.0)  # 1 lies on the 0→2 path
        assert np.isclose(ex.delta[0][0], 2.0)  # source dependency

    def test_bc_excludes_source(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        res = mrbc_engine(g, sources=[0], batch_size=1, num_hosts=1)
        assert res.bc.tolist() == [0.0, 1.0, 0.0]


class TestEagerVsDelayedEquivalence:
    @pytest.mark.parametrize("H", [1, 3])
    def test_identical_results(self, H):
        g = gen.erdos_renyi(35, 3.0, seed=71)
        srcs = [0, 5, 9, 20]
        pg = partition_graph(g, H, "cvc")
        a = mrbc_engine(g, sources=srcs, batch_size=4, partition=pg,
                        delayed_sync=True)
        b = mrbc_engine(g, sources=srcs, batch_size=4, partition=pg,
                        delayed_sync=False)
        ref = brandes_bc(g, sources=srcs)
        assert np.allclose(a.bc, ref)
        assert np.allclose(b.bc, ref)
        assert np.array_equal(a.dist, b.dist)
        assert np.allclose(a.sigma, b.sigma)
        # Same round schedule — the optimization changes traffic only.
        assert a.forward_rounds == b.forward_rounds
