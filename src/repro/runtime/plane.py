"""Message planes: the communication substrates the runtime drives.

A *plane* is what one superstep exchanges messages through.  Two
implementations cover every engine in the repository:

- :class:`GluonPlane` — host-level reduce/broadcast over a partitioned
  graph (wrapping :class:`~repro.engine.gluon.GluonSubstrate`), used by
  the BSP drivers (MRBC, SBBC, bfs/wcc/pagerank/kcore, ``run_bsp``);
- :class:`CongestPlane` — per-channel delivery with capacity and
  combining caps (wrapping :class:`~repro.congest.network
  .CongestNetwork`'s channel structures), used by the CONGEST programs.

:func:`resolve_partition` is the shared partition policy every Gluon
driver previously copied (default-build or validate a prebuilt one).

Import discipline: see :mod:`repro.runtime.superstep` — engine modules
are imported lazily so this package stays below them in the import
graph.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.runtime.arrays import ColumnBlock, expand_csr
from repro.runtime.errors import (
    ChannelBandwidthError,
    ChannelCapacityError,
    NotAChannelError,
    PartitionMismatchError,
)


def resolve_partition(g, partition=None, num_hosts: int = 8, policy: str = "cvc"):
    """Return the partition a Gluon driver should run on.

    Builds one with ``policy`` when none is given; a prebuilt partition
    must have been built for the same graph object.
    """
    from repro.engine.partition import partition_graph

    if partition is None:
        return partition_graph(g, num_hosts, policy)
    if partition.graph is not g:
        raise PartitionMismatchError("partition was built for a different graph")
    return partition


class MessagePlane:
    """Protocol for a communication substrate driven by the runtime.

    ``num_hosts`` is the plane's host count for manifest creation, or
    None for planes without a host concept (CONGEST: processors *are*
    vertices).  Concrete planes add their own exchange primitives — the
    step functions call them directly, so the protocol stays minimal.
    """

    num_hosts: int | None = None


class GluonPlane(MessagePlane):
    """Host-level reduce/broadcast over a partitioned graph.

    Delegates to a :class:`~repro.engine.gluon.GluonSubstrate` (pass a
    prebuilt ``substrate`` to share or customize one, e.g. exact wire
    sizes); the delayed-synchronization optimization passes through
    unchanged because callers decide *which* items each round reduces.
    """

    def __init__(
        self,
        pg,
        *,
        resilience=None,
        exact_sizes: bool = False,
        substrate=None,
    ) -> None:
        if substrate is None:
            from repro.engine.gluon import GluonSubstrate

            substrate = GluonSubstrate(
                pg, exact_sizes=exact_sizes, resilience=resilience
            )
        self.pg = pg
        self.substrate = substrate
        self.num_hosts = pg.num_hosts

    def reduce_to_masters(self, per_host_items, payload_bytes, batch_width, rs):
        """Send each host's updated items to the owning masters."""
        return self.substrate.reduce_to_masters(
            per_host_items, payload_bytes, batch_width, rs
        )

    def broadcast_from_masters(
        self, per_host_items, targets, payload_bytes, batch_width, rs
    ):
        """Send master-side items to the hosts holding relevant proxies."""
        return self.substrate.broadcast_from_masters(
            per_host_items, targets, payload_bytes, batch_width, rs
        )


class GluonArrayPlane(MessagePlane):
    """Columnar host-level reduce/broadcast: whole columns per boundary.

    The vectorized twin of :class:`GluonPlane`.  Exchange payloads are
    :class:`~repro.runtime.arrays.ColumnBlock` structs (one per host)
    instead of per-vertex tuple lists; routing, inbox assembly and the
    per-pair statistics that feed Gluon's byte model are all computed
    with array reductions.  Byte counts, ledger entries and telemetry
    are produced by the same :class:`~repro.engine.gluon.GluonSubstrate`
    model, so both planes report identical communication numbers.

    Two deliberate scope limits keep the dict plane authoritative where
    fidelity beats speed:

    - ``exact_sizes`` is refused (it encodes each item individually);
    - under a :class:`~repro.resilience.context.ResilienceContext`, every
      exchange round-trips through the guarded tuple substrate
      (:meth:`ColumnBlock.to_tuples` / ``from_tuples``), so fault
      injection, channel verification and repair behave identically by
      construction — at dict-plane speed.

    The inbox ordering contract matches the dict plane exactly: each
    destination host receives sender blocks in ascending sender order,
    items within a sender in staging order (reduce inboxes carry the
    sender as the first payload column, mirroring the tuple plane's
    ``(gid, sender, *payload)``).
    """

    def __init__(self, pg, *, resilience=None, substrate=None) -> None:
        if substrate is None:
            from repro.engine.gluon import GluonSubstrate

            substrate = GluonSubstrate(pg, resilience=resilience)
        if substrate.exact_sizes:
            raise ValueError(
                "exact_sizes requires per-item encoding; use the dict plane"
            )
        self.pg = pg
        self.substrate = substrate
        self.num_hosts = pg.num_hosts
        self._n = int(pg.master_of.size)

    # -- pair statistics ---------------------------------------------------

    def _pair_stats(self, snd, dest, gids, batch_width):
        """Per host pair: (sender, receiver, n_items, n_vertices,
        source_meta_bytes), via array group-bys over the routed items."""
        from repro.engine.gluon import SOURCE_ID_BYTES

        H = self.num_hosts
        n = self._n
        if gids.size <= 32:
            # Tiny exchanges (frontier tails on sparse graphs) group
            # faster through plain dicts than through a dozen
            # fixed-overhead array ops — the crossover sits near 40
            # items; the result is identical, ordered by pair key.
            # The source-meta term is maintained incrementally: raising a
            # vertex's item count from c-1 to c adds the delta of the
            # min(index list, bitvector) encoding.
            bitvec = (batch_width + 7) // 8 if batch_width > 1 else 0
            vcount: dict[int, int] = {}
            agg: dict[int, list[int]] = {}
            for s_, d_, g_ in zip(snd.tolist(), dest.tolist(), gids.tolist()):
                pk_ = s_ * H + d_
                key = pk_ * n + g_
                c = vcount.get(key, 0) + 1
                vcount[key] = c
                st = agg.get(pk_)
                if st is None:
                    agg[pk_] = st = [0, 0, 0]
                st[0] += 1
                if c == 1:
                    st[1] += 1
                if bitvec:
                    st[2] += min(SOURCE_ID_BYTES * c, bitvec) - min(
                        SOURCE_ID_BYTES * (c - 1), bitvec
                    )
            return [
                (pk_ // H, pk_ % H, st[0], st[1], st[2])
                for pk_, st in sorted(agg.items())
            ]
        pkey = snd * H + dest
        # Group once by (pair, vertex) to get per-vertex item counts,
        # then by pair for the message-level aggregates — one sort plus
        # boundary scans (both group keys are prefixes of the sort key).
        ks = np.sort(pkey * n + gids)
        flag = np.empty(ks.size, dtype=bool)
        flag[0] = True
        np.not_equal(ks[1:], ks[:-1], out=flag[1:])
        starts = np.nonzero(flag)[0]
        vcounts = np.empty(starts.size, dtype=np.int64)
        np.subtract(starts[1:], starts[:-1], out=vcounts[:-1])
        vcounts[-1] = ks.size - starts[-1]
        pk = ks[starts] // n
        chg = np.ones(pk.size, dtype=bool)
        chg[1:] = pk[1:] != pk[:-1]
        upairs = pk[chg]
        pinv = np.cumsum(chg) - 1
        n_vertices = np.bincount(pinv, minlength=upairs.size)
        n_items = np.bincount(
            pinv, weights=vcounts, minlength=upairs.size
        ).astype(np.int64, copy=False)
        if batch_width > 1:
            per_vertex_bitvec = (batch_width + 7) // 8
            sm = np.minimum(SOURCE_ID_BYTES * vcounts, per_vertex_bitvec)
            source_meta = np.bincount(
                pinv, weights=sm, minlength=upairs.size
            ).astype(np.int64, copy=False)
        else:
            source_meta = np.zeros(upairs.size, dtype=np.int64)
        return list(
            zip(
                (upairs // H).tolist(),
                (upairs % H).tolist(),
                n_items.tolist(),
                n_vertices.tolist(),
                source_meta.tolist(),
            )
        )

    @staticmethod
    def _payload_dtypes(per_host_blocks):
        for blk in per_host_blocks:
            if blk is not None and len(blk):
                return tuple(c.dtype for c in blk.cols)
        return None

    @staticmethod
    def _split_by_dest(gids, dest, cols, num_hosts):
        """Stable-partition rows by destination host into per-host blocks."""
        order = np.argsort(dest, kind="stable")
        dest_s = dest[order]
        gids_s = gids[order]
        cols_s = [c[order] for c in cols]
        bounds = np.searchsorted(dest_s, np.arange(num_hosts + 1))
        inbox = [None] * num_hosts
        for d in range(num_hosts):
            a, b = bounds[d], bounds[d + 1]
            if b > a:
                # Per-host blocks are O(1) slice views of the permuted arrays.
                inbox[d] = ColumnBlock.raw(
                    gids_s[a:b], tuple(c[a:b] for c in cols_s)
                )
        return inbox

    # -- primitives --------------------------------------------------------

    def reduce_to_masters(self, per_host_blocks, payload_bytes, batch_width, rs):
        """Send each host's updated columns to the owning masters.

        ``per_host_blocks[h]`` is a :class:`ColumnBlock` (or None).
        Returns per-host master inboxes whose first payload column is the
        sender host.
        """
        if self.substrate.resilience is not None:
            return self._reduce_via_substrate(
                per_host_blocks, payload_bytes, batch_width, rs
            )
        present = [
            (h, blk)
            for h, blk in enumerate(per_host_blocks)
            if blk is not None and len(blk)
        ]
        if not present:
            self.substrate.account_column_pairs(
                (), payload_bytes, batch_width, rs, op="reduce"
            )
            return [None] * self.num_hosts
        gids = np.concatenate([blk.gids for _h, blk in present])
        snd = np.concatenate(
            [np.full(len(blk), h, dtype=np.int64) for h, blk in present]
        )
        cols = [
            np.concatenate([blk.cols[i] for _h, blk in present])
            for i in range(len(present[0][1].cols))
        ]
        dest = self.pg.master_of[gids]
        self.substrate.account_column_pairs(
            self._pair_stats(snd, dest, gids, batch_width),
            payload_bytes,
            batch_width,
            rs,
            op="reduce",
        )
        return self._split_by_dest(gids, dest, [snd] + cols, self.num_hosts)

    def broadcast_from_masters(
        self, per_host_blocks, targets, payload_bytes, batch_width, rs
    ):
        """Send master-side columns to the hosts holding relevant proxies."""
        try:
            offsets, hosts = self.pg.vertex_host_csr(targets)
        except ValueError:
            raise UnknownBroadcastTargetError(
                f"unknown broadcast target {targets!r}"
            ) from None
        if self.substrate.resilience is not None:
            return self._broadcast_via_substrate(
                per_host_blocks, targets, payload_bytes, batch_width, rs
            )
        present = [
            (h, blk)
            for h, blk in enumerate(per_host_blocks)
            if blk is not None and len(blk)
        ]
        if not present:
            self.substrate.account_column_pairs(
                (), payload_bytes, batch_width, rs, op="broadcast"
            )
            return [None] * self.num_hosts
        # One expansion over every sender's block, concatenated in sender
        # order — identical item sequence to the per-host loop.
        lens = np.array([len(blk) for _h, blk in present], dtype=np.int64)
        src_h = np.repeat(
            np.array([h for h, _blk in present], dtype=np.int64), lens
        )
        bg = np.concatenate([blk.gids for _h, blk in present])
        ncols = len(present[0][1].cols)
        bcols = [
            np.concatenate([blk.cols[i] for _h, blk in present])
            for i in range(ncols)
        ]
        item_of, dst = expand_csr(offsets, hosts, bg)
        gids = bg[item_of]
        snd = src_h[item_of]
        dest = dst.astype(np.int64, copy=False)
        cols = [c[item_of] for c in bcols]
        self.substrate.account_column_pairs(
            self._pair_stats(snd, dest, gids, batch_width),
            payload_bytes,
            batch_width,
            rs,
            op="broadcast",
        )
        return self._split_by_dest(gids, dest, cols, self.num_hosts)

    # -- resilience fallback (guarded tuple substrate) ---------------------

    def _reduce_via_substrate(self, per_host_blocks, payload_bytes, batch_width, rs):
        dtypes = self._payload_dtypes(per_host_blocks)
        items = [
            blk.to_tuples() if blk is not None else []
            for blk in per_host_blocks
        ]
        inbox = self.substrate.reduce_to_masters(
            items, payload_bytes, batch_width, rs
        )
        if dtypes is None:
            return [None] * self.num_hosts
        full = (np.dtype(np.int64), *dtypes)
        return [
            ColumnBlock.from_tuples(lst, full) if lst else None
            for lst in inbox
        ]

    def _broadcast_via_substrate(
        self, per_host_blocks, targets, payload_bytes, batch_width, rs
    ):
        dtypes = self._payload_dtypes(per_host_blocks)
        items = [
            blk.to_tuples() if blk is not None else []
            for blk in per_host_blocks
        ]
        inbox = self.substrate.broadcast_from_masters(
            items, targets, payload_bytes, batch_width, rs
        )
        if dtypes is None:
            return [None] * self.num_hosts
        return [
            ColumnBlock.from_tuples(lst, dtypes) if lst else None
            for lst in inbox
        ]


class CongestPlane(MessagePlane):
    """One CONGEST round: validated sends, accounting, delivery.

    Owns the send/validate/record/deliver sequence that used to live in
    ``CongestNetwork._run_rounds`` — channel membership and the
    per-channel combining cap are enforced here, message statistics and
    per-round telemetry are recorded here, and the resilience channel
    guard runs between accounting and delivery.  The network object
    keeps the graph-shaped state (channels, programs).
    """

    num_hosts = None

    def __init__(self, network) -> None:
        from repro.congest.messages import MAX_COMBINED_VALUES, payload_words
        from repro.congest.program import BROADCAST
        from repro.obs.comm import PLANE_CONGEST, WORD_BYTES

        self.network = network
        self._broadcast = BROADCAST
        self._max_combined = MAX_COMBINED_VALUES
        self._payload_words = payload_words
        self._plane_label = PLANE_CONGEST
        self._word_bytes = WORD_BYTES

    def exchange_round(self, rnd, result, tele, rs, detect_quiescence) -> bool:
        """Execute CONGEST round ``rnd``; return whether work may remain.

        The return value feeds Lemma 8's global termination detector:
        with ``detect_quiescence`` it is true while this round sent
        anything or any program reports pending work; otherwise always
        true (the caller's round budget terminates the run).
        """
        net = self.network
        programs = net.programs
        # Host-scope faults (stall/crash) materialize at the round
        # barrier, before any channel traffic — a stall charges recovery
        # rounds (or times out per the policy deadline), a crash raises
        # for the driver-level restart loop.
        if net.resilience is not None:
            net.resilience.congest_host_events(rnd)
        # -- send phase: collect and validate this round's messages.
        # outbox maps (sender, target) -> list of payloads (combined).
        outbox: dict[tuple[int, int], list[tuple[Any, ...]]] = {}
        any_send = False
        for v, prog in enumerate(programs):
            if prog.is_stopped():
                continue
            sends = prog.compute_sends(rnd)
            if not sends:
                continue
            for target, payload in sends:
                if target == self._broadcast:
                    targets = net.channel_neighbors[v]
                else:
                    if target not in net._channel_sets[v]:
                        raise NotAChannelError(
                            f"vertex {v} has no channel to {target}"
                        )
                    targets = (target,)
                for t in targets:
                    key = (v, int(t))
                    bucket = outbox.setdefault(key, [])
                    if len(bucket) >= self._max_combined:
                        raise ChannelCapacityError(
                            f"vertex {v} exceeded channel capacity to {t} "
                            f"in round {rnd}"
                        )
                    bucket.append(payload)
                    any_send = True

        result.sends_per_round.append(len(outbox))
        if any_send:
            result.last_send_round = rnd
            for payloads in outbox.values():
                result.stats.record_channel(payloads)
        ledger = tele.comm
        if ledger is not None:
            for (sender, target), payloads in outbox.items():
                words = sum(self._payload_words(p) for p in payloads)
                violation = ledger.record(
                    self._plane_label,
                    "congest",
                    rnd,
                    sender,
                    target,
                    values=len(payloads),
                    words=words,
                    payload_bytes=words * self._word_bytes,
                )
                if violation is not None:
                    if tele.enabled:
                        tele.emit(
                            "comm",
                            "congest.bound_violation",
                            round=rnd,
                            src=sender,
                            dst=target,
                            words=words,
                            bound_words=violation.bound_words,
                        )
                    if ledger.hard_fail:
                        raise ChannelBandwidthError(
                            f"channel {sender}->{target} carried {words} words "
                            f"in round {rnd}, exceeding the CONGEST budget of "
                            f"{violation.bound_words} words/round"
                        )
        total_values = sum(len(p) for p in outbox.values())
        if tele.enabled:
            tele.emit(
                "round",
                "round:congest",
                round=rnd,
                phase="congest",
                channels=len(outbox),
                values=total_values,
            )
        if rs is not None:
            # An EngineRun is attached (persistable CONGEST runs): a
            # channel is the congest analogue of a pair message.
            rs.pair_messages += len(outbox)
            rs.items_synced += total_values
        rledger = tele.rounds
        if rledger is not None:
            # The round-ledger seam: sending vertices are the CONGEST
            # frontier; non-stopped programs are the still-active workers
            # whose quiescence Lemma 8's detector waits for.
            rledger.note(
                frontier=len({s for (s, _t) in outbox}),
                channels=len(outbox),
                values=total_values,
                active_sources=sum(
                    1 for p in programs if not p.is_stopped()
                ),
            )

        # -- delivery phase: receivers process during this round.
        for (sender, target), payloads in outbox.items():
            if net.resilience is not None:
                payloads = net.resilience.guard_congest(
                    rnd, sender, target, payloads
                )
            handler = programs[target].handle_message
            for payload in payloads:
                handler(rnd, sender, payload)

        for prog in programs:
            prog.end_of_round(rnd)

        result.rounds_executed = rnd

        if not detect_quiescence:
            return True
        return any_send or any(p.has_pending_work(rnd) for p in programs)
