"""Tests for repro.engine.partition: every policy must satisfy the
Gluon partitioning invariants (paper §4.1)."""

import numpy as np
import pytest

from repro.engine.partition import (
    cartesian_vertex_cut,
    edge_cut_incoming,
    edge_cut_outgoing,
    partition_graph,
    random_edge_cut,
)
from repro.graph import generators as gen

POLICIES = ["oec", "iec", "cvc", "random"]


@pytest.fixture(scope="module")
def graph():
    return gen.erdos_renyi(80, 4.0, seed=31)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("H", [1, 2, 4, 6])
class TestInvariants:
    def test_every_edge_on_exactly_one_host(self, graph, policy, H):
        pg = partition_graph(graph, H, policy)
        total = sum(p.num_edges for p in pg.parts)
        assert total == graph.num_edges
        # And the union of host edge sets is the global edge set.
        edges = set()
        for p in pg.parts:
            for lid in range(p.num_local):
                for t in p.out_neighbors_local(lid):
                    e = (int(p.gids[lid]), int(p.gids[t]))
                    assert e not in edges, "edge duplicated across hosts"
                    edges.add(e)
        src, dst = graph.edges()
        assert edges == set(zip(src.tolist(), dst.tolist()))

    def test_every_vertex_has_exactly_one_master(self, graph, policy, H):
        pg = partition_graph(graph, H, policy)
        owners = np.zeros(graph.num_vertices, dtype=np.int64)
        for p in pg.parts:
            owners[p.gids[p.is_master]] += 1
        assert (owners == 1).all()
        for p in pg.parts:
            assert (pg.master_of[p.gids[p.is_master]] == p.host).all()

    def test_proxies_cover_local_edges(self, graph, policy, H):
        pg = partition_graph(graph, H, policy)
        for p in pg.parts:
            assert (p.out_offsets[-1]) == p.num_edges
            assert (p.in_offsets[-1]) == p.num_edges
            # gids sorted and unique
            assert (np.diff(p.gids) > 0).all()

    def test_local_csr_csc_agree(self, graph, policy, H):
        pg = partition_graph(graph, H, policy)
        for p in pg.parts:
            out_e = {
                (lid, int(t))
                for lid in range(p.num_local)
                for t in p.out_neighbors_local(lid)
            }
            in_e = {
                (int(u), lid)
                for lid in range(p.num_local)
                for u in p.in_neighbors_local(lid)
            }
            assert out_e == in_e

    def test_host_topology_queries(self, graph, policy, H):
        pg = partition_graph(graph, H, policy)
        # hosts_with_out_edges(v) = hosts where v has local out-degree > 0.
        for v in range(0, graph.num_vertices, 7):
            expect_out = set()
            expect_in = set()
            expect_proxy = set()
            for p in pg.parts:
                idx = np.searchsorted(p.gids, v)
                if idx < p.num_local and p.gids[idx] == v:
                    expect_proxy.add(p.host)
                    if p.out_offsets[idx + 1] > p.out_offsets[idx]:
                        expect_out.add(p.host)
                    if p.in_offsets[idx + 1] > p.in_offsets[idx]:
                        expect_in.add(p.host)
            assert set(pg.hosts_with_out_edges(v).tolist()) == expect_out
            assert set(pg.hosts_with_in_edges(v).tolist()) == expect_in
            assert set(pg.hosts_with_proxy(v).tolist()) == expect_proxy
            assert int(pg.master_of[v]) in expect_proxy


class TestPolicySpecifics:
    def test_oec_keeps_out_edges_with_master(self, graph):
        pg = edge_cut_outgoing(graph, 4)
        src, dst = graph.edges()
        for p in pg.parts:
            for lid in np.nonzero(np.diff(p.out_offsets) > 0)[0]:
                assert pg.master_of[p.gids[lid]] == p.host

    def test_iec_keeps_in_edges_with_master(self, graph):
        pg = edge_cut_incoming(graph, 4)
        for p in pg.parts:
            for lid in np.nonzero(np.diff(p.in_offsets) > 0)[0]:
                assert pg.master_of[p.gids[lid]] == p.host

    def test_cvc_row_column_confinement(self, graph):
        """A vertex's out-edge hosts lie in one grid row; in-edge hosts in
        one grid column — the CVC communication-bounding property."""
        H = 4
        pg = cartesian_vertex_cut(graph, H)
        pr, pc = 2, 2
        for v in range(graph.num_vertices):
            out_hosts = pg.hosts_with_out_edges(v)
            if out_hosts.size:
                assert len({int(h) // pc for h in out_hosts}) == 1
            in_hosts = pg.hosts_with_in_edges(v)
            if in_hosts.size:
                assert len({int(h) % pc for h in in_hosts}) == 1

    def test_single_host_has_everything(self, graph):
        pg = partition_graph(graph, 1, "cvc")
        assert pg.parts[0].num_edges == graph.num_edges
        assert pg.parts[0].num_local == graph.num_vertices
        assert pg.shared_proxies.shape == (1, 1)

    def test_random_deterministic_by_seed(self, graph):
        a = random_edge_cut(graph, 4, seed=1)
        b = random_edge_cut(graph, 4, seed=1)
        assert np.array_equal(a.master_of, b.master_of)

    def test_masters_balanced(self, graph):
        pg = partition_graph(graph, 4, "oec")
        weights = graph.out_degrees() + graph.in_degrees() + 1
        per_host = np.zeros(4)
        for v in range(graph.num_vertices):
            per_host[pg.master_of[v]] += weights[v]
        assert per_host.max() < 2.0 * per_host.mean()

    def test_unknown_policy_rejected(self, graph):
        with pytest.raises(ValueError):
            partition_graph(graph, 2, "nope")

    def test_bad_host_count_rejected(self, graph):
        with pytest.raises(ValueError):
            partition_graph(graph, 0, "oec")

    def test_shared_proxies_symmetric(self, graph):
        pg = partition_graph(graph, 4, "cvc")
        assert np.array_equal(pg.shared_proxies, pg.shared_proxies.T)
        assert (np.diag(pg.shared_proxies) == 0).all()

    def test_lids_of_roundtrip(self, graph):
        pg = partition_graph(graph, 3, "oec")
        p = pg.parts[0]
        sample = p.gids[:: max(1, p.num_local // 5)]
        assert np.array_equal(p.gids[p.lids_of(sample)], sample)
        with pytest.raises(KeyError):
            # A gid guaranteed absent: construct one not in gids.
            missing = np.setdiff1d(
                np.arange(graph.num_vertices), p.gids
            )
            if missing.size == 0:
                raise KeyError("all vertices present (trivially fine)")
            p.lids_of(missing[:1])
