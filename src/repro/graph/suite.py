"""The scaled-down evaluation suite mirroring the paper's Table 1 inputs.

Each :class:`SuiteEntry` names a paper input, records the generator and
parameters of its stand-in, and whether the paper classifies it as *small*
(evaluated on 1 and 32 hosts) or *large* (64/128/256 hosts), and as
low-diameter (estimated diameter <= 25) or not.  Graphs are built lazily and
cached per process so benchmarks do not regenerate them.

Scale substitution (see DESIGN.md §2): the paper's graphs have 10⁶–10⁹
vertices; ours have 10²–10⁴.  Every qualitative result in the paper is
driven by graph *shape* (power-law vs road, trivial vs non-trivial
diameter), which the stand-ins preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.digraph import DiGraph
from repro.graph import generators as gen


@dataclass(frozen=True)
class SuiteEntry:
    """One paper input and its scaled stand-in."""

    name: str
    paper_name: str
    build: Callable[[], DiGraph]
    size_class: str  # "small" | "large"
    num_sources: int
    low_diameter: bool
    description: str = ""


def _livejournal() -> DiGraph:
    return gen.rmat(scale=10, edge_factor=14, seed=101)


def _indochina04() -> DiGraph:
    # Web graph with moderate diameter: power-law core + short tails.
    return gen.web_crawl_like(core_n=900, tail_total=300, avg_tail_len=8, seed=102)


def _rmat24() -> DiGraph:
    return gen.rmat(scale=10, edge_factor=16, seed=103)


def _road_europe() -> DiGraph:
    return gen.grid_road(rows=45, cols=45, diagonal_prob=0.05, seed=104)


def _friendster() -> DiGraph:
    return gen.rmat(scale=11, edge_factor=24, a=0.45, b=0.22, c=0.22, seed=105)


def _kron30() -> DiGraph:
    return gen.kronecker(scale=11, edge_factor=16, seed=106)


def _gsh15() -> DiGraph:
    # Web-crawl with non-trivial diameter (~100 in the paper).
    return gen.web_crawl_like(core_n=1200, tail_total=900, avg_tail_len=30, seed=107)


def _clueweb12() -> DiGraph:
    # Web-crawl with large diameter (~500 in the paper): long tails.
    return gen.web_crawl_like(core_n=1200, tail_total=1600, avg_tail_len=90, seed=108)


#: Ordered suite matching Table 1's columns.
SUITE: dict[str, SuiteEntry] = {
    e.name: e
    for e in [
        SuiteEntry(
            "livejournal", "livejournal", _livejournal, "small", 64, True,
            "social network (power-law, low diameter)",
        ),
        SuiteEntry(
            "indochina04", "indochina04", _indochina04, "small", 64, False,
            "web-crawl (moderate diameter)",
        ),
        SuiteEntry(
            "rmat24", "rmat24", _rmat24, "small", 64, True,
            "RMAT random power-law (very low diameter)",
        ),
        SuiteEntry(
            "road-europe", "road-europe", _road_europe, "small", 8, False,
            "road network (bounded degree, huge diameter)",
        ),
        SuiteEntry(
            "friendster", "friendster", _friendster, "small", 64, True,
            "social network (power-law, low diameter)",
        ),
        SuiteEntry(
            "kron30", "kron30", _kron30, "large", 64, True,
            "Kronecker power-law (very low diameter)",
        ),
        SuiteEntry(
            "gsh15", "gsh15", _gsh15, "large", 32, False,
            "web-crawl (non-trivial diameter ~1e2 in paper)",
        ),
        SuiteEntry(
            "clueweb12", "clueweb12", _clueweb12, "large", 16, False,
            "web-crawl (large diameter ~5e2 in paper)",
        ),
    ]
}

_CACHE: dict[str, DiGraph] = {}


def suite_names(size_class: str | None = None) -> list[str]:
    """Names of suite graphs, optionally filtered by ``"small"``/``"large"``."""
    return [
        name
        for name, e in SUITE.items()
        if size_class is None or e.size_class == size_class
    ]


def load_suite_graph(name: str) -> DiGraph:
    """Build (or fetch from the per-process cache) a suite graph by name."""
    if name not in SUITE:
        raise KeyError(f"unknown suite graph {name!r}; options: {sorted(SUITE)}")
    if name not in _CACHE:
        _CACHE[name] = SUITE[name].build()
    return _CACHE[name]
