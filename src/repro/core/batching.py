"""Source batching for MRBC's k-source simultaneous execution (paper §5.2).

MRBC computes betweenness scores of all vertices for ``k`` sources
simultaneously; the full sampled source set is processed as a sequence of
size-``k`` batches ("batch size" in Figure 1).  This module provides the
batch iterator plus a helper that aggregates per-batch round statistics the
way the paper reports them (rounds *per source*: total rounds across all
batches divided by the number of sources).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def iter_batches(sources: np.ndarray, batch_size: int) -> Iterator[np.ndarray]:
    """Yield consecutive batches of at most ``batch_size`` sources."""
    sources = np.asarray(sources, dtype=np.int64).ravel()
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, sources.size, batch_size):
        yield sources[start : start + batch_size]


def rounds_per_source(total_rounds: int, num_sources: int) -> float:
    """The paper's "rounds" metric: all-batch rounds averaged per source."""
    if num_sources < 1:
        raise ValueError("num_sources must be >= 1")
    return total_rounds / num_sources
