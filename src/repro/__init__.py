"""repro — a reproduction of Min-Rounds BC (MRBC), PPoPP 2019.

Hoang, Pontecorvi, Dathathri, Gill, You, Pingali, Ramachandran:
*A Round-Efficient Distributed Betweenness Centrality Algorithm.*

The library implements the paper's algorithm and every substrate it
depends on:

- :mod:`repro.graph` — CSR directed graphs, generators, the Table 1
  test-suite stand-ins;
- :mod:`repro.congest` — a CONGEST-model network simulator with exact
  round/message accounting;
- :mod:`repro.core` — MRBC itself: the CONGEST implementation
  (Algorithms 3/4/5) and the D-Galois-style engine implementation with
  batched sources, flat-map scheduling, and delayed synchronization;
- :mod:`repro.engine` — the simulated D-Galois/Gluon distributed engine
  (partitioning, proxies, reduce/broadcast with byte-exact accounting);
- :mod:`repro.cluster` — the deterministic performance model that turns
  engine statistics into simulated cluster time;
- :mod:`repro.baselines` — Brandes (reference), SBBC, ABBC, and MFBC;
- :mod:`repro.analysis` — metrics, validation, and report formatting.

Quickstart
----------
>>> from repro import graph, mrbc_engine, brandes_bc
>>> g = graph.rmat(8, edge_factor=8, seed=1)
>>> result = mrbc_engine(g, num_sources=16, batch_size=8, num_hosts=4)
>>> reference = brandes_bc(g, sources=result.sources)
>>> bool(abs(result.bc - reference).max() < 1e-6)
True
"""

from repro import analysis, baselines, cluster, congest, core, engine, graph, utils
from repro.baselines.abbc import abbc
from repro.baselines.brandes import brandes_bc
from repro.baselines.mfbc import mfbc
from repro.baselines.sbbc import sbbc_engine
from repro.cluster.model import ClusterModel
from repro.core.mrbc import mrbc_engine
from repro.core.mrbc_congest import directed_apsp, mrbc_congest
from repro.core.sampling import sample_sources
from repro.engine.partition import partition_graph
from repro.graph.digraph import DiGraph

__version__ = "1.0.0"

__all__ = [
    "ClusterModel",
    "DiGraph",
    "abbc",
    "analysis",
    "baselines",
    "brandes_bc",
    "cluster",
    "congest",
    "core",
    "directed_apsp",
    "engine",
    "graph",
    "mfbc",
    "mrbc_congest",
    "mrbc_engine",
    "partition_graph",
    "sample_sources",
    "sbbc_engine",
    "utils",
]
