"""Dense fixed-width bitvector backed by a NumPy ``uint64`` array.

The D-Galois implementation of MRBC (paper §4.3) keeps, for every vertex, a
map from a distance value to a *dense bitvector of size k* marking which of
the ``k`` batched sources currently have that distance at the vertex.  This
module provides that bitvector.  Operations that the hot loop needs —
set/clear/test, iteration over set bits, population count — are O(1) or
vectorized over the packed words.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

_WORD_BITS = 64


class Bitset:
    """A fixed-capacity set of small integers stored as packed 64-bit words.

    Parameters
    ----------
    capacity:
        Number of addressable bits.  Bits are indexed ``0 .. capacity-1``.
    words:
        Optional pre-built word array (used internally by :meth:`copy`).
    """

    __slots__ = ("_capacity", "_words")

    def __init__(self, capacity: int, words: np.ndarray | None = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._capacity = int(capacity)
        nwords = (capacity + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self._words = np.zeros(nwords, dtype=np.uint64)
        else:
            if words.shape != (nwords,):
                raise ValueError("word array has wrong shape for capacity")
            self._words = words

    # -- construction ------------------------------------------------------

    @classmethod
    def from_indices(cls, capacity: int, indices: Iterable[int]) -> "Bitset":
        """Build a bitset with exactly the given bits set."""
        bs = cls(capacity)
        for i in indices:
            bs.set(i)
        return bs

    def copy(self) -> "Bitset":
        """Return an independent copy of this bitset."""
        return Bitset(self._capacity, self._words.copy())

    # -- element access ----------------------------------------------------

    @property
    def capacity(self) -> int:
        """The number of addressable bits."""
        return self._capacity

    def _check(self, i: int) -> None:
        if not 0 <= i < self._capacity:
            raise IndexError(f"bit {i} out of range [0, {self._capacity})")

    def set(self, i: int) -> None:
        """Set bit ``i``."""
        self._check(i)
        self._words[i >> 6] |= np.uint64(1) << np.uint64(i & 63)

    def clear(self, i: int) -> None:
        """Clear bit ``i``."""
        self._check(i)
        self._words[i >> 6] &= ~(np.uint64(1) << np.uint64(i & 63))

    def test(self, i: int) -> bool:
        """Return whether bit ``i`` is set."""
        self._check(i)
        return bool((self._words[i >> 6] >> np.uint64(i & 63)) & np.uint64(1))

    def __contains__(self, i: object) -> bool:
        return isinstance(i, int) and 0 <= i < self._capacity and self.test(i)

    # -- bulk operations ---------------------------------------------------

    def clear_all(self) -> None:
        """Clear every bit in place."""
        self._words[:] = 0

    def count(self) -> int:
        """Population count (number of set bits)."""
        return int(np.bitwise_count(self._words).sum())

    def __len__(self) -> int:
        return self.count()

    def any(self) -> bool:
        """Return True if any bit is set."""
        return bool(self._words.any())

    def indices(self) -> np.ndarray:
        """Return the sorted array of set-bit indices as ``int64``."""
        if not self._words.size or not self._words.any():
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return np.nonzero(bits)[0].astype(np.int64)

    def set_many(self, indices: np.ndarray) -> None:
        """Set every bit named in ``indices`` (duplicates allowed)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self._capacity:
            raise IndexError("bit index out of range")
        masks = np.left_shift(np.uint64(1), (idx & 63).astype(np.uint64))
        np.bitwise_or.at(self._words, idx >> 6, masks)

    def clear_many(self, indices: np.ndarray) -> None:
        """Clear every bit named in ``indices`` (duplicates allowed)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self._capacity:
            raise IndexError("bit index out of range")
        masks = ~np.left_shift(np.uint64(1), (idx & 63).astype(np.uint64))
        np.bitwise_and.at(self._words, idx >> 6, masks)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices().tolist())

    # -- set algebra (in place, same capacity) -----------------------------

    def _check_same(self, other: "Bitset") -> None:
        if self._capacity != other._capacity:
            raise ValueError("bitsets have different capacities")

    def ior(self, other: "Bitset") -> "Bitset":
        """In-place union with ``other``; returns self."""
        self._check_same(other)
        np.bitwise_or(self._words, other._words, out=self._words)
        return self

    def iand(self, other: "Bitset") -> "Bitset":
        """In-place intersection with ``other``; returns self."""
        self._check_same(other)
        np.bitwise_and(self._words, other._words, out=self._words)
        return self

    def isub(self, other: "Bitset") -> "Bitset":
        """In-place difference (``self &= ~other``); returns self."""
        self._check_same(other)
        np.bitwise_and(self._words, np.bitwise_not(other._words), out=self._words)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self._capacity == other._capacity and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:  # pragma: no cover - bitsets are mutable
        raise TypeError("Bitset is unhashable (mutable)")

    def __repr__(self) -> str:
        shown = self.indices()[:16].tolist()
        more = "" if self.count() <= 16 else ", ..."
        return f"Bitset(capacity={self._capacity}, bits={shown}{more})"
