"""Unit tests for repro.utils.flatmap."""

import pytest

from repro.utils.flatmap import FlatMap, insort_unique


class TestBasicMapping:
    def test_empty(self):
        fm = FlatMap()
        assert len(fm) == 0
        assert not fm
        assert 1 not in fm

    def test_init_from_dict(self):
        fm = FlatMap({3: "c", 1: "a", 2: "b"})
        assert fm.keys() == [1, 2, 3]
        assert fm.values() == ["a", "b", "c"]

    def test_set_get(self):
        fm = FlatMap()
        fm[5] = "x"
        fm[1] = "y"
        assert fm[5] == "x"
        assert fm[1] == "y"
        assert len(fm) == 2

    def test_overwrite(self):
        fm = FlatMap()
        fm[5] = "x"
        fm[5] = "z"
        assert fm[5] == "z"
        assert len(fm) == 1

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            FlatMap()[0]

    def test_get_default(self):
        fm = FlatMap({1: "a"})
        assert fm.get(1) == "a"
        assert fm.get(2) is None
        assert fm.get(2, "d") == "d"

    def test_setdefault(self):
        fm = FlatMap()
        assert fm.setdefault(1, "a") == "a"
        assert fm.setdefault(1, "b") == "a"

    def test_delete(self):
        fm = FlatMap({1: "a", 2: "b"})
        del fm[1]
        assert 1 not in fm
        assert len(fm) == 1
        with pytest.raises(KeyError):
            del fm[1]

    def test_pop(self):
        fm = FlatMap({1: "a"})
        assert fm.pop(1) == "a"
        assert fm.pop(1, "dflt") == "dflt"
        with pytest.raises(KeyError):
            fm.pop(1)

    def test_clear(self):
        fm = FlatMap({1: "a", 2: "b"})
        fm.clear()
        assert len(fm) == 0


class TestOrderedAccess:
    def test_items_sorted(self):
        fm = FlatMap()
        for k in [9, 2, 7, 4]:
            fm[k] = k * 10
        assert list(fm.items()) == [(2, 20), (4, 40), (7, 70), (9, 90)]
        assert list(iter(fm)) == [2, 4, 7, 9]

    def test_positional(self):
        fm = FlatMap({5: "e", 3: "c"})
        assert fm.key_at(0) == 3
        assert fm.value_at(1) == "e"
        assert fm.index_of(5) == 1
        with pytest.raises(KeyError):
            fm.index_of(4)

    def test_rank(self):
        fm = FlatMap({2: "b", 4: "d", 6: "f"})
        assert fm.rank(1) == 0
        assert fm.rank(2) == 0
        assert fm.rank(3) == 1
        assert fm.rank(7) == 3

    def test_min_max(self):
        fm = FlatMap({5: "e", 3: "c", 9: "i"})
        assert fm.min_key() == 3
        assert fm.max_key() == 9
        with pytest.raises(IndexError):
            FlatMap().min_key()

    def test_tuple_keys_lexicographic(self):
        """MRBC keys (d, s) pairs; lexicographic order is load-bearing."""
        fm = FlatMap()
        for k in [(2, 0), (1, 5), (1, 2), (3, 0)]:
            fm[k] = True
        assert fm.keys() == [(1, 2), (1, 5), (2, 0), (3, 0)]

    def test_equality(self):
        assert FlatMap({1: "a"}) == FlatMap({1: "a"})
        assert FlatMap({1: "a"}) != FlatMap({1: "b"})

    def test_repr_truncates(self):
        fm = FlatMap({i: i for i in range(20)})
        assert "..." in repr(fm)


class TestAgainstDictModel:
    def test_randomized_against_dict(self):
        """Model-based check: FlatMap behaves like dict + sorted()."""
        import random

        rng = random.Random(42)
        fm = FlatMap()
        model: dict[int, int] = {}
        for step in range(500):
            op = rng.randrange(4)
            k = rng.randrange(30)
            if op == 0:
                fm[k] = step
                model[k] = step
            elif op == 1 and k in model:
                del fm[k]
                del model[k]
            elif op == 2:
                assert fm.get(k, -1) == model.get(k, -1)
            else:
                assert (k in fm) == (k in model)
            assert fm.keys() == sorted(model)
            assert list(fm.items()) == [(kk, model[kk]) for kk in sorted(model)]


class TestInsortUnique:
    def test_inserts_in_order(self):
        lst = [1, 3, 5]
        assert insort_unique(lst, 4)
        assert lst == [1, 3, 4, 5]

    def test_skips_duplicates(self):
        lst = [1, 3, 5]
        assert not insort_unique(lst, 3)
        assert lst == [1, 3, 5]

    def test_empty(self):
        lst: list[int] = []
        assert insort_unique(lst, 7)
        assert lst == [7]
