"""Weighted Maximal-Frontier BC: Bellman-Ford sparse-matrix formulation.

MFBC's defining trait (§1: it "uses the Bellman-Ford algorithm to compute
shortest paths from each vertex") is exactly what lets it handle weighted
graphs: the forward phase iterates tropical-semiring relaxations of the
whole frontier until a fixpoint, with σ recomputed per iteration, and the
backward phase walks the distinct distance values in decreasing order.

Like the unweighted :mod:`repro.baselines.mfbc`, the numerics are exact
(validated against weighted Brandes); per-iteration costs are charged to
an :class:`~repro.engine.stats.EngineRun` the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.mfbc import _account_iteration
from repro.core.batching import iter_batches
from repro.engine.stats import EngineRun
from repro.graph.weighted import WeightedDiGraph

#: Tolerance for equal-length weighted paths (see weighted_brandes).
REL_TOL = 1e-12


def _close(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    finite = np.isfinite(a) & np.isfinite(b)
    out = a == b  # covers matching infinities
    tol = REL_TOL * np.maximum(1.0, np.maximum(np.abs(a), np.abs(b)))
    return np.where(finite, np.abs(a - b) <= tol, out)


@dataclass
class WeightedMFBCResult:
    """Output of :func:`weighted_mfbc`."""

    bc: np.ndarray
    dist: np.ndarray
    sigma: np.ndarray
    sources: np.ndarray
    run: EngineRun
    iterations: int


def weighted_mfbc(
    wg: WeightedDiGraph,
    sources: np.ndarray | list[int] | None = None,
    batch_size: int = 32,
    num_hosts: int = 8,
) -> WeightedMFBCResult:
    """Weighted MFBC over batches of sources (Bellman-Ford forward phase)."""
    g = wg.graph
    n = g.num_vertices
    if sources is None:
        src = np.arange(n, dtype=np.int64)
    else:
        src = np.asarray(sources, dtype=np.int64).ravel()
    if src.size == 0:
        raise ValueError("need at least one source")

    esrc, edst = g.edges()
    ew = wg.weights
    out_deg = g.out_degrees()

    run = EngineRun(num_hosts=num_hosts)
    bc = np.zeros(n)
    dist_all = np.full((src.size, n), np.inf)
    sigma_all = np.zeros((src.size, n))
    iterations = 0

    for b0, batch in enumerate(iter_batches(src, batch_size)):
        k = batch.size
        dist = np.full((n, k), np.inf)
        cols = np.arange(k)
        dist[batch, cols] = 0.0

        # -- forward: Bellman-Ford to a distance fixpoint.  The frontier is
        # the set of vertices whose distance improved last iteration.
        active = np.zeros((n, k), dtype=bool)
        active[batch, cols] = True
        while active.any():
            rows = np.nonzero(active.any(axis=1))[0]
            nnz = int(active.sum())
            _account_iteration(
                run, "forward", nnz, int(out_deg[rows].sum()) * k, num_hosts, n * k
            )
            iterations += 1
            # Relax every edge whose tail is active for some source.
            cand = dist[esrc] + ew[:, None]  # (m, k)
            improved = cand < dist[edst] - REL_TOL
            improved &= active[esrc]
            if not improved.any():
                break
            new_active = np.zeros_like(active)
            er, ec = np.nonzero(improved)
            # np.minimum.at handles multiple improving edges per target.
            np.minimum.at(dist, (edst[er], ec), cand[er, ec])
            new_active[edst[er], ec] = True
            active = new_active

        # σ via one pass over edges per distinct distance level (exact SP
        # DAG counting on the converged distances).
        sigma = np.zeros((n, k))
        sigma[batch, cols] = 1.0
        finite = np.isfinite(dist)
        for col in range(k):
            ds = dist[:, col]
            levels = np.unique(ds[finite[:, col]])
            for lev in levels[1:]:  # source level 0 already seeded
                at = np.nonzero(_close(ds, np.full(n, lev)) & finite[:, col])[0]
                for v in at.tolist():
                    nbrs, ws = wg.in_edges(v)
                    if nbrs.size == 0:
                        continue
                    pred = _close(ds[nbrs] + ws, np.full(nbrs.size, lev))
                    sigma[v, col] = float(sigma[nbrs[pred], col].sum())

        # -- backward: distinct distances in decreasing order.
        delta = np.zeros((n, k))
        for col in range(k):
            ds = dist[:, col]
            fin = finite[:, col]
            levels = np.unique(ds[fin])[::-1]
            for lev in levels:
                if lev == 0.0:
                    break
                at = np.nonzero(_close(ds, np.full(n, lev)) & fin)[0]
                _account_iteration(
                    run, "backward", at.size, at.size * 4, num_hosts, n
                )
                iterations += 1
                for v in at.tolist():
                    coeff = (1.0 + delta[v, col]) / sigma[v, col]
                    nbrs, ws = wg.in_edges(v)
                    if nbrs.size == 0:
                        continue
                    pred = _close(ds[nbrs] + ws, np.full(nbrs.size, lev))
                    pn = nbrs[pred]
                    delta[pn, col] += sigma[pn, col] * coeff

        base = b0 * batch_size
        for i in range(k):
            dist_all[base + i] = dist[:, i]
            sigma_all[base + i] = sigma[:, i]
            d = delta[:, i].copy()
            d[batch[i]] = 0.0
            bc += d

    return WeightedMFBCResult(
        bc=bc,
        dist=dist_all,
        sigma=sigma_all,
        sources=src,
        run=run,
        iterations=iterations,
    )
