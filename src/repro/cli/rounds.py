"""``repro rounds``: round-complexity breakdowns and conformance checks."""

from __future__ import annotations

import argparse
import json

from repro.cli.common import add_logging_flags, log, setup_logging

#: Algorithms this command can run under a round ledger.
ROUNDS_ALGORITHMS = ("mrbc", "sbbc", "mrbc-congest")


def _run_with_ledger(args, g, sources):
    """Run one engine invocation with a fresh round ledger; return it."""
    from repro import obs
    from repro.obs.rounds import RoundLedger

    ledger = RoundLedger()
    if args.algorithm == "mrbc-congest":
        from repro.core.mrbc_congest import mrbc_congest_batched

        with obs.session(rounds=ledger):
            mrbc_congest_batched(g, sources=sources, batch_size=args.batch)
    elif args.algorithm == "sbbc":
        from repro.baselines.sbbc import sbbc_engine

        with obs.session(rounds=ledger):
            sbbc_engine(
                g, sources=sources, num_hosts=args.hosts, plane=args.plane
            )
    else:
        from repro.core.mrbc import mrbc_engine

        with obs.session(rounds=ledger):
            mrbc_engine(
                g,
                sources=sources,
                batch_size=args.batch,
                num_hosts=args.hosts,
                plane=args.plane,
            )
    return ledger


def _render_curve(series: list[int], width: int = 40) -> str:
    """One-line unicode bar sparkline for a frontier-size series."""
    if not series:
        return "(empty)"
    peak = max(max(series), 1)
    blocks = " ▁▂▃▄▅▆▇█"
    return "".join(
        blocks[min(len(blocks) - 1, round(v / peak * (len(blocks) - 1)))]
        for v in series[:width]
    )


def _print_breakdown(args, ledger) -> None:
    from repro.analysis.reporting import format_table

    if args.format == "json":
        doc = ledger.summary()
        if args.per_round:
            doc["per_round"] = ledger.per_round()
        print(json.dumps(doc, indent=2, sort_keys=True))
        return

    rows = [
        [u.unit, u.phase, u.label or "-", u.num_rounds, u.terminated_by,
         u.max_frontier, u.total_settled]
        for u in ledger.units()
    ]
    print(format_table(
        ["unit", "phase", "label", "rounds", "terminated by",
         "max frontier", "settled"],
        rows,
        title="rounds by unit (one per phase x source batch)",
    ))
    by_phase = ledger.rounds_by_phase()
    print(format_table(
        ["phase", "rounds"],
        [[ph, n] for ph, n in sorted(by_phase.items())]
        + [["TOTAL", ledger.total_rounds()]],
        title="rounds by phase",
    ))
    if args.curves:
        print("convergence curves (frontier size per round):")
        for u in ledger.units():
            curve = _render_curve(u.convergence())
            print(f"  {u.phase:>9} {u.label or '-':<10} {curve}")
    if args.per_round:
        print(format_table(
            ["unit", "phase", "round", "frontier", "settled",
             "active sources", "stage depth"],
            [[r["unit"], r["phase"], r["round"], r.get("frontier", 0),
              r.get("settled", 0), r.get("active_sources", 0),
              r.get("stage_depth", 0)]
             for r in ledger.per_round()],
            title="algorithm state by round",
        ))
    if ledger.recovery_rounds():
        print(f"recovery rounds (fault overhead): {ledger.recovery_rounds()}")


def rounds_main(argv: list[str]) -> int:
    """``repro rounds``: per-batch/phase round breakdowns, ``--check``.

    Without ``--check``, runs one algorithm under a
    :class:`~repro.obs.rounds.RoundLedger` and prints the round-complexity
    breakdown (per phase × source-batch unit, optionally per round, with
    frontier-size convergence curves).  With ``--check`` and no
    ``--graph``, runs the :data:`~repro.analysis.roundcheck
    .DEFAULT_ROUND_SUITE` conformance suite; with both, checks just the
    given configuration.  The exit code is the PASS/FAIL verdict.
    """
    p = argparse.ArgumentParser(
        prog="repro rounds",
        description="Round-efficiency observability: per-batch round "
                    "accounting, convergence curves, bound conformance",
    )
    p.add_argument("algorithm", nargs="?", choices=ROUNDS_ALGORITHMS,
                   default="mrbc", help="algorithm to run (default: mrbc)")
    p.add_argument("--graph", metavar="SPEC", default=None,
                   help="edge-list file or generator spec; omit with "
                        "--check to run the default conformance suite")
    p.add_argument("--sources", "-k", type=int, default=8,
                   help="number of sampled sources (default: 8)")
    p.add_argument("--hosts", type=int, default=4, help="simulated hosts")
    p.add_argument("--batch", type=int, default=4, help="source batch size")
    p.add_argument("--seed", type=int, default=7, help="sampling seed")
    p.add_argument("--plane", choices=("dict", "array"), default="dict",
                   help="engine execution tier for mrbc/sbbc (the round "
                        "ledger is identical by contract; default: dict)")
    p.add_argument("--check", action="store_true",
                   help="run predicted-vs-measured round-bound checks "
                        "(exit code is the verdict)")
    p.add_argument("--slack", type=int, default=None, metavar="S",
                   help="extra rounds allowed over Diam + k (default: 2)")
    p.add_argument("--per-round", action="store_true",
                   help="include the per-round algorithm-state breakdown")
    p.add_argument("--curves", action="store_true",
                   help="print frontier-size convergence sparklines per unit")
    p.add_argument("--format", choices=("table", "json"), default="table",
                   help="output format (default: table)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="with --check: also write the JSON report here")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    if args.check:
        from repro.analysis.roundcheck import (
            DEFAULT_ROUND_SUITE,
            DEFAULT_SLACK,
            RoundCheckCase,
            render_rounds_report,
            run_conformance,
        )

        slack = DEFAULT_SLACK if args.slack is None else args.slack
        if args.graph is None:
            from dataclasses import replace

            cases = [
                replace(c, slack=slack, plane=args.plane)
                for c in DEFAULT_ROUND_SUITE
            ]
        else:
            cases = [RoundCheckCase(
                name=f"{args.algorithm}-{args.graph}",
                algorithm=args.algorithm,
                graph=args.graph,
                hosts=args.hosts,
                sources=args.sources,
                batch=args.batch,
                seed=args.seed,
                slack=slack,
                plane=args.plane,
            )]
        report = run_conformance(
            cases, progress=lambda c: log.info("checking %s ...", c.name)
        )
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(report.to_json() + "\n")
            log.info("wrote JSON report to %s", args.report)
        if args.format == "json":
            print(report.to_json())
        else:
            print(render_rounds_report(report))
        return 0 if report.ok else 1

    if args.graph is None:
        p.error("--graph is required unless --check runs the default suite")
    from repro.cli.common import _load_graph_arg
    from repro.core.sampling import sample_sources

    g = _load_graph_arg(args.graph)
    log.info("graph: %s", g)
    sources = sample_sources(
        g, min(args.sources, g.num_vertices), seed=args.seed
    )
    ledger = _run_with_ledger(args, g, sources)
    _print_breakdown(args, ledger)
    return 0
