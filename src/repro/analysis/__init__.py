"""Metrics, validation, and reporting for the evaluation harness.

- :mod:`repro.analysis.metrics` — turns algorithm results plus the cluster
  model into the rows the paper's tables/figures report (rounds per
  source, execution/computation/communication time, volume, imbalance).
- :mod:`repro.analysis.validation` — correctness cross-checks against the
  Brandes reference and NetworkX.
- :mod:`repro.analysis.reporting` — plain-text table formatting used by
  the benchmark harness to print paper-style tables.
"""

from repro.analysis.export import export_tables, read_csv, write_csv
from repro.analysis.metrics import AlgorithmSummary, summarize_engine_result
from repro.analysis.reporting import format_table, geometric_mean
from repro.analysis.sanity import SanityDigest, bc_digest, structural_checks
from repro.analysis.validation import (
    bc_networkx,
    compare_bc,
    max_abs_error,
)

__all__ = [
    "AlgorithmSummary",
    "SanityDigest",
    "bc_digest",
    "bc_networkx",
    "compare_bc",
    "export_tables",
    "format_table",
    "geometric_mean",
    "max_abs_error",
    "read_csv",
    "structural_checks",
    "summarize_engine_result",
    "write_csv",
]
