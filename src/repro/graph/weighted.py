"""Weighted directed graphs: CSR adjacency with positive edge weights.

The paper's algorithm targets unweighted graphs, but two of its baselines
"can also handle weighted graphs" (§5: ABBC and MFBC), and Brandes'
Algorithm 1 runs Dijkstra in the weighted case.  This module provides the
weighted substrate those code paths build on:
:class:`WeightedDiGraph` wraps a :class:`~repro.graph.digraph.DiGraph`
with per-edge positive weights aligned to the CSR edge order.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.prng import make_rng


class WeightedDiGraph:
    """A directed graph with positive edge weights.

    Parameters
    ----------
    graph:
        The underlying unweighted structure (dedup already applied).
    weights:
        One positive weight per edge, aligned with ``graph.edges()`` order
        (i.e. sorted by source then destination).
    """

    __slots__ = ("graph", "weights", "_out_weights", "_in_weights")

    def __init__(self, graph: DiGraph, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape != (graph.num_edges,):
            raise ValueError(
                f"need one weight per edge: {weights.size} != {graph.num_edges}"
            )
        if weights.size and weights.min() <= 0:
            raise ValueError("edge weights must be strictly positive")
        self.graph = graph
        self.weights = weights
        self.weights.setflags(write=False)
        # Weights in out-CSR order are exactly `weights` (edges() is CSR
        # order); build the in-CSR permutation for reverse traversal.
        src, dst = graph.edges()
        order_in = np.argsort(dst, kind="stable")
        self._out_weights = weights
        self._in_weights = weights[order_in]
        self._in_weights.setflags(write=False)

    # -- delegation -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self.graph.num_edges

    def out_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbors, weights)`` of v's outgoing edges (views)."""
        g = self.graph
        sl = slice(g.out_offsets[v], g.out_offsets[v + 1])
        return g.out_targets[sl], self._out_weights[sl]

    def in_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, weights)`` of v's incoming edges (views)."""
        g = self.graph
        sl = slice(g.in_offsets[v], g.in_offsets[v + 1])
        return g.in_sources[sl], self._in_weights[sl]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises ``KeyError`` if absent."""
        nbrs, w = self.out_edges(u)
        i = int(np.searchsorted(nbrs, v))
        if i >= nbrs.size or nbrs[i] != v:
            raise KeyError(f"no edge ({u}, {v})")
        return float(w[i])

    def __repr__(self) -> str:
        return (
            f"WeightedDiGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"w∈[{self.weights.min(initial=0):.3g}, "
            f"{self.weights.max(initial=0):.3g}])"
        )


def with_unit_weights(graph: DiGraph) -> WeightedDiGraph:
    """Wrap an unweighted graph with all-ones weights."""
    return WeightedDiGraph(graph, np.ones(graph.num_edges))


def with_random_weights(
    graph: DiGraph,
    low: float = 1.0,
    high: float = 10.0,
    integer: bool = True,
    seed: int | None = None,
) -> WeightedDiGraph:
    """Wrap a graph with random weights drawn uniformly from [low, high]."""
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    rng = make_rng(seed)
    if integer:
        w = rng.integers(int(low), int(high) + 1, size=graph.num_edges)
        w = w.astype(np.float64)
    else:
        w = rng.uniform(low, high, size=graph.num_edges)
    return WeightedDiGraph(graph, w)


def from_weighted_edges(
    num_vertices: int, edges: list[tuple[int, int, float]]
) -> WeightedDiGraph:
    """Build from ``(u, v, w)`` triples; duplicate edges keep the minimum
    weight (a parallel edge never shortens a path otherwise)."""
    if not edges:
        return with_unit_weights(
            DiGraph(num_vertices, np.empty(0, np.int64), np.empty(0, np.int64))
        )
    best: dict[tuple[int, int], float] = {}
    for u, v, w in edges:
        key = (int(u), int(v))
        if key not in best or w < best[key]:
            best[key] = float(w)
    src = np.array([k[0] for k in best], dtype=np.int64)
    dst = np.array([k[1] for k in best], dtype=np.int64)
    g = DiGraph(num_vertices, src, dst)
    gsrc, gdst = g.edges()
    weights = np.array([best[(int(a), int(b))] for a, b in zip(gsrc, gdst)])
    return WeightedDiGraph(g, weights)
