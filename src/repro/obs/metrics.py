"""The metrics registry: labeled counters, gauges, and histograms.

Series identity is ``(name, sorted label items)`` — the same name with
different labels is a different series, as in Prometheus.  All state is
plain Python numbers; a snapshot serializes every series as one
``metric`` event, so a recorded run's metrics travel in the same JSONL
stream as its spans.

Typical engine series: ``gluon.bytes{op=reduce}``,
``engine.rounds{phase=forward}``, ``mrbc.flatmap_entries`` (histogram of
per-master ``L_v`` occupancy), ``engine.load_imbalance{phase=...}``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.events import KIND_METRIC, Event
from repro.obs.sinks import Sink

#: Default histogram bucket upper bounds (powers of four; +inf implicit).
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; one extra
    overflow bucket counts the rest (the implicit ``+inf`` bound).
    """

    name: str
    labels: LabelKey = ()
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Get-or-create registry for labeled metric series."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, str, LabelKey], Any] = {}

    def _get(self, cls, kind: str, name: str, labels: dict[str, Any], **kw):
        key = (kind, name, _label_key(labels))
        inst = self._series.get(key)
        if inst is None:
            inst = cls(name=name, labels=key[2], **kw)
            self._series[key] = inst
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series ``name{labels}``."""
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram series ``name{labels}``."""
        return self._get(Histogram, "histogram", name, labels, bounds=bounds)

    def series(self, name: str | None = None) -> list[Any]:
        """All series, optionally filtered by metric name."""
        return [
            s for s in self._series.values() if name is None or s.name == name
        ]

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: current value of a counter/gauge series (0 if absent)."""
        key_labels = _label_key(labels)
        for kind in ("counter", "gauge"):
            inst = self._series.get((kind, name, key_labels))
            if inst is not None:
                return inst.value
        return 0.0

    def snapshot(self) -> list[dict[str, Any]]:
        """Serializable state of every series."""
        out = []
        for (kind, name, labels), inst in sorted(
            self._series.items(), key=lambda kv: kv[0]
        ):
            rec = {"name": name, "labels": dict(labels)}
            rec.update(inst.snapshot())
            out.append(rec)
        return out

    def emit_to(self, sink: Sink, next_seq: Callable[[], int]) -> int:
        """Emit one ``metric`` event per series; returns how many."""
        n = 0
        for rec in self.snapshot():
            sink.emit(
                Event(
                    kind=KIND_METRIC,
                    name=rec["name"],
                    seq=next_seq(),
                    attrs=rec,
                )
            )
            n += 1
        return n
