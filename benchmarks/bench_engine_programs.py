"""Engine generality benchmark: BFS / WCC / PageRank on the same
partitioned substrate the BC algorithms use.

D-Galois is a general vertex-program system (§4.1); these benchmarks show
the simulated engine behaves like one: each workload's round count and
communication volume are recorded on the gsh15 stand-in, and PageRank's
per-iteration all-to-all volume dwarfs BFS's sparse frontier traffic, as
on any real system.
"""


from repro.engine.programs import bfs_engine, pagerank_engine, wcc_engine
from repro.graph.suite import load_suite_graph

from conftest import COLLECTOR, LARGE_HOSTS, partition_for, simulated

HEADERS = ["workload", "rounds", "volume (B)", "exec (s)"]

GRAPH = "gsh15"

_volumes: dict[str, int] = {}


def _record(workload: str, res) -> None:
    t = simulated(res.run, LARGE_HOSTS)
    _volumes[workload] = res.run.total_bytes
    COLLECTOR.add(
        "Engine generality: vertex programs on gsh15 (8 hosts)",
        HEADERS,
        [workload, res.rounds, res.run.total_bytes, f"{t.total:.4f}"],
    )


def test_bfs_workload(benchmark):
    pg = partition_for(GRAPH, LARGE_HOSTS)
    g = load_suite_graph(GRAPH)
    res = benchmark.pedantic(
        lambda: bfs_engine(g, source=0, partition=pg), rounds=1, iterations=1
    )
    _record("BFS", res)
    assert (res.values >= -1).all()


def test_wcc_workload(benchmark):
    pg = partition_for(GRAPH, LARGE_HOSTS)
    g = load_suite_graph(GRAPH)
    res = benchmark.pedantic(
        lambda: wcc_engine(g, partition=pg), rounds=1, iterations=1
    )
    _record("WCC", res)
    # gsh15 stand-in is weakly connected by construction (tails attach to
    # the core), so one component label survives.
    assert len(set(res.values.tolist())) >= 1


def test_pagerank_workload(benchmark):
    pg = partition_for(GRAPH, LARGE_HOSTS)
    g = load_suite_graph(GRAPH)
    res = benchmark.pedantic(
        lambda: pagerank_engine(g, tol=1e-7, partition=pg),
        rounds=1,
        iterations=1,
    )
    _record("PageRank", res)
    assert abs(res.values.sum() - 1.0) < 1e-6


def test_workload_volume_ordering(benchmark):
    """PageRank (dense per-iteration) must move more bytes than BFS
    (sparse frontier)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_volumes) == {"BFS", "WCC", "PageRank"}, "run the points first"
    assert _volumes["PageRank"] > _volumes["BFS"]
