"""Plain-text tabular reporting for the benchmark harness.

The benchmarks print each reproduced table/figure as an aligned text table
(one per paper artifact) so that EXPERIMENTS.md's paper-vs-measured
comparisons can be regenerated with a single pytest invocation.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in srows)
    return "\n".join(lines)


def render_phase_breakdown(manifest: dict) -> str:
    """Figure 2-style per-phase computation/communication table.

    ``manifest`` is a :class:`repro.obs.manifest.RunManifest` in dict form
    (``man.to_dict()`` or a parsed ``manifest.json``).  One row per phase
    plus a TOTAL row taken from the manifest's whole-run totals — the same
    numbers ``ClusterModel.time_run`` reports, so the table reproduces the
    paper's computation-vs-communication split from a recorded run alone.
    """
    headers = [
        "phase",
        "rounds",
        "comp (s)",
        "comm (s)",
        "total (s)",
        "volume (B)",
        "msgs",
    ]
    rows: list[list[object]] = []
    for p in manifest.get("phases", []):
        comp = float(p["computation_s"])
        comm = float(p["communication_s"])
        rows.append(
            [
                p["phase"],
                p["rounds"],
                f"{comp:.5f}",
                f"{comm:.5f}",
                f"{comp + comm:.5f}",
                p["bytes"],
                p["pair_messages"],
            ]
        )
    totals = manifest.get("totals", {})
    if totals:
        rows.append(
            [
                "TOTAL",
                totals["rounds"],
                f"{totals['computation_s']:.5f}",
                f"{totals['communication_s']:.5f}",
                f"{totals['total_s']:.5f}",
                totals["bytes"],
                totals["pair_messages"],
            ]
        )
    algo = manifest.get("algorithm", "?")
    hosts = manifest.get("num_hosts", "?")
    title = f"phase breakdown: {algo} on {hosts} hosts"
    return format_table(headers, rows, title=title)


def rows_from_dicts(dicts: Sequence[dict[str, object]]) -> tuple[list[str], list[list[object]]]:
    """Build (headers, rows) from a list of same-keyed dictionaries."""
    if not dicts:
        return [], []
    headers = list(dicts[0].keys())
    rows = [[d.get(h, "") for h in headers] for d in dicts]
    return headers, rows


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's "on average" for speedup ratios)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def ratio(a: float, b: float) -> float:
    """Safe ratio a/b used for speedup columns."""
    if b == 0:
        return math.inf
    return a / b
