"""Round-efficiency accounting: the :class:`RoundLedger`.

The paper's headline claim is about *rounds*, not bytes: a batch of k
sources completes in O(Diam + k) BSP rounds under Algorithm 3's flat-map
schedule (Lemma 8 bounds the forward phase by k + H and the whole batch
by 2(k + H)).  The :class:`~repro.obs.comm.CommLedger` observes the
communication volume those rounds carry; this module observes the round
complexity itself — per round × phase × unit of work (an MRBC source
batch, an SBBC source, a CONGEST network run), the algorithm state that
*determines* how many rounds the phase needs:

- **frontier size** — vertex/source pairs firing this round;
- **newly-settled** vertices (each (v, s) pair settles exactly once, so
  the settled series must sum to the number of finite distance pairs —
  the work-efficiency check ``repro rounds --check`` enforces);
- **active sources** — sources with unfired schedule entries (the k term
  of the bound drains as sources quiesce);
- **Alg. 3 stage occupancy** — schedule entries staged vs already fired
  (``sent_prefix``), the stable-prefix argument made measurable;
- **delayed-sync stage depth** — vertices holding locally-staged
  candidate pairs not yet synchronized (§4.3);
- **recovery attribution** — rounds that exist only because of a fault
  (replays, stall barriers, backoff) carry ``recovery=True`` and are
  attributed to the ``"recovery"`` phase, mirroring
  :meth:`~repro.engine.stats.RoundStats.effective_phase`.

Like the comm ledger, attachment is **independent of the telemetry
``enabled`` flag** (``obs.session(rounds=RoundLedger())`` records even
under the default :class:`~repro.obs.sinks.NullSink`) and **purely
additive**: the recording seams — :meth:`SuperstepRuntime.run_loop`,
:meth:`SuperstepRuntime.run_guarded`, and the CONGEST message plane —
never mutate engine state, so
:meth:`~repro.engine.stats.EngineRun.deterministic_signature` is
byte-identical with and without a ledger (gated by ``repro bench
--compare`` and ``tests/test_message_plane_contract.py``).

Because every driver executes its rounds through the one
:class:`~repro.runtime.superstep.SuperstepRuntime` loop (lint rule
RL204), one pair of seams sees *every* engine round; ledger totals
reconcile exactly with :class:`~repro.engine.stats.EngineRun` round
counts by construction (``repro rounds --check``).  Lint rule RL405
closes the loop statically: a driver maintaining its own ad-hoc round
counter or frontier tally — state this ledger already owns — is flagged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Version tag carried by :meth:`RoundLedger.summary` documents.
ROUNDS_SCHEMA_VERSION = 1

#: Unit attribution keys recognized in phase-span attributes, in label
#: priority order ("batch=0" beats "k=16" when both are present).
UNIT_ATTR_KEYS = ("batch", "source", "run")


@dataclass
class RoundState:
    """One executed round: position, attribution, and algorithm state."""

    phase: str  #: effective phase ("recovery" for fault-only rounds)
    round_index: int  #: 1-based index within the owning unit's loop
    global_round: int | None = None  #: ``RoundStats.round_index`` if any
    recovery: bool = False
    #: Vertex/source pairs firing (sending) this round.
    frontier: int = 0
    #: Vertex/source pairs settled (finalized) this round.
    settled: int = 0
    #: Sources with unfired schedule entries after this round.
    active_sources: int = 0
    #: Alg. 3 flat-map schedule entries currently staged across masters.
    stage_entries: int = 0
    #: Schedule entries already fired (sum of ``sent_prefix``).
    stage_fired: int = 0
    #: Delayed-sync staging depth: vertices with unsent candidate pairs.
    stage_depth: int = 0
    #: CONGEST: directed channels carrying a message this round.
    channels: int = 0
    #: CONGEST: values crossing those channels.
    values: int = 0

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"phase": self.phase, "round": self.round_index}
        if self.global_round is not None:
            d["global_round"] = self.global_round
        if self.recovery:
            d["recovery"] = True
        for k in (
            "frontier",
            "settled",
            "active_sources",
            "stage_entries",
            "stage_fired",
            "stage_depth",
            "channels",
            "values",
        ):
            v = getattr(self, k)
            if v:
                d[k] = v
        return d


@dataclass
class UnitRounds:
    """One :meth:`SuperstepRuntime.run_loop` execution (phase × unit)."""

    unit: int  #: ledger-wide ordinal, 0-based
    phase: str  #: the loop's phase name ("forward"/"backward"/"congest"/...)
    label: str  #: unit attribution, e.g. ``"batch=0"`` / ``"source=5"``
    attrs: dict[str, Any] = field(default_factory=dict)
    rounds: list[RoundState] = field(default_factory=list)
    terminated_by: str = ""  #: "quiescence" | "stopped" | "round_limit" | "crashed"

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def recovery_rounds(self) -> int:
        return sum(1 for r in self.rounds if r.recovery)

    @property
    def max_frontier(self) -> int:
        return max((r.frontier for r in self.rounds), default=0)

    @property
    def total_settled(self) -> int:
        return sum(r.settled for r in self.rounds)

    def convergence(self) -> list[int]:
        """The frontier-size series — the shape of the convergence curve."""
        return [r.frontier for r in self.rounds]

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "phase": self.phase,
            "rounds": self.num_rounds,
            "terminated_by": self.terminated_by,
        }
        if self.label:
            d["label"] = self.label
        if self.recovery_rounds:
            d["recovery_rounds"] = self.recovery_rounds
        if self.max_frontier:
            d["max_frontier"] = self.max_frontier
        if self.total_settled:
            d["settled"] = self.total_settled
        return d


def _unit_label(attrs: dict[str, Any]) -> str:
    for key in UNIT_ATTR_KEYS:
        if key in attrs:
            return f"{key}={attrs[key]}"
    return ""


class RoundLedger:
    """Accumulates per-round algorithm state from the runtime seams.

    The recording protocol (driven by :class:`SuperstepRuntime`, never by
    drivers directly):

    - :meth:`context` — a phase span opening with attribution attributes
      (``batch=``, ``source=``) pushes them for the units opened inside;
    - :meth:`begin_unit` / :meth:`end_unit` — bracket one round loop;
    - :meth:`open_round` / :meth:`close_round` — bracket one round;
      between them, driver step functions :meth:`note` algorithm state
      onto the open round;
    - :meth:`record_recovery_round` — synthetic recovery rounds opened
      outside any loop (stall barriers, backoff charging) land in a
      dedicated ``"recovery"`` unit so totals still reconcile.
    """

    def __init__(self) -> None:
        self._units: list[UnitRounds] = []
        self._open_unit: UnitRounds | None = None
        self._open_round: RoundState | None = None
        self._context: list[dict[str, Any]] = []
        self._recovery_unit: UnitRounds | None = None
        self._by_global: dict[int, RoundState] = {}

    # -- recording (runtime seams) --------------------------------------------

    @contextmanager
    def context(self, **attrs: Any) -> Iterator[None]:
        """Push unit-attribution attributes for loops opened inside."""
        self._context.append(attrs)
        try:
            yield
        finally:
            self._context.pop()

    def _merged_context(self) -> dict[str, Any]:
        merged: dict[str, Any] = {}
        for frame in self._context:
            merged.update(frame)
        return merged

    def begin_unit(self, phase: str) -> UnitRounds:
        """Open the unit record for one round loop."""
        if self._open_unit is not None:  # crashed loop never closed
            self.end_unit("crashed")
        attrs = self._merged_context()
        unit = UnitRounds(
            unit=len(self._units),
            phase=phase,
            label=_unit_label(attrs),
            attrs=dict(attrs),
        )
        self._units.append(unit)
        self._open_unit = unit
        return unit

    def end_unit(self, terminated_by: str) -> None:
        if self._open_round is not None:  # round interrupted mid-flight
            self._open_round = None
        if self._open_unit is not None:
            self._open_unit.terminated_by = terminated_by
            self._open_unit = None

    def open_round(self, phase: str, round_index: int) -> RoundState:
        """Open the row for one round; :meth:`note` accumulates onto it."""
        if self._open_unit is None:
            self.begin_unit(phase)
        row = RoundState(phase=phase, round_index=round_index)
        self._open_round = row
        return row

    def note(self, **counts: int) -> None:
        """Accumulate algorithm state onto the open round (drivers call
        this from their step functions; a no-op outside a round)."""
        row = self._open_round
        if row is None:
            return
        for k, v in counts.items():
            setattr(row, k, getattr(row, k) + v)

    def close_round(self, rs: Any | None = None) -> None:
        """Commit the open round, stamping run attribution from ``rs``."""
        row = self._open_round
        if row is None:
            return
        self._open_round = None
        if rs is not None:
            row.global_round = rs.round_index
            row.recovery = bool(rs.recovery)
            row.phase = rs.effective_phase
            self._by_global[row.global_round] = row
        if self._open_unit is not None:
            self._open_unit.rounds.append(row)

    def discard_round(self) -> None:
        """Abandon the open round without committing it (the run opened
        no matching record, e.g. a crash before the round started)."""
        self._open_round = None

    def record_recovery_round(self, rs: Any) -> None:
        """A synthetic recovery round opened outside any loop (backoff /
        stall charging in the resilience context)."""
        if self._recovery_unit is None:
            self._recovery_unit = UnitRounds(
                unit=len(self._units),
                phase="recovery",
                label="",
                terminated_by="recovery",
            )
            self._units.append(self._recovery_unit)
        row = RoundState(
            phase="recovery",
            round_index=len(self._recovery_unit.rounds) + 1,
            global_round=rs.round_index,
            recovery=True,
        )
        self._recovery_unit.rounds.append(row)
        self._by_global[rs.round_index] = row

    # -- queries ---------------------------------------------------------------

    def units(self, phase: str | None = None) -> list[UnitRounds]:
        """Units in execution order, optionally for one loop phase."""
        if phase is None:
            return list(self._units)
        return [u for u in self._units if u.phase == phase]

    def total_rounds(self) -> int:
        """Every executed round — reconciles with ``EngineRun.num_rounds``."""
        return sum(u.num_rounds for u in self._units)

    def recovery_rounds(self) -> int:
        return sum(u.recovery_rounds for u in self._units)

    def rounds_by_phase(self) -> dict[str, int]:
        """Rounds per *effective* phase, first-execution order — the exact
        shape of ``EngineRun.rounds_in_phase``."""
        out: dict[str, int] = {}
        for u in self._units:
            for r in u.rounds:
                out[r.phase] = out.get(r.phase, 0) + 1
        return out

    def rounds_per_unit(self, phase: str | None = None) -> list[tuple[str, str, int]]:
        """``(label, phase, rounds)`` per unit — the rounds-per-batch view."""
        return [(u.label, u.phase, u.num_rounds) for u in self.units(phase)]

    def max_frontier(self) -> int:
        return max((u.max_frontier for u in self._units), default=0)

    def total_settled(self, phase: str | None = None) -> int:
        return sum(u.total_settled for u in self.units(phase))

    def state_for_global(self, global_round: int) -> RoundState | None:
        """The row for one ``RoundStats.round_index`` (for round-event
        enrichment and the Perfetto frontier counter tracks)."""
        return self._by_global.get(global_round)

    def per_round(self) -> list[dict[str, Any]]:
        """Flat row dicts in execution order (the ``--per-round`` view)."""
        rows = []
        for u in self._units:
            for r in u.rounds:
                d = r.to_dict()
                d["unit"] = u.unit
                if u.label:
                    d["label"] = u.label
                rows.append(d)
        return rows

    # -- persistence -----------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Versioned document for the manifest's ``rounds`` section."""
        return {
            "schema": ROUNDS_SCHEMA_VERSION,
            "total_rounds": self.total_rounds(),
            "recovery_rounds": self.recovery_rounds(),
            "by_phase": self.rounds_by_phase(),
            "max_frontier": self.max_frontier(),
            "total_settled": self.total_settled(),
            "units": [u.to_dict() for u in self._units],
        }

    def bench_counts(self) -> dict[str, int]:
        """Deterministic integers for the bench snapshot's per-case
        ``rounds`` section (gated by ``compare_bench`` only when the
        baseline carries them)."""
        by_phase = self.rounds_by_phase()
        return {
            "total": self.total_rounds(),
            "forward": by_phase.get("forward", 0),
            "backward": by_phase.get("backward", 0),
            "recovery": self.recovery_rounds(),
            "units": len(self._units),
            "max_unit_rounds": max(
                (u.num_rounds for u in self._units), default=0
            ),
            "max_frontier": self.max_frontier(),
            "settled": self.total_settled(),
        }
