"""Tests for the report CLI entry point and example-script integrity."""

import os
import py_compile


from repro.report import main as report_main


class TestReportCLI:
    def test_empty_directory_all_skipped(self, tmp_path, capsys):
        rc = report_main([str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0  # skipped artifacts are not failures
        assert "SKIPPED" in out

    def test_failing_artifact_sets_exit_code(self, tmp_path, capsys):
        from repro.analysis.export import write_csv

        write_csv(
            tmp_path / "table_2_execution_time_per_source_best_host_count.csv",
            ["graph", "winner"],
            [["road-europe", "MFBC"]],
        )
        rc = report_main([str(tmp_path)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_default_directory(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        rc = report_main([])
        assert rc == 0  # nothing there: everything skipped


class TestExamples:
    def test_all_examples_compile(self):
        """Every example must at least be valid Python (full runs are
        exercised manually / in the docs)."""
        ex_dir = os.path.join(os.path.dirname(__file__), "..", "examples")
        scripts = sorted(
            f for f in os.listdir(ex_dir) if f.endswith(".py")
        )
        assert len(scripts) >= 3, "the deliverable requires >= 3 examples"
        for script in scripts:
            py_compile.compile(os.path.join(ex_dir, script), doraise=True)

    def test_quickstart_example_runs(self, capsys):
        """The quickstart is cheap enough to execute in the suite."""
        import runpy

        ex = os.path.join(
            os.path.dirname(__file__), "..", "examples", "quickstart.py"
        )
        runpy.run_path(ex, run_name="__main__")
        out = capsys.readouterr().out
        assert "validated against sequential Brandes: OK" in out
