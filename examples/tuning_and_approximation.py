"""Extensions demo: batch-size autotuning and scaled BC approximation.

The paper flags batch-size selection as future work ("can be explored
using a method such as autotuning", §5.2) and approximates BC by sampled
sources (§5.1, citing Bader et al.).  This example exercises both library
extensions:

1. autotune the MRBC batch size on a web-crawl-like graph,
2. estimate full BC from a small sample with the unbiased n/k-scaled
   estimator, using MRBC as the backend, and report the estimation error,
3. print the sanity digest the artifact-style output uses to compare runs.

Run:  python examples/tuning_and_approximation.py
"""

import numpy as np

from repro import brandes_bc, mrbc_engine, partition_graph
from repro.analysis.sanity import bc_digest, structural_checks
from repro.core.approx import approximate_bc
from repro.core.autotune import tune_batch_size
from repro.core.sampling import sample_sources
from repro.graph import web_crawl_like

HOSTS = 8


def main() -> None:
    g = web_crawl_like(core_n=600, tail_total=400, avg_tail_len=30, seed=21)
    print(f"graph: {g}")
    pg = partition_graph(g, HOSTS, "cvc")

    # 1. Autotune k on a pilot.
    sources = sample_sources(g, 32, seed=23)
    tuned = tune_batch_size(
        g, sources, candidates=(4, 8, 16, 32), partition=pg
    )
    print("\nbatch-size autotuning (simulated seconds per source):")
    for k, score in tuned.ranking():
        marker = "  <- best" if k == tuned.best_batch_size else ""
        print(f"  k={k:>3}: {score:.5f}{marker}")

    # 2. Scaled approximation with the MRBC backend.
    exact = brandes_bc(g)
    est = approximate_bc(
        g,
        num_sources=64,
        backend=lambda gg, ss: mrbc_engine(
            gg,
            sources=ss,
            batch_size=tuned.best_batch_size,
            partition=pg,
        ).bc,
        mode="uniform",
        seed=29,
    )
    err = np.linalg.norm(est.bc_estimate - exact) / np.linalg.norm(exact)
    top_exact = set(np.argsort(exact)[::-1][:10].tolist())
    top_est = set(np.argsort(est.bc_estimate)[::-1][:10].tolist())
    print(f"\napproximation from 64 of {g.num_vertices} sources"
          f" (scale {est.scale:.1f}x):")
    print(f"  relative L2 error:       {err:.3f}")
    print(f"  top-10 overlap vs exact: {len(top_exact & top_est)}/10")

    # 3. Artifact-style sanity digest.
    digest = bc_digest(est.bc_estimate)
    print("\nsanity digest (compare across runs):")
    for key, val in digest.as_row().items():
        print(f"  {key:>14}: {val}")
    problems = structural_checks(g, est.bc_estimate)
    print(f"  structural checks: {'OK' if not problems else problems}")


if __name__ == "__main__":
    main()
