"""Sorted-vector map, mirroring the Boost ``flat_map`` used by the paper.

Paper §4.3: *"we maintain a Boost flat map M_v that maps from current
distances d_sv to a dense bitvector of size k that indicates which sources
currently have that distance.  The map allows iterating through
lexicographically sorted pairs (d_sv, s) (like L_v)."*

:class:`FlatMap` keeps its keys in a contiguous sorted list so iteration is
cache-friendly and lookup is ``O(log n)`` via :func:`bisect`, exactly the
trade-off the paper reports beats a red-black-tree ``std::map``.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Iterator
from typing import Any


class FlatMap:
    """An ordered mapping with sorted-vector storage.

    Supports the usual mapping protocol plus ordered iteration
    (:meth:`items` yields keys in ascending order) and positional access
    (:meth:`key_at`, :meth:`value_at`), which MRBC's pipelining rule needs to
    translate list positions into send rounds.
    """

    __slots__ = ("_keys", "_values")

    def __init__(self, items: dict[Any, Any] | None = None) -> None:
        self._keys: list[Any] = []
        self._values: list[Any] = []
        if items:
            for k in sorted(items):
                self._keys.append(k)
                self._values.append(items[k])

    # -- mapping protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def _find(self, key: Any) -> int:
        """Index of ``key`` in the sorted key vector, or -1 if absent."""
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return i
        return -1

    def __contains__(self, key: Any) -> bool:
        return self._find(key) >= 0

    def __getitem__(self, key: Any) -> Any:
        i = self._find(key)
        if i < 0:
            raise KeyError(key)
        return self._values[i]

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default`` if absent."""
        i = self._find(key)
        return self._values[i] if i >= 0 else default

    def __setitem__(self, key: Any, value: Any) -> None:
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            self._values[i] = value
        else:
            self._keys.insert(i, key)
            self._values.insert(i, value)

    def setdefault(self, key: Any, default: Any) -> Any:
        """Return the value for ``key``, inserting ``default`` if absent."""
        i = bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return self._values[i]
        self._keys.insert(i, key)
        self._values.insert(i, default)
        return default

    def __delitem__(self, key: Any) -> None:
        i = self._find(key)
        if i < 0:
            raise KeyError(key)
        del self._keys[i]
        del self._values[i]

    def pop(self, key: Any, *default: Any) -> Any:
        """Remove ``key`` and return its value (or ``default`` if given)."""
        i = self._find(key)
        if i < 0:
            if default:
                return default[0]
            raise KeyError(key)
        self._keys.pop(i)
        return self._values.pop(i)

    def clear(self) -> None:
        """Remove all entries."""
        self._keys.clear()
        self._values.clear()

    # -- ordered access -----------------------------------------------------

    def keys(self) -> list[Any]:
        """Sorted list of keys (a copy)."""
        return list(self._keys)

    def values(self) -> list[Any]:
        """Values in key order (a copy)."""
        return list(self._values)

    def items(self) -> list[tuple[Any, Any]]:
        """``(key, value)`` pairs in ascending key order (a copy).

        A list, not an iterator, so all three views (:meth:`keys`,
        :meth:`values`, :meth:`items`) are consistent snapshots that
        survive mutation during iteration.
        """
        return list(zip(self._keys, self._values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self._keys)

    def key_at(self, index: int) -> Any:
        """The ``index``-th smallest key."""
        return self._keys[index]

    def value_at(self, index: int) -> Any:
        """The value paired with the ``index``-th smallest key."""
        return self._values[index]

    def index_of(self, key: Any) -> int:
        """Rank of ``key`` among the stored keys; raises ``KeyError`` if absent."""
        i = self._find(key)
        if i < 0:
            raise KeyError(key)
        return i

    def rank(self, key: Any) -> int:
        """Number of stored keys strictly smaller than ``key``.

        Unlike :meth:`index_of`, ``key`` need not be present.
        """
        return bisect_left(self._keys, key)

    def min_key(self) -> Any:
        """The smallest key; raises ``IndexError`` on an empty map."""
        return self._keys[0]

    def max_key(self) -> Any:
        """The largest key; raises ``IndexError`` on an empty map."""
        return self._keys[-1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatMap):
            return NotImplemented
        return self._keys == other._keys and self._values == other._values

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k!r}: {v!r}" for k, v in self.items()[:8])
        more = "" if len(self) <= 8 else ", ..."
        return f"FlatMap({{{pairs}{more}}})"


def insort_unique(sorted_list: list[Any], item: Any) -> bool:
    """Insert ``item`` into ``sorted_list`` keeping order; skip duplicates.

    Returns True if the item was inserted, False if it was already present.
    """
    i = bisect_left(sorted_list, item)
    if i < len(sorted_list) and sorted_list[i] == item:
        return False
    insort(sorted_list, item)
    return True
