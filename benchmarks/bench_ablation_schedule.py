"""Ablation: MRBC's position schedule vs the original Lenzen-Peleg
status-flag schedule, and Algorithm 4 vs the 2n cutoff.

Theorem 1's refinement claims over [38]:

1. one message per (vertex, source) instead of retransmission on every
   improvement ("up to 2mn messages" for the original vs "mn + O(m)");
2. termination in min{2n, n + 5D} via Algorithm 4 instead of always 2n
   when no global detector exists.
"""

import pytest

from repro.core.lenzen_peleg import lenzen_peleg_apsp
from repro.core.mrbc_congest import directed_apsp
from repro.graph import generators as gen
from repro.graph.properties import directed_diameter, is_strongly_connected

from conftest import COLLECTOR

HEADERS = [
    "graph",
    "algorithm",
    "rounds",
    "messages",
    "value sends",
    "retransmission overhead",
]

GRAPHS = {
    "erdos-renyi-150": lambda: gen.erdos_renyi(150, 4.0, seed=31),
    "rmat-7": lambda: gen.rmat(7, 8, seed=32),
    "webcrawl-160": lambda: gen.web_crawl_like(100, 60, avg_tail_len=15, seed=33),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_message_refinement(name, benchmark):
    g = GRAPHS[name]()

    def run_pair():
        lp = lenzen_peleg_apsp(g)
        mr = directed_apsp(g)
        return lp, mr

    lp, mr = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    lp_msgs = lp.stats.count_for_tag("lp")
    mr_msgs = mr.stats.count_for_tag("apsp")
    assert mr_msgs <= lp_msgs

    reachable = int((lp.dist >= 0).sum())
    mr_sends = sum(len(st.tau) for st in mr.states)
    overhead = lp.total_value_sends / max(1, reachable)
    COLLECTOR.add(
        "Ablation: pipelining schedule (MRBC vs Lenzen-Peleg)",
        HEADERS,
        [name, "Lenzen-Peleg", lp.rounds, lp_msgs, lp.total_value_sends,
         f"{overhead:.3f}x"],
    )
    COLLECTOR.add(
        "Ablation: pipelining schedule (MRBC vs Lenzen-Peleg)",
        HEADERS,
        [name, "MRBC (Alg. 3)", mr.rounds, mr_msgs, mr_sends, "1.000x"],
    )


def test_finalizer_round_reduction(benchmark):
    """Algorithm 4 ablation: rounds with and without the finalizer when no
    quiescence detector is available."""
    g = gen.erdos_renyi(120, 6.0, seed=30)
    assert is_strongly_connected(g)
    D = directed_diameter(g)
    assert 5 * D < g.num_vertices

    def run_pair():
        off = directed_apsp(g, use_finalizer=False, detect_termination=False)
        on = directed_apsp(g, use_finalizer=True, detect_termination=False)
        return off, on

    off, on = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert off.rounds == 2 * g.num_vertices
    assert on.rounds <= g.num_vertices + 5 * D
    COLLECTOR.add(
        "Ablation: Algorithm 4 (finalizer) round reduction",
        ["config", "rounds", "bound"],
        ["no finalizer (2n cutoff)", off.rounds, 2 * g.num_vertices],
    )
    COLLECTOR.add(
        "Ablation: Algorithm 4 (finalizer) round reduction",
        ["config", "rounds", "bound"],
        [f"finalizer (D={D})", on.rounds, g.num_vertices + 5 * D],
    )
