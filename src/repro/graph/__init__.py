"""Directed-graph substrate: CSR storage, generators, IO, and properties.

The paper evaluates on unweighted directed graphs (social networks,
web-crawls, road networks, synthetic power-law graphs).  This subpackage
provides:

- :class:`repro.graph.digraph.DiGraph` — immutable CSR adjacency (out- and
  in-neighbor views) used by every simulator and algorithm in the library.
- :mod:`repro.graph.generators` — seeded generators for RMAT, Kronecker,
  Erdős–Rényi, grid/road, web-crawl-like (power-law core with long tails)
  and small-world graphs.
- :mod:`repro.graph.suite` — the scaled-down stand-ins for the paper's
  Table 1 inputs.
- :mod:`repro.graph.properties` — degrees, connectivity, diameter
  estimation (the paper's "estimated diameter" is the max finite shortest
  path distance from the sampled sources).
- :mod:`repro.graph.io` — edge-list and compact binary round-trip IO.
"""

from repro.graph.digraph import DiGraph
from repro.graph.builders import (
    from_edge_array,
    from_edges,
    from_networkx,
    to_networkx,
)
from repro.graph.generators import (
    erdos_renyi,
    forest_fire,
    grid_road,
    kronecker,
    path_graph,
    preferential_attachment,
    rmat,
    small_world,
    star_graph,
    web_crawl_like,
)
from repro.graph.properties import (
    GraphProperties,
    estimate_diameter,
    graph_properties,
    is_strongly_connected,
    is_weakly_connected,
)
from repro.graph.suite import SUITE, SuiteEntry, load_suite_graph, suite_names
from repro.graph.transform import (
    condensation,
    largest_scc,
    largest_wcc,
    reachable_subgraph,
    relabel_by_degree,
)
from repro.graph.weighted import (
    WeightedDiGraph,
    from_weighted_edges,
    with_random_weights,
    with_unit_weights,
)

__all__ = [
    "DiGraph",
    "GraphProperties",
    "SUITE",
    "SuiteEntry",
    "erdos_renyi",
    "estimate_diameter",
    "forest_fire",
    "from_edge_array",
    "from_edges",
    "from_networkx",
    "graph_properties",
    "grid_road",
    "is_strongly_connected",
    "is_weakly_connected",
    "kronecker",
    "load_suite_graph",
    "path_graph",
    "preferential_attachment",
    "rmat",
    "small_world",
    "star_graph",
    "suite_names",
    "to_networkx",
    "web_crawl_like",
    "WeightedDiGraph",
    "condensation",
    "from_weighted_edges",
    "largest_scc",
    "largest_wcc",
    "reachable_subgraph",
    "relabel_by_degree",
    "with_random_weights",
    "with_unit_weights",
]
