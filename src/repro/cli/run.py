"""``repro`` (default command): run algorithms and print BC rankings."""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.abbc import abbc, abbc_simulated_time
from repro.baselines.brandes import brandes_bc
from repro.baselines.mfbc import mfbc
from repro.baselines.sbbc import sbbc_engine
from repro.cli.common import (
    ALGORITHMS,
    _generate,
    add_logging_flags,
    log,
    setup_logging,
)
from repro.cluster.model import ClusterModel
from repro.core.mrbc import mrbc_engine
from repro.core.sampling import sample_sources
from repro.engine.partition import partition_graph
from repro.graph.digraph import DiGraph
from repro.graph.io import read_edge_list


def _run_one(
    algo: str,
    g: DiGraph,
    sources: np.ndarray,
    hosts: int,
    batch: int,
    plane: str = "dict",
) -> tuple[np.ndarray, dict[str, object]]:
    model = ClusterModel(hosts)
    if algo == "brandes":
        return brandes_bc(g, sources=sources), {"rounds": "-", "time (s)": "-"}
    if algo == "abbc":
        res = abbc(g, sources=sources)
        return res.bc, {
            "rounds": "-",
            "time (s)": f"{abbc_simulated_time(res, g):.5f}",
        }
    if algo == "mfbc":
        res = mfbc(g, sources=sources, batch_size=batch, num_hosts=hosts)
        return res.bc, {
            "rounds": res.iterations,
            "time (s)": f"{model.time_run(res.run).total:.5f}",
        }
    pg = partition_graph(g, hosts, "cvc")
    if algo == "sbbc":
        res = sbbc_engine(g, sources=sources, partition=pg, plane=plane)
    else:
        res = mrbc_engine(
            g, sources=sources, batch_size=batch, partition=pg, plane=plane
        )
    return res.bc, {
        "rounds": res.total_rounds,
        "time (s)": f"{model.time_run(res.run).total:.5f}",
    }


def run_main(argv: list[str]) -> int:
    """The default command: run algorithms and print BC rankings."""
    p = argparse.ArgumentParser(
        prog="repro", description="Min-Rounds BC reproduction CLI"
    )
    p.add_argument("graph", nargs="?", help="edge-list file (u v per line)")
    p.add_argument(
        "--generate", metavar="SPEC",
        help="generate a graph instead: rmat:scale:ef | grid:r:c | "
             "webcrawl:core:tails | er:n:deg",
    )
    p.add_argument(
        "--algorithm", "-a", nargs="+", default=["mrbc"],
        choices=ALGORITHMS, help="algorithms to run (default: mrbc)",
    )
    p.add_argument("--sources", "-k", type=int, default=None,
                   help="number of sampled sources (default: all vertices)")
    p.add_argument("--hosts", type=int, default=8, help="simulated hosts")
    p.add_argument("--batch", type=int, default=16, help="MRBC batch size")
    p.add_argument("--plane", choices=("dict", "array"), default="dict",
                   help="engine execution tier for mrbc/sbbc: dict "
                        "(row-wise reference) or array (vectorized "
                        "columnar; bit-identical results, default: dict)")
    p.add_argument("--top", type=int, default=10,
                   help="print this many top-BC vertices")
    p.add_argument("--seed", type=int, default=0, help="sampling seed")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    if bool(args.graph) == bool(args.generate):
        p.error("provide exactly one of: a graph file, or --generate SPEC")
    g = _generate(args.generate) if args.generate else read_edge_list(args.graph)
    log.info("graph: %s", g)

    if args.sources is None:
        sources = np.arange(g.num_vertices, dtype=np.int64)
    else:
        sources = sample_sources(g, args.sources, seed=args.seed)

    rows = []
    bc_by_algo: dict[str, np.ndarray] = {}
    for algo in args.algorithm:
        log.debug("running %s on %d sources", algo, sources.size)
        bc, stats = _run_one(
            algo, g, sources, args.hosts, args.batch, plane=args.plane
        )
        bc_by_algo[algo] = bc
        rows.append([algo, len(sources), stats["rounds"], stats["time (s)"]])
    print(format_table(["algorithm", "sources", "rounds", "time (s)"], rows))

    first = args.algorithm[0]
    for other in args.algorithm[1:]:
        if not np.allclose(
            bc_by_algo[first], bc_by_algo[other], atol=1e-6, equal_nan=True
        ):
            log.warning("%s and %s disagree", first, other)
            return 1

    bc = bc_by_algo[first]
    order = np.argsort(bc)[::-1][: args.top]
    print(format_table(
        ["vertex", "BC"],
        [[int(v), f"{bc[v]:.4f}"] for v in order],
        title=f"top {args.top} by betweenness ({first})",
    ))
    return 0
