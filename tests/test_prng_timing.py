"""Unit tests for repro.utils.prng and repro.utils.timing."""

import numpy as np
import pytest

from repro.utils.prng import DEFAULT_SEED, make_rng, spawn_rngs
from repro.utils.timing import OpCounter, Stopwatch


class TestPrng:
    def test_same_seed_same_stream(self):
        a = make_rng(5).integers(0, 1000, 10)
        b = make_rng(5).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(5).integers(0, 1_000_000, 10)
        b = make_rng(6).integers(0, 1_000_000, 10)
        assert not np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1000, 5)
        b = make_rng(DEFAULT_SEED).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_spawn_independent_and_deterministic(self):
        xs = [r.integers(0, 1_000_000) for r in spawn_rngs(9, 4)]
        ys = [r.integers(0, 1_000_000) for r in spawn_rngs(9, 4)]
        assert xs == ys
        assert len(set(xs)) > 1

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []


class TestOpCounter:
    def test_total_and_add(self):
        a = OpCounter(1, 2, 3)
        b = OpCounter(10, 20, 30)
        a.add(b)
        assert (a.vertex_ops, a.edge_ops, a.struct_ops) == (11, 22, 33)
        assert a.total() == 66

    def test_reset(self):
        c = OpCounter(1, 1, 1)
        c.reset()
        assert c.total() == 0

    def test_copy_independent(self):
        a = OpCounter(1, 0, 0)
        b = a.copy()
        b.vertex_ops = 99
        assert a.vertex_ops == 1


class TestStopwatch:
    def test_measures_time(self):
        sw = Stopwatch()
        with sw:
            sum(range(1000))
        assert sw.elapsed > 0

    def test_accumulates(self):
        sw = Stopwatch()
        sw.start()
        first = sw.stop()
        sw.start()
        second = sw.stop()
        assert second >= first

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset_while_running_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.reset()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0
