"""repro.resilience.chaos: campaign grids, scenario verdicts, report
schema/determinism, and the ``repro chaos`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.graph import generators as gen
from repro.resilience.chaos import (
    CAMPAIGN_REPORT_VERSION,
    CAMPAIGNS,
    CampaignReport,
    ScenarioResult,
    _scenario_grid,
    run_campaign,
    scenario_seed,
)
from tests.conftest import some_sources

HOSTS = 4
BATCH = 2


@pytest.fixture(scope="module")
def graph():
    return gen.erdos_renyi(24, 2.5, seed=5)


@pytest.fixture(scope="module")
def sources(graph):
    return some_sources(graph, 4)


@pytest.fixture(scope="module")
def smoke_report(graph, sources):
    return run_campaign(
        graph, sources, campaign="smoke", seed=7,
        num_hosts=HOSTS, batch_size=BATCH, graph_desc="er:24:2.5",
    )


class TestGrid:
    def test_smoke_grid_meets_issue_floor(self):
        grid = _scenario_grid(CAMPAIGNS["smoke"])
        fault_rows = [r for r in grid if r[1] is not None]
        neutral_rows = [r for r in grid if r[1] is None]
        assert len(fault_rows) >= 24
        assert len(neutral_rows) == 2
        # 2 Gluon engines × 6 fault kinds × 2 policies.
        assert len(fault_rows) == 24

    def test_full_grid_adds_congest_engines(self):
        grid = _scenario_grid(CAMPAIGNS["full"])
        congest = [r for r in grid if r[0].endswith("_congest")]
        # 2 CONGEST engines × 5 viable kinds × 2 policies; reorder is
        # structurally impossible on single-payload channels.
        assert len(congest) == 20
        assert all(r[1] != "reorder" for r in congest)

    def test_scenario_seeds_are_deterministic_and_distinct(self):
        seeds = [scenario_seed(7, i) for i in range(48)]
        assert seeds == [scenario_seed(7, i) for i in range(48)]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [scenario_seed(8, i) for i in range(48)]

    def test_unknown_campaign_raises(self, graph, sources):
        with pytest.raises(KeyError, match="smoke"):
            run_campaign(graph, sources, campaign="nope")


class TestSmokeCampaign:
    def test_all_scenarios_pass(self, smoke_report):
        assert smoke_report.passed
        assert len(smoke_report.scenarios) >= 24
        assert smoke_report.failures == []

    def test_faults_actually_fired(self, smoke_report):
        agg = smoke_report.aggregates()
        assert agg["faults_injected"] >= len(
            [s for s in smoke_report.scenarios if s.kind == "fault"]
        )
        assert agg["recoveries"] >= 1
        assert agg["mttr_rounds"] is not None and agg["mttr_rounds"] > 0

    def test_degradation_path_exercised(self, smoke_report):
        # failfast × crash deterministically drops a failure domain.
        degraded = [s for s in smoke_report.scenarios if s.degraded]
        assert degraded
        assert all(s.policy == "failfast" for s in degraded)
        assert all(0.0 <= s.coverage < 1.0 for s in degraded)
        assert any(s.plan == "crash" for s in degraded)
        # At least one degraded scenario salvages a non-empty prefix.
        assert any(s.coverage > 0.0 for s in degraded)

    def test_neutral_scenarios_present_and_exact(self, smoke_report):
        neutral = [s for s in smoke_report.scenarios if s.kind == "neutral"]
        assert {s.algorithm for s in neutral} == {"mrbc", "sbbc"}
        assert all(s.passed and s.detail == "neutral" for s in neutral)

    def test_report_schema_and_json_round_trip(self, smoke_report, tmp_path):
        rec = smoke_report.to_dict()
        assert rec["version"] == CAMPAIGN_REPORT_VERSION
        assert rec["campaign"] == "smoke"
        assert rec["seed"] == 7
        assert rec["passed"] is True
        assert rec["aggregates"]["scenarios_total"] == len(smoke_report.scenarios)
        path = tmp_path / "chaos.json"
        smoke_report.save(path)
        reloaded = json.loads(path.read_text(encoding="utf-8"))
        assert reloaded == json.loads(json.dumps(rec))

    def test_same_seed_reproduces_the_report(self, graph, sources, smoke_report):
        again = run_campaign(
            graph, sources, campaign="smoke", seed=7,
            num_hosts=HOSTS, batch_size=BATCH, graph_desc="er:24:2.5",
        )
        assert again.to_dict() == smoke_report.to_dict()


class TestVerdicts:
    def test_empty_report_is_not_a_pass(self):
        report = CampaignReport(
            campaign="x", seed=0, graph="g", num_sources=0,
            num_hosts=1, batch_size=1,
        )
        assert not report.passed

    def test_one_failure_fails_the_campaign(self):
        ok = ScenarioResult(
            index=0, algorithm="mrbc", plan="drop", policy="default",
            seed=1, kind="fault", passed=True, detail="exact",
        )
        bad = ScenarioResult(
            index=1, algorithm="mrbc", plan="crash", policy="default",
            seed=2, kind="fault", passed=False, detail="diverged",
        )
        report = CampaignReport(
            campaign="x", seed=0, graph="g", num_sources=4,
            num_hosts=1, batch_size=1, scenarios=[ok, bad],
        )
        assert not report.passed
        assert report.failures == [bad]


class TestChaosCLI:
    def test_smoke_cli_passes_and_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "chaos-report.json"
        rc = main([
            "chaos", "--seed", "7", "--campaign", "smoke",
            "--graph", "er:24:2.5", "--sources", "4", "--batch", "2",
            "--hosts", "4", "--report", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "verdict: PASS" in printed
        rec = json.loads(out.read_text(encoding="utf-8"))
        assert rec["passed"] is True
        assert rec["version"] == CAMPAIGN_REPORT_VERSION
        assert len(rec["scenarios"]) >= 24
