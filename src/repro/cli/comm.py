"""``repro comm``: communication-volume breakdowns and conformance checks."""

from __future__ import annotations

import argparse
import json

from repro.cli.common import add_logging_flags, log, setup_logging

#: Algorithms this command can run under a ledger.
COMM_ALGORITHMS = ("mrbc", "sbbc", "mrbc-congest")


def _run_with_ledger(args, g, sources):
    """Run one engine invocation with a fresh ledger; return the ledger."""
    from repro import obs
    from repro.obs.comm import CommLedger, congest_bound_words

    if args.algorithm == "mrbc-congest":
        from repro.core.mrbc_congest import mrbc_congest

        ledger = CommLedger(
            bound_words=congest_bound_words(g.num_vertices, args.bound_factor),
            hard_fail=args.hard_fail,
        )
        with obs.session(comm=ledger):
            mrbc_congest(g, sources=sources)
        return ledger
    ledger = CommLedger()
    if args.algorithm == "sbbc":
        from repro.baselines.sbbc import sbbc_engine

        with obs.session(comm=ledger):
            sbbc_engine(
                g, sources=sources, num_hosts=args.hosts, plane=args.plane
            )
    else:
        from repro.core.mrbc import mrbc_engine

        with obs.session(comm=ledger):
            mrbc_engine(
                g,
                sources=sources,
                batch_size=args.batch,
                num_hosts=args.hosts,
                plane=args.plane,
            )
    return ledger


def _print_breakdown(args, ledger) -> None:
    from repro.analysis.reporting import format_table
    from repro.obs.comm import PLANE_CONGEST, PLANE_GLUON

    plane = PLANE_CONGEST if args.algorithm == "mrbc-congest" else PLANE_GLUON
    if args.format == "json":
        doc = ledger.summary(top=args.top)
        if args.per_round:
            doc["per_round"] = ledger.per_round(plane)
        if args.matrix and plane == PLANE_GLUON:
            doc["host_matrix"] = ledger.host_matrix(args.hosts)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return

    rows = [
        [ph, t.messages, t.values, t.words, t.payload_bytes]
        for ph, t in ledger.phase_totals(plane).items()
    ]
    tot = ledger.totals(plane)
    rows.append(["TOTAL", tot.messages, tot.values, tot.words, tot.payload_bytes])
    print(format_table(
        ["phase", "messages", "values", "words", "payload bytes"],
        rows,
        title=f"communication by phase ({plane} plane)",
    ))
    if args.per_round:
        print(format_table(
            ["run", "phase", "round", "channels", "messages", "values", "bytes"],
            [[r["run"], r["phase"], r["round"], r["channels"],
              r["messages"], r["values"], r["payload_bytes"]]
             for r in ledger.per_round(plane)],
            title="communication by round",
        ))
    if args.top:
        print(format_table(
            ["src", "dst", "messages", "values", "bytes"],
            [[src, dst, t.messages, t.values, t.payload_bytes]
             for (src, dst), t in ledger.top_channels(plane, args.top)],
            title=f"top {args.top} channels by bytes",
        ))
    if args.matrix and plane == PLANE_GLUON:
        m = ledger.host_matrix(args.hosts)
        print(format_table(
            ["src\\dst", *[f"h{h}" for h in range(args.hosts)]],
            [[f"h{src}", *row] for src, row in enumerate(m)],
            title="host x host payload bytes",
        ))
    if plane == PLANE_CONGEST:
        words, where = ledger.max_channel_words()
        at = (
            f" ({where.src}->{where.dst} in round {where.round_index})"
            if where is not None else ""
        )
        print(
            f"max channel load: {words} words/round{at}; "
            f"bound B = {ledger.bound_words} words/round; "
            f"violations: {len(ledger.violations)}"
        )


def comm_main(argv: list[str]) -> int:
    """``repro comm``: per-phase/round/channel comm breakdowns, ``--check``.

    Without ``--check``, runs one algorithm under a
    :class:`~repro.obs.comm.CommLedger` and prints the volume breakdown
    (per phase, optionally per round, top-k hottest channels, host×host
    matrix).  With ``--check`` and no ``--graph``, runs the
    :data:`~repro.analysis.commcheck.DEFAULT_CHECK_SUITE` conformance
    suite; with both, checks just the given configuration.  The exit code
    is the PASS/FAIL verdict.
    """
    p = argparse.ArgumentParser(
        prog="repro comm",
        description="Communication-volume observability: breakdowns, "
                    "CONGEST bound checking, model conformance",
    )
    p.add_argument("algorithm", nargs="?", choices=COMM_ALGORITHMS,
                   default="mrbc", help="algorithm to run (default: mrbc)")
    p.add_argument("--graph", metavar="SPEC", default=None,
                   help="edge-list file or generator spec; omit with "
                        "--check to run the default conformance suite")
    p.add_argument("--sources", "-k", type=int, default=8,
                   help="number of sampled sources (default: 8)")
    p.add_argument("--hosts", type=int, default=4, help="simulated hosts")
    p.add_argument("--batch", type=int, default=8, help="MRBC batch size")
    p.add_argument("--seed", type=int, default=7, help="sampling seed")
    p.add_argument("--plane", choices=("dict", "array"), default="dict",
                   help="engine execution tier for mrbc/sbbc (the ledger "
                        "counts are identical by contract; default: dict)")
    p.add_argument("--check", action="store_true",
                   help="run predicted-vs-measured conformance checks "
                        "(exit code is the verdict)")
    p.add_argument("--per-round", action="store_true",
                   help="include the per-round breakdown")
    p.add_argument("--top", type=int, default=5, metavar="K",
                   help="hottest channels to list (default: 5, 0 to hide)")
    p.add_argument("--matrix", action="store_true",
                   help="print the host x host byte matrix (Gluon plane)")
    p.add_argument("--bound-factor", type=int, default=None, metavar="C",
                   help="CONGEST budget constant c in B = c*ceil(log2 n) "
                        "(default: 4)")
    p.add_argument("--hard-fail", action="store_true",
                   help="raise on a CONGEST bound violation instead of "
                        "recording it")
    p.add_argument("--format", choices=("table", "json"), default="table",
                   help="output format (default: table)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="with --check: also write the JSON report here")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)
    if args.bound_factor is None:
        from repro.obs.comm import DEFAULT_BOUND_FACTOR

        args.bound_factor = DEFAULT_BOUND_FACTOR

    if args.check:
        from repro.analysis.commcheck import (
            DEFAULT_CHECK_SUITE,
            CommCheckCase,
            render_comm_report,
            run_conformance,
        )

        if args.graph is None:
            from dataclasses import replace

            cases = [replace(c, plane=args.plane) for c in DEFAULT_CHECK_SUITE]
        else:
            cases = [CommCheckCase(
                name=f"{args.algorithm}-{args.graph}",
                algorithm=args.algorithm,
                graph=args.graph,
                hosts=args.hosts,
                sources=args.sources,
                batch=args.batch,
                seed=args.seed,
                plane=args.plane,
            )]
        report = run_conformance(
            cases, progress=lambda c: log.info("checking %s ...", c.name)
        )
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(report.to_json() + "\n")
            log.info("wrote JSON report to %s", args.report)
        if args.format == "json":
            print(report.to_json())
        else:
            print(render_comm_report(report))
        return 0 if report.ok else 1

    if args.graph is None:
        p.error("--graph is required unless --check runs the default suite")
    from repro.cli.common import _load_graph_arg
    from repro.core.sampling import sample_sources

    g = _load_graph_arg(args.graph)
    log.info("graph: %s", g)
    sources = sample_sources(
        g, min(args.sources, g.num_vertices), seed=args.seed
    )
    ledger = _run_with_ledger(args, g, sources)
    _print_breakdown(args, ledger)
    return 0
