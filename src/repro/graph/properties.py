"""Graph property computations mirroring the paper's Table 1 columns.

Table 1 reports |V|, |E|, max in/out-degree, number of sampled sources, and
an *estimated diameter*, defined as "the maximum finite shortest path
distance observed for those sources".  :func:`estimate_diameter` implements
exactly that definition; :func:`graph_properties` bundles everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.graph.digraph import DiGraph


def _adjacency(g: DiGraph) -> sp.csr_matrix:
    src, dst = g.edges()
    return sp.csr_matrix(
        (np.ones(src.size, dtype=np.int8), (src, dst)),
        shape=(g.num_vertices, g.num_vertices),
    )


def bfs_distances(g: DiGraph, source: int) -> np.ndarray:
    """Unweighted shortest-path distances from ``source``.

    Returns an ``int64`` array with ``-1`` for unreachable vertices.
    Implemented as a frontier-array BFS over the CSR arrays (vectorized per
    level), which is the reference the distributed algorithms are tested
    against.
    """
    n = g.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    offsets, targets = g.out_offsets, g.out_targets
    while frontier.size:
        level += 1
        # Gather all out-edges of the frontier in one shot.
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Build gather indices: for each frontier vertex, the slice of its
        # out-edges; np.repeat + cumulative offsets avoids a Python loop.
        gather = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        gather += np.arange(total)
        nbrs = targets[gather]
        fresh = nbrs[dist[nbrs] == -1]
        if fresh.size == 0:
            frontier = np.empty(0, dtype=np.int64)
            continue
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


def is_weakly_connected(g: DiGraph) -> bool:
    """True if the undirected version of ``g`` is connected."""
    if g.num_vertices <= 1:
        return True
    ncomp, _ = csgraph.connected_components(_adjacency(g), directed=False)
    return ncomp == 1


def is_strongly_connected(g: DiGraph) -> bool:
    """True if every vertex reaches every other vertex."""
    if g.num_vertices <= 1:
        return True
    ncomp, _ = csgraph.connected_components(
        _adjacency(g), directed=True, connection="strong"
    )
    return ncomp == 1


def directed_diameter(g: DiGraph) -> int:
    """Exact directed diameter: max finite δ(u, v) over all pairs.

    Exponentially safer than the paper's estimate but O(n·m); only use on
    test-scale graphs.  Returns 0 for graphs with no finite pair distances.
    """
    dist = csgraph.shortest_path(_adjacency(g), method="D", unweighted=True)
    finite = dist[np.isfinite(dist)]
    return int(finite.max()) if finite.size else 0


def estimate_diameter(g: DiGraph, sources: np.ndarray) -> int:
    """Paper's "estimated diameter": max finite distance from the sources."""
    best = 0
    for s in np.asarray(sources).ravel():
        d = bfs_distances(g, int(s))
        if d.max() > best:
            best = int(d[d >= 0].max())
    return best


@dataclass(frozen=True)
class GraphProperties:
    """The Table 1 property columns for one input graph."""

    num_vertices: int
    num_edges: int
    max_out_degree: int
    max_in_degree: int
    weakly_connected: bool
    strongly_connected: bool

    def as_row(self) -> dict[str, object]:
        """Dictionary for tabular reporting."""
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "Max Out-degree": self.max_out_degree,
            "Max In-degree": self.max_in_degree,
            "WCC": self.weakly_connected,
            "SCC": self.strongly_connected,
        }


def graph_properties(g: DiGraph) -> GraphProperties:
    """Compute the static property columns of Table 1 for ``g``."""
    outd = g.out_degrees()
    ind = g.in_degrees()
    return GraphProperties(
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        max_out_degree=int(outd.max()) if outd.size else 0,
        max_in_degree=int(ind.max()) if ind.size else 0,
        weakly_connected=is_weakly_connected(g),
        strongly_connected=is_strongly_connected(g),
    )
