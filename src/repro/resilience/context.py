"""The per-run resilience context: fault modes, channel guard, recovery.

One :class:`ResilienceContext` accompanies one algorithm execution.  The
communication substrates (:class:`~repro.engine.gluon.GluonSubstrate`,
:class:`~repro.congest.network.CongestNetwork`) call into it on every
synchronization; the drivers (``mrbc_engine``, ``sbbc_engine``,
``run_bsp``) call :meth:`on_crash` when a host crash surfaces.

The channel guard models the integrity layer a production transport would
run: every aggregated pair message carries an item count and a content
digest; the receiver verifies both.  What happens on a mismatch is the
``mode``:

- ``off`` — deliver the perturbed message unchecked (the poison
  experiment: measures what faults do to an unprotected run);
- ``detect`` — raise :class:`~repro.resilience.errors.FaultDetectedError`
  (fail loudly, never return silently wrong centralities);
- ``repair`` — bounded retransmission of the authoritative content, with
  the retry traffic charged to dedicated ``recovery`` rounds so the fault
  overhead shows up in Figure 2-style breakdowns.

Faults and recoveries are emitted as ``fault``/``recovery`` telemetry
events and counters through :mod:`repro.obs`, so they land in the run's
event stream and (via :meth:`summary`) in its manifest.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import TYPE_CHECKING, Any, Sequence

from repro import obs
from repro.resilience.errors import (
    FaultDetectedError,
    HostCrashError,
    HostTimeoutError,
    UnrecoverableFaultError,
)
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.injector import FaultInjector, Item
from repro.resilience.invariants import InvariantChecker
from repro.resilience.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.gluon import GluonSubstrate
    from repro.engine.stats import EngineRun, RoundStats
    from repro.resilience.supervisor import RecoveryPolicy

MODES = ("off", "detect", "repair")


def channel_digest(items: Sequence[Item]) -> int:
    """Order-sensitive content digest of one channel's item list.

    Models the checksum a real transport would append to each aggregated
    message; ``repr`` of int/float tuples is deterministic, so the digest
    is stable across processes.
    """
    return zlib.crc32(repr(list(items)).encode("utf-8"))


class ResilienceContext:
    """Fault plan + mode + recovery state for one algorithm run.

    Parameters
    ----------
    plan:
        The fault scenario; ``None`` means no injection (the guard still
        verifies channels, at digest cost — useful as a pure detector).
    mode:
        Channel-guard mode: ``off`` | ``detect`` | ``repair``.
    invariants:
        Mode for the state-level round invariants; defaults to ``mode``.
    max_retries:
        Retransmission attempts per faulty channel before giving up.
    max_restarts:
        Crash restarts per phase before giving up.
    checkpoint_dir:
        Persist checkpoints under this directory (in-memory when None).
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        mode: str = "detect",
        invariants: str | None = None,
        max_retries: int = 5,
        max_restarts: int = 3,
        checkpoint_dir: str | None = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.invariants = mode if invariants is None else invariants
        if self.invariants not in MODES:
            raise ValueError(f"invariants must be one of {MODES}")
        self.plan = plan if plan is not None else FaultPlan("none")
        self.injector = FaultInjector(self.plan)
        self.max_retries = max_retries
        self.max_restarts = max_restarts
        self.checkpoints = CheckpointStore(checkpoint_dir)
        self.run: "EngineRun | None" = None
        self._last_rs: "RoundStats | None" = None
        #: Declarative recovery policy, attached via
        #: :meth:`~repro.resilience.supervisor.RecoveryPolicy.configure`.
        #: ``None`` keeps PR 2's implicit behavior (wait out stalls, no
        #: backoff between restarts).
        self.policy: "RecoveryPolicy | None" = None
        # -- ground-truth tallies (kept even when telemetry is off).
        self.detected_by_kind: dict[str, int] = defaultdict(int)
        self.recovered_by_kind: dict[str, int] = defaultdict(int)
        self.invariant_violations: dict[str, int] = defaultdict(int)
        self.retransmits = 0
        self.recovery_rounds = 0
        self.stall_rounds = 0
        self.backoff_rounds = 0
        self.crash_restarts = 0
        self.degraded_units = 0
        self.first_inject_round: int | None = None
        self.first_detect_round: int | None = None
        #: Ordered recovery timeline: one JSON-able record per fault /
        #: detection / recovery action, in simulated-round order.  Lands
        #: in the manifest via :meth:`summary`.
        self.timeline: list[dict[str, Any]] = []

    # -- wiring ----------------------------------------------------------------

    def attach_run(self, run: "EngineRun") -> None:
        """Bind the engine-statistics run recovery rounds are charged to."""
        self.run = run

    def new_invariant_checker(self) -> InvariantChecker | None:
        """A fresh per-batch state checker, or None when invariants are off."""
        if self.invariants == "off":
            return None
        return InvariantChecker(self.invariants, self)

    # -- telemetry -------------------------------------------------------------

    def _timeline(self, event: str, rnd: int, **attrs: Any) -> None:
        rec: dict[str, Any] = {"event": event, "round": rnd}
        rec.update(attrs)
        self.timeline.append(rec)

    def _note_injected(
        self, kinds: list[str], rnd: int, sender: int, receiver: int | None, op: str
    ) -> None:
        if self.first_inject_round is None:
            self.first_inject_round = rnd
        tele = obs.current()
        for kind in kinds:
            self._timeline(
                "inject", rnd, fault=kind, op=op, sender=sender, receiver=receiver
            )
            if tele.enabled:
                tele.emit(
                    obs.KIND_FAULT,
                    "fault.injected",
                    fault=kind,
                    op=op,
                    round=rnd,
                    sender=sender,
                    receiver=receiver,
                )
                tele.metrics.counter("resilience.faults_injected", kind=kind).inc()

    def _note_detected(
        self,
        kinds: list[str],
        rnd: int,
        sender: int,
        receiver: int | None,
        op: str,
        expected: int,
        got: int,
    ) -> None:
        if self.first_detect_round is None:
            self.first_detect_round = rnd
        tele = obs.current()
        for kind in kinds:
            self.detected_by_kind[kind] += 1
            self._timeline(
                "detect", rnd, fault=kind, op=op, sender=sender, receiver=receiver
            )
            if tele.enabled:
                tele.emit(
                    obs.KIND_FAULT,
                    "fault.detected",
                    fault=kind,
                    op=op,
                    round=rnd,
                    sender=sender,
                    receiver=receiver,
                    expected_items=expected,
                    got_items=got,
                )
                tele.metrics.counter("resilience.faults_detected", kind=kind).inc()

    def _note_recovered(self, action: str, rnd: int, **attrs: Any) -> None:
        self.recovered_by_kind[action] += 1
        self._timeline("recover", rnd, action=action, **attrs)
        tele = obs.current()
        if tele.enabled:
            tele.emit(obs.KIND_RECOVERY, f"recovery.{action}", round=rnd, **attrs)
            tele.metrics.counter("resilience.recoveries", action=action).inc()

    def record_invariant_violation(
        self, invariant: str, rnd: int, detail: str, repaired: bool
    ) -> None:
        """Called by :class:`InvariantChecker` for every violation."""
        if self.first_detect_round is None:
            self.first_detect_round = rnd
        self.invariant_violations[invariant] += 1
        self.detected_by_kind[f"invariant:{invariant}"] += 1
        tele = obs.current()
        if tele.enabled:
            tele.emit(
                obs.KIND_FAULT,
                "fault.detected",
                fault="invariant",
                invariant=invariant,
                round=rnd,
                detail=detail,
            )
            tele.metrics.counter(
                "resilience.invariant_violations", invariant=invariant
            ).inc()
        if repaired:
            self._note_recovered("state_rollback", rnd, invariant=invariant)

    # -- the channel guard (BSP/Gluon side) ------------------------------------

    def guard_sync(
        self,
        substrate: "GluonSubstrate",
        per_pair: dict[tuple[int, int], list[Item]],
        payload_bytes: int,
        batch_width: int,
        rs: "RoundStats",
    ) -> dict[tuple[int, int], list[Item]]:
        """Inject, verify, and (per mode) repair one sync's pair messages."""
        if rs is not self._last_rs:
            self._last_rs = rs
            self._host_events(rs)
        if not self.injector.has_message_faults:
            return per_pair
        out: dict[tuple[int, int], list[Item]] = {}
        retransmits: list[tuple[int, int, list[Item], int]] = []
        for (sender, receiver), items in per_pair.items():
            if sender == receiver:
                out[(sender, receiver)] = items
                continue
            delivered = self._guard_channel(
                rs.round_index, sender, receiver, items, "sync", retransmits
            )
            if delivered:
                out[(sender, receiver)] = delivered
        if retransmits:
            self._charge_retransmits(substrate, retransmits, payload_bytes, batch_width)
        return out

    def _guard_channel(
        self,
        rnd: int,
        sender: int,
        receiver: int,
        items: list[Item],
        op: str,
        retransmits: list[tuple[int, int, list[Item], int]] | None,
    ) -> list[Item]:
        delivered, injected = self.injector.perturb_channel(
            rnd, sender, receiver, items
        )
        if injected:
            self._note_injected(injected, rnd, sender, receiver, op)
        if self.mode == "off":
            return delivered
        # Integrity check: count + order-sensitive content digest.
        if len(delivered) == len(items) and channel_digest(delivered) == channel_digest(
            items
        ):
            return delivered
        kinds = injected or ["unknown"]
        self._note_detected(
            kinds, rnd, sender, receiver, op, len(items), len(delivered)
        )
        if self.mode == "detect":
            raise FaultDetectedError(kinds, rnd, sender, receiver, op)
        # Repair: bounded retransmission over the same lossy network.
        for attempt in range(1, self.max_retries + 1):
            self.retransmits += 1
            redelivered, inj2 = self.injector.perturb_channel(
                rnd, sender, receiver, items
            )
            if inj2:
                self._note_injected(inj2, rnd, sender, receiver, f"{op}:retransmit")
                continue
            if len(redelivered) == len(items) and channel_digest(
                redelivered
            ) == channel_digest(items):
                self._note_recovered(
                    "retransmit",
                    rnd,
                    sender=sender,
                    receiver=receiver,
                    attempts=attempt,
                )
                if retransmits is not None:
                    retransmits.append((sender, receiver, items, attempt))
                return list(items)
        raise UnrecoverableFaultError(
            f"channel {sender}->{receiver} still faulty after "
            f"{self.max_retries} retransmissions in round {rnd}"
        )

    def _charge_retransmits(
        self,
        substrate: "GluonSubstrate",
        retransmits: list[tuple[int, int, list[Item], int]],
        payload_bytes: int,
        batch_width: int,
    ) -> None:
        """Charge successful retransmissions to one dedicated recovery round."""
        if self.run is None:
            return
        rr = self.run.new_round("recovery", recovery=True)
        self.recovery_rounds += 1
        rl = obs.current().rounds
        if rl is not None:
            rl.record_recovery_round(rr)
        ledger = obs.current().comm
        for sender, receiver, items, _attempts in retransmits:
            vertices: dict[int, int] = defaultdict(int)
            for it in items:
                vertices[it[0]] += 1
            nbytes = substrate._message_bytes(
                sender, receiver, vertices, payload_bytes, batch_width
            )
            rr.pair_messages += 1
            rr.items_synced += len(items)
            rr.proxies_synced += len(vertices)
            rr.bytes_out[sender] += nbytes
            rr.bytes_in[receiver] += nbytes
            rr.msgs_out[sender] += 1
            rr.msgs_in[receiver] += 1
            if ledger is not None:
                # Keep the ledger reconciled with RoundStats even under
                # faults: retry traffic is comm volume too.
                ledger.record_pair_message(
                    rr, sender, receiver, len(items), nbytes, "retransmit"
                )

    # -- host-scope faults -----------------------------------------------------

    def _host_events(self, rs: "RoundStats") -> None:
        self.host_events(rs.round_index)

    def host_events(self, rnd: int) -> None:
        """Materialize due host-scope faults (stall/crash) for round ``rnd``.

        A stall charges idle ``recovery`` rounds while the barrier waits;
        with a policy deadline (``stall_timeout_rounds``) the wait is
        capped and a longer stall is converted into a
        :class:`~repro.resilience.errors.HostTimeoutError` — the restart
        machinery then treats the straggler exactly like a crashed host.
        The injector consumes each spec once, so the post-restart replay
        proceeds fault-free (deterministically recoverable).
        """
        for spec in self.injector.due_host_events(rnd):
            host = int(spec.host or 0)
            self._note_injected([spec.kind], rnd, host, None, "host")
            if spec.kind == "stall":
                self._note_detected(["stall"], rnd, host, None, "host", 0, 0)
                deadline = (
                    self.policy.stall_timeout_rounds
                    if self.policy is not None
                    else None
                )
                # BSP semantics: the barrier waits for the straggler — the
                # stall costs whole rounds of idle time, up to the policy's
                # deadline when one is set.
                wait = (
                    spec.duration
                    if deadline is None
                    else min(spec.duration, deadline)
                )
                if self.run is not None:
                    rl = obs.current().rounds
                    for _ in range(wait):
                        rr = self.run.new_round("recovery", recovery=True)
                        if rl is not None:
                            rl.record_recovery_round(rr)
                    self.recovery_rounds += wait
                self.stall_rounds += wait
                if deadline is not None and spec.duration > deadline:
                    self._timeline(
                        "timeout", rnd, host=host, deadline_rounds=deadline
                    )
                    raise HostTimeoutError(host, rnd, deadline)
                self._note_recovered("stall_wait", rnd, host=host, rounds=wait)
            elif spec.kind == "crash":
                self._note_detected(["crash"], rnd, host, None, "host", 0, 0)
                raise HostCrashError(host, rnd)

    def on_crash(self, err: HostCrashError, attempt: int) -> None:
        """Driver hook after catching a crash: re-raise or allow a restart."""
        if self.mode != "repair":
            raise err
        if attempt > self.max_restarts:
            raise UnrecoverableFaultError(
                f"host {err.host} crashed and {self.max_restarts} restarts "
                "were exhausted"
            ) from err
        self.crash_restarts = max(self.crash_restarts, attempt)
        self._note_recovered(
            "restart", err.round_index, host=err.host, attempt=attempt
        )

    def charge_backoff(self, attempt: int) -> None:
        """Charge the policy's sim-time backoff before restart ``attempt``.

        Called by the restart loops after :meth:`on_crash` admits a
        retry and *before* the replay begins (so the waiting rounds are
        not mistaken for replayed work).  Without a policy this is a
        no-op — PR 2 restarts immediately, and that behavior is kept.
        """
        if self.policy is None:
            return
        rounds = self.policy.backoff.rounds_before(attempt)
        if rounds <= 0:
            return
        if self.run is not None:
            rl = obs.current().rounds
            for _ in range(rounds):
                rr = self.run.new_round("recovery", recovery=True)
                if rl is not None:
                    rl.record_recovery_round(rr)
            self.recovery_rounds += rounds
        self.backoff_rounds += rounds
        self._note_recovered("backoff", -1, attempt=attempt, rounds=rounds)

    def note_degraded(self, index: int, sources: list[int], err: Exception) -> None:
        """Record one failure domain dropped by graceful degradation."""
        self.degraded_units += 1
        self._note_recovered(
            "degrade",
            -1,
            unit=index,
            sources=list(sources),
            failure=f"{type(err).__name__}: {err}",
        )

    # -- CONGEST side ----------------------------------------------------------

    def guard_congest(
        self, rnd: int, sender: int, target: int, payloads: list[Item]
    ) -> list[Item]:
        """Guard one CONGEST channel's payload list for round ``rnd``."""
        return self._guard_channel(rnd, sender, target, payloads, "congest", None)

    def congest_host_events(self, rnd: int) -> None:
        """CONGEST-plane entry for host-scope faults, once per exchange round."""
        self.host_events(rnd)

    # -- reporting -------------------------------------------------------------

    @property
    def faults_injected(self) -> int:
        return self.injector.total_injected

    @property
    def faults_detected(self) -> int:
        return sum(self.detected_by_kind.values())

    @property
    def recoveries(self) -> int:
        return sum(self.recovered_by_kind.values())

    def detection_latency_rounds(self) -> int | None:
        """Rounds between the first injection and its first detection."""
        if self.first_inject_round is None or self.first_detect_round is None:
            return None
        return max(0, self.first_detect_round - self.first_inject_round)

    def summary(self) -> dict[str, Any]:
        """JSON-able report block (lands in the run manifest's extras)."""
        # The attached run is authoritative for recovery rounds: it also
        # sees post-crash replays, which the context's own tally (covering
        # retransmit and stall rounds it appended itself) does not.
        recovery_rounds = (
            self.run.recovery_rounds if self.run is not None else self.recovery_rounds
        )
        return {
            "plan": self.plan.to_dict(),
            "mode": self.mode,
            "invariants": self.invariants,
            "policy": None if self.policy is None else self.policy.to_dict(),
            "faults_injected": self.faults_injected,
            "injected_by_kind": dict(self.injector.injected_by_kind),
            "faults_detected": self.faults_detected,
            "detected_by_kind": dict(self.detected_by_kind),
            "recoveries": self.recoveries,
            "recovered_by_kind": dict(self.recovered_by_kind),
            "invariant_violations": dict(self.invariant_violations),
            "retransmits": self.retransmits,
            "recovery_rounds": recovery_rounds,
            "stall_rounds": self.stall_rounds,
            "backoff_rounds": self.backoff_rounds,
            "crash_restarts": self.crash_restarts,
            "degraded_units": self.degraded_units,
            "first_inject_round": self.first_inject_round,
            "first_detect_round": self.first_detect_round,
            "detection_latency_rounds": self.detection_latency_rounds(),
            "timeline": [dict(rec) for rec in self.timeline],
        }
