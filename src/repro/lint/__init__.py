"""repro.lint — domain-aware static analysis for the MRBC engine.

Rule families: ``RL1xx`` determinism, ``RL2xx`` CONGEST protocol,
``RL3xx`` Gluon delayed synchronization, ``RL4xx`` observability /
resilience hygiene.  See ``docs/STATIC_ANALYSIS.md`` for the full rule
table and the paper invariants each encodes.

Programmatic entry points::

    from repro.lint import lint_main          # CLI (repro lint ...)
    from repro.lint import run_lint, RULES    # library use
"""

from repro.lint.baseline import Baseline
from repro.lint.cli import lint_main
from repro.lint.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    sort_findings,
)
from repro.lint.runner import LintResult, lint_file, run_lint
from repro.lint.rules import RULES, ModuleInfo, run_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "RULES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "lint_file",
    "lint_main",
    "run_lint",
    "run_rules",
    "sort_findings",
]
