"""Ablation: the flat-map data structure (paper §4.3, footnote 1).

"We have observed Boost flat map, which uses a sorted vector, to perform
better than the C++ standard map (which uses a red-black tree) even with
O(k) insertion complexity due to improved locality of a sorted vector."

We micro-benchmark the MRBC access pattern — build a distance→sources map
for a batch, then repeatedly look up ordered prefixes (the per-round
schedule evaluation) — on our sorted-vector :class:`FlatMap` against a
plain dict + re-sort, which models a structure without ordered iteration.
"""

import numpy as np
import pytest

from repro.utils.flatmap import FlatMap
from repro.utils.prng import make_rng

K = 64  # batch width
ROUNDS = 200  # schedule evaluations per workload
REBUILDS = 20


def _workload_flatmap(dists: np.ndarray) -> int:
    total = 0
    for _ in range(REBUILDS):
        fm = FlatMap()
        for si, d in enumerate(dists.tolist()):
            fm.setdefault(d, []).append(si)
        for r in range(ROUNDS):
            # Ordered prefix walk: how many pairs are due by round r?
            for pos, d in enumerate(fm.keys()):
                if d + pos + 1 > r:
                    break
                total += 1
    return total


def _workload_dict(dists: np.ndarray) -> int:
    total = 0
    for _ in range(REBUILDS):
        m: dict[int, list[int]] = {}
        for si, d in enumerate(dists.tolist()):
            m.setdefault(d, []).append(si)
        for r in range(ROUNDS):
            # No ordered iteration: must sort the keys every round.
            for pos, d in enumerate(sorted(m)):
                if d + pos + 1 > r:
                    break
                total += 1
    return total


@pytest.fixture(scope="module")
def dists() -> np.ndarray:
    return make_rng(3).integers(1, 40, size=K)


def test_flatmap_workload(dists, benchmark):
    total = benchmark(_workload_flatmap, dists)
    assert total > 0


def test_dict_resort_workload(dists, benchmark):
    total = benchmark(_workload_dict, dists)
    assert total > 0


def test_same_semantics(dists, benchmark):
    """Both structures walk the identical schedule."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _workload_flatmap(dists) == _workload_dict(dists)
