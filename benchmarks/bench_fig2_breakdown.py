"""Figure 2 reproduction: breakdown of execution time into computation and
non-overlapped communication, plus communication volume, for SBBC vs MRBC.

Figure 2a: the five small graphs at the scaled "32-host" configuration.
Figure 2b: the three large graphs at the scaled "256-host" configuration.

Paper shapes: MRBC's computation time is *higher* than SBBC's on every
input (the §4.3 data-structure overhead), its communication volume is
lower (e.g. gsh15 29.9→15.2 GB, clueweb12 25.9→12.8 GB), and on
non-trivial-diameter graphs the communication-time saving dominates.
Mean communication-time reduction in the paper: 2.8×.
"""

import pytest

from repro.analysis.reporting import geometric_mean
from repro.cluster.model import ClusterModel
from repro.graph.suite import SUITE, suite_names
from repro.obs import build_manifest

from conftest import (
    COLLECTOR,
    LARGE_HOSTS,
    SMALL_HOSTS,
    run_mrbc,
    run_sbbc,
    simulated,
)

HEADERS = [
    "figure",
    "graph",
    "algo",
    "comp (s)",
    "comm (s)",
    "total (s)",
    "volume (B)",
]

_comm: dict[tuple[str, str], float] = {}


def _record(fig: str, name: str, H: int) -> None:
    """Record one Figure 2 row per algorithm, read off the run manifest.

    The manifest's whole-run totals come from ``ClusterModel.time_run`` in
    execution order, so the CSV stays byte-identical to the pre-manifest
    harness that called ``simulated(...)`` directly.
    """
    for algo, run_fn in (("SBBC", run_sbbc), ("MRBC", run_mrbc)):
        res = run_fn(name, H)
        man = build_manifest(
            algo.lower(), res.run, ClusterModel(H), graph_spec=name
        )
        _comm[(name, algo)] = man.totals["communication_s"]
        COLLECTOR.add(
            "Figure 2: computation vs communication breakdown",
            HEADERS,
            [
                fig,
                name,
                algo,
                f"{man.totals['computation_s']:.4f}",
                f"{man.totals['communication_s']:.4f}",
                f"{man.totals['total_s']:.4f}",
                man.totals["bytes"],
            ],
        )


@pytest.mark.parametrize("name", suite_names("small"))
def test_fig2a_small(name, benchmark):
    H = SMALL_HOSTS
    benchmark.pedantic(lambda: _record("2a", name, H), rounds=1, iterations=1)
    sb = simulated(run_sbbc(name, H).run, H)
    mr = simulated(run_mrbc(name, H).run, H)
    # MRBC computes more...
    assert mr.computation > sb.computation, name
    # ...and communicates less time on non-trivial-diameter inputs; on
    # trivial-diameter ones the round gap is small and the two are within
    # noise of each other (the paper's Fig. 2a shows the same near-parity
    # for friendster/livejournal/rmat24).
    if not SUITE[name].low_diameter and name != "road-europe":
        assert mr.communication < sb.communication, name
    else:
        assert mr.communication < 1.15 * sb.communication, name


@pytest.mark.parametrize("name", suite_names("large"))
def test_fig2b_large(name, benchmark):
    H = LARGE_HOSTS
    benchmark.pedantic(lambda: _record("2b", name, H), rounds=1, iterations=1)
    sb_run = run_sbbc(name, H).run
    mr_run = run_mrbc(name, H).run
    # Volume: MRBC at most SBBC's, and clearly lower on the web-crawls.
    if not SUITE[name].low_diameter:
        assert mr_run.total_bytes < sb_run.total_bytes, name
    assert simulated(mr_run, H).communication < simulated(sb_run, H).communication


def test_fig2_mean_comm_reduction(benchmark):
    """Paper: 2.8× mean communication-time reduction.  Require > 1.5× at
    library scale across all inputs measured above."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    names = [n for n in suite_names() if (n, "SBBC") in _comm]
    assert names, "figure tests must run first"
    ratios = [_comm[(n, "SBBC")] / _comm[(n, "MRBC")] for n in names]
    mean = geometric_mean(ratios)
    assert mean > 1.5
    COLLECTOR.add(
        "Figure 2: computation vs communication breakdown",
        HEADERS,
        ["-", "GEOMEAN comm reduction", f"{mean:.1f}x", "", "", "", ""],
    )
