"""Versioned run manifests: one JSON document describing a recorded run.

A manifest is the top-level artifact a benchmark or ``repro trace``
invocation leaves behind next to its event stream and CSVs: the exact
configuration (graph spec, seed, batch size, partition policy, host
count, git SHA) plus per-phase totals — rounds, communication volume,
and the simulated computation/communication split that Figure 2 of the
paper plots.  Totals are derived once, here, from the authoritative
:class:`~repro.engine.stats.EngineRun`, so every downstream consumer
(breakdown tables, benchmark CSVs, tests) reads the same numbers instead
of re-deriving them.

The per-run ``totals`` block is computed by the cluster model over the
rounds *in execution order* (not per-phase then summed), so it is
bit-identical to ``ClusterModel.time_run(run)``.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.model import ClusterModel
    from repro.engine.stats import EngineRun

#: Bumped on any incompatible schema change; readers refuse newer files.
MANIFEST_VERSION = 1


def git_sha(repo_dir: str | None = None, refresh: bool = False) -> str | None:
    """Current git commit SHA, or None when unavailable (no git / no repo).

    Cached per process per ``repo_dir``: every :func:`build_manifest` (and
    every bench repetition) calls this, and the answer cannot change under
    a running process short of a concurrent commit — pass ``refresh=True``
    to drop the cache in that case.
    """
    if refresh:
        _git_sha_uncached.cache_clear()
    return _git_sha_uncached(repo_dir)


@lru_cache(maxsize=None)
def _git_sha_uncached(repo_dir: str | None) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class PhaseTotals:
    """Aggregates for one phase ("forward", "backward", ...)."""

    phase: str
    rounds: int = 0
    bytes: int = 0
    pair_messages: int = 0
    items_synced: int = 0
    proxies_synced: int = 0
    compute_ops: int = 0
    #: Simulated cluster time attribution (seconds).
    computation_s: float = 0.0
    communication_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.computation_s + self.communication_s


@dataclass
class RunManifest:
    """Everything needed to identify and re-analyze one recorded run."""

    algorithm: str
    version: int = MANIFEST_VERSION
    #: Input identity.
    graph_spec: str | None = None
    num_vertices: int = 0
    num_edges: int = 0
    #: Run configuration.
    num_hosts: int = 0
    num_sources: int = 0
    batch_size: int | None = None
    partition_policy: str | None = None
    seed: int | None = None
    #: Provenance.
    git_sha: str | None = None
    created_unix: float | None = None
    #: Per-phase aggregates, in first-execution order.
    phases: list[PhaseTotals] = field(default_factory=list)
    #: Whole-run totals (bit-identical to ``ClusterModel.time_run``).
    totals: dict[str, Any] = field(default_factory=dict)
    #: Communication-volume summary (:meth:`~repro.obs.comm.CommLedger
    #: .summary`); empty when no ledger was attached.  Additive — version-1
    #: manifests without it still load.
    comm: dict[str, Any] = field(default_factory=dict)
    #: Round-complexity summary (:meth:`~repro.obs.rounds.RoundLedger
    #: .summary`); empty when no round ledger was attached.  Additive —
    #: pre-ledger manifests without it still load.
    rounds: dict[str, Any] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    def phase(self, name: str) -> PhaseTotals:
        """Totals for one phase (KeyError if absent)."""
        for p in self.phases:
            if p.phase == name:
                return p
        raise KeyError(f"manifest has no phase {name!r}")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def build_manifest(
    algorithm: str,
    run: "EngineRun",
    model: "ClusterModel",
    ledger: Any = None,
    rounds: Any = None,
    **config: Any,
) -> RunManifest:
    """Aggregate an :class:`EngineRun` into a manifest.

    ``config`` fills the configuration/provenance fields of
    :class:`RunManifest`; unknown keys land in ``extra``.  ``git_sha`` and
    ``created_unix`` are captured automatically unless provided.  Pass the
    run's :class:`~repro.obs.comm.CommLedger` as ``ledger`` to persist its
    communication summary in the ``comm`` section, and its
    :class:`~repro.obs.rounds.RoundLedger` as ``rounds`` to persist the
    round-complexity summary in the ``rounds`` section.
    """
    known = {f for f in RunManifest.__dataclass_fields__} - {
        "version",
        "phases",
        "totals",
        "comm",
        "rounds",
        "extra",
        "algorithm",
    }
    fields = {k: v for k, v in config.items() if k in known}
    extra = {k: v for k, v in config.items() if k not in known}
    man = RunManifest(algorithm=algorithm, extra=extra, **fields)
    if man.git_sha is None:
        man.git_sha = git_sha()
    if man.created_unix is None:
        import time

        man.created_unix = time.time()
    if not man.num_hosts:
        man.num_hosts = run.num_hosts

    by_phase: dict[str, PhaseTotals] = {}
    for rs in run.rounds:
        # Recovery rounds (fault retransmits/stalls/replays) group under
        # their own "recovery" phase — see RoundStats.effective_phase.
        key = rs.effective_phase
        pt = by_phase.get(key)
        if pt is None:
            pt = by_phase[key] = PhaseTotals(phase=key)
            man.phases.append(pt)
        t = model.time_round(rs)
        pt.rounds += 1
        pt.bytes += rs.total_bytes()
        pt.pair_messages += rs.pair_messages
        pt.items_synced += rs.items_synced
        pt.proxies_synced += rs.proxies_synced
        pt.compute_ops += sum(c.total() for c in rs.compute)
        pt.computation_s += t.computation
        pt.communication_s += t.communication

    sim = model.time_run(run)
    man.totals = {
        "rounds": run.num_rounds,
        "bytes": run.total_bytes,
        "pair_messages": run.total_pair_messages,
        "items_synced": run.total_items_synced,
        "proxies_synced": run.total_proxies_synced,
        "load_imbalance": run.load_imbalance(),
        "computation_s": sim.computation,
        "communication_s": sim.communication,
        "barrier_s": sim.barrier,
        "wire_s": sim.wire,
        "serialization_s": sim.serialization,
        "total_s": sim.total,
    }
    if ledger is not None:
        man.comm = ledger.summary()
    if rounds is not None:
        man.rounds = rounds.summary()
    return man


def write_manifest(man: RunManifest, path: str | os.PathLike) -> None:
    """Write a manifest as pretty-printed JSON."""
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(man.to_json() + "\n")


def load_manifest(path: str | os.PathLike) -> RunManifest:
    """Load a manifest written by :func:`write_manifest`."""
    with open(path, encoding="utf-8") as fh:
        rec = json.load(fh)
    v = rec.get("version")
    if v != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {v!r} "
            f"(this reader understands {MANIFEST_VERSION})"
        )
    phases = [PhaseTotals(**p) for p in rec.pop("phases", [])]
    return RunManifest(phases=phases, **rec)
