"""The communication ledger: who sent what to whom, round by round.

The rest of the obs stack observes *time* (spans, phase profiles,
Perfetto tracks); this module observes *volume* — the quantity the
paper's central claims are actually about.  A :class:`CommLedger`
attached to the telemetry session (``obs.session(comm=CommLedger())``)
is fed by the ledger-recording ``MessagePlane`` entry points:

- the Gluon substrate records one entry per aggregated host-pair message
  per round (reduce and broadcast, plus fault retransmissions), carrying
  the exact byte sizes the engine already charges to ``RoundStats``;
- the CONGEST plane records one entry per directed channel per round,
  carrying the message's value and machine-word counts, and checks each
  channel against the model's bandwidth budget
  ``B = c·⌈log₂ n⌉`` words per round (:func:`congest_bound_words`).

Recording is purely additive: the ledger never perturbs accounting, so
``EngineRun.deterministic_signature`` is byte-identical with and without
a ledger attached (``repro bench --compare`` gates this).  All queries
order their output deterministically (insertion order for rounds and
phases, sorted keys elsewhere).

Bound violations are returned to the recording plane, which emits a
``comm`` obs event and — when the ledger was built with
``hard_fail=True`` — raises
:class:`~repro.runtime.errors.ChannelBandwidthError`.

See ``docs/OBSERVABILITY.md`` ("Communication accounting") for the
schema and ``repro comm`` for the command-line view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

#: Bumped on any incompatible change to :meth:`CommLedger.summary`.
COMM_SCHEMA_VERSION = 1

#: Plane labels: host-level Gluon traffic vs per-edge CONGEST channels.
PLANE_GLUON = "gluon"
PLANE_CONGEST = "congest"

#: Bytes per machine word (the O(log n)-bit CONGEST word, rounded to a
#: 64-bit hardware word — the same unit :func:`payload_words` charges).
WORD_BYTES = 8

#: Default constant ``c`` of the per-channel budget ``B = c·⌈log₂ n⌉``
#: words per round.  The CONGEST model allows any fixed constant; 4 words
#: of headroom covers the paper's combined messages (at most
#: ``MAX_COMBINED_VALUES`` values of ≤ 3 words each on the suite graphs)
#: while still failing loudly on genuinely unbounded payloads.
DEFAULT_BOUND_FACTOR = 4


def congest_bound_words(n: int, factor: int = DEFAULT_BOUND_FACTOR) -> int:
    """The per-channel-per-round budget ``B = factor·⌈log₂ n⌉`` in words.

    ``n`` is the vertex count of the communication graph; values below 2
    are clamped so the bound is always positive.
    """
    if factor < 1:
        raise ValueError("bound factor must be >= 1")
    return factor * max(1, math.ceil(math.log2(max(2, n))))


@dataclass
class CommTotals:
    """Additive message/value/word/byte counters (one aggregation cell)."""

    messages: int = 0
    values: int = 0
    words: int = 0
    payload_bytes: int = 0

    def add(
        self, *, values: int, words: int, payload_bytes: int, messages: int = 1
    ) -> None:
        self.messages += messages
        self.values += values
        self.words += words
        self.payload_bytes += payload_bytes

    def merge(self, other: "CommTotals") -> None:
        self.add(
            messages=other.messages,
            values=other.values,
            words=other.words,
            payload_bytes=other.payload_bytes,
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "messages": self.messages,
            "values": self.values,
            "words": self.words,
            "payload_bytes": self.payload_bytes,
        }


@dataclass(frozen=True)
class BoundViolation:
    """One channel exceeding the CONGEST bandwidth budget in one round."""

    round_index: int
    src: int
    dst: int
    words: int
    bound_words: int

    def to_dict(self) -> dict[str, int]:
        return {
            "round": self.round_index,
            "src": self.src,
            "dst": self.dst,
            "words": self.words,
            "bound_words": self.bound_words,
        }


@dataclass
class RoundComm:
    """All traffic of one plane in one round of one run (epoch).

    ``epoch`` distinguishes successive runs on the same plane whose round
    counters restart (one CONGEST network run per source batch and phase);
    planes bump it via :meth:`CommLedger.begin_epoch`.
    """

    plane: str
    epoch: int
    phase: str
    round_index: int
    totals: CommTotals = field(default_factory=CommTotals)
    #: (src, dst) -> totals.  Hosts for Gluon, vertex ids for CONGEST.
    pairs: dict[tuple[int, int], CommTotals] = field(default_factory=dict)


class CommLedger:
    """Per round × phase × (src, dst) communication record.

    Parameters
    ----------
    bound_words:
        Per-channel-per-round word budget for the CONGEST plane
        (:func:`congest_bound_words`), or ``None`` to disable checking.
    hard_fail:
        When True, the recording plane raises
        :class:`~repro.runtime.errors.ChannelBandwidthError` on a
        violation instead of merely recording it.
    """

    def __init__(
        self, *, bound_words: int | None = None, hard_fail: bool = False
    ) -> None:
        if bound_words is not None and bound_words < 1:
            raise ValueError("bound_words must be >= 1")
        self.bound_words = bound_words
        self.hard_fail = hard_fail
        #: Insertion-ordered (plane, epoch, phase, round) -> RoundComm.
        self._rounds: dict[tuple[str, int, str, int], RoundComm] = {}
        #: (plane, op) -> totals; op is "reduce"/"broadcast"/"retransmit"
        #: for Gluon and "send" for CONGEST.
        self._op_totals: dict[tuple[str, str], CommTotals] = {}
        self._epoch: dict[str, int] = {}
        self.violations: list[BoundViolation] = []

    # -- recording (called by the MessagePlane entry points) -------------------

    def begin_epoch(self, plane: str) -> None:
        """Mark the start of a new run whose round counter restarts."""
        self._epoch[plane] = self._epoch.get(plane, 0) + 1

    def record(
        self,
        plane: str,
        phase: str,
        round_index: int,
        src: int,
        dst: int,
        *,
        values: int,
        words: int,
        payload_bytes: int,
        op: str = "send",
    ) -> BoundViolation | None:
        """Record one aggregated message; return a violation when the
        CONGEST bandwidth budget is exceeded on this channel this round."""
        key = (plane, self._epoch.get(plane, 0), phase, round_index)
        rc = self._rounds.get(key)
        if rc is None:
            rc = self._rounds[key] = RoundComm(
                plane=plane, epoch=key[1], phase=phase, round_index=round_index
            )
        pair = rc.pairs.get((src, dst))
        if pair is None:
            pair = rc.pairs[(src, dst)] = CommTotals()
        ot = self._op_totals.get((plane, op))
        if ot is None:
            ot = self._op_totals[(plane, op)] = CommTotals()
        # Inlined CommTotals.add ×3 — this is the ledger's hottest line
        # (one call per host pair per exchange).
        for t in (rc.totals, pair, ot):
            t.messages += 1
            t.values += values
            t.words += words
            t.payload_bytes += payload_bytes
        if (
            plane == PLANE_CONGEST
            and self.bound_words is not None
            and words > self.bound_words
        ):
            v = BoundViolation(
                round_index=round_index,
                src=src,
                dst=dst,
                words=words,
                bound_words=self.bound_words,
            )
            self.violations.append(v)
            return v
        return None

    def record_pair_message(
        self, rs: Any, src: int, dst: int, values: int, payload_bytes: int, op: str
    ) -> None:
        """Gluon entry point: one aggregated host-pair message.

        ``rs`` is the open :class:`~repro.engine.stats.RoundStats` (typed
        loosely so this module keeps no engine import); the byte size is
        the exact figure the substrate charged to it, so ledger totals
        reconcile with ``RoundStats.bytes_out``/``bytes_in`` by
        construction.  Replayed rounds land under ``"recovery"``, matching
        the manifest's phase attribution.
        """
        self.record(
            PLANE_GLUON,
            rs.effective_phase,
            rs.round_index,
            src,
            dst,
            values=values,
            words=-(-payload_bytes // WORD_BYTES),
            payload_bytes=payload_bytes,
            op=op,
        )

    # -- queries ---------------------------------------------------------------

    def rounds(self, plane: str | None = None) -> list[RoundComm]:
        """Recorded rounds in execution order, optionally one plane's."""
        return [
            rc
            for rc in self._rounds.values()
            if plane is None or rc.plane == plane
        ]

    def totals(self, plane: str | None = None) -> CommTotals:
        """Whole-ledger (or one plane's) aggregate counters."""
        out = CommTotals()
        for rc in self.rounds(plane):
            out.merge(rc.totals)
        return out

    def op_totals(self, plane: str) -> dict[str, CommTotals]:
        """Aggregates per operation ("reduce"/"broadcast"/...), sorted."""
        return {
            op: t
            for (p, op), t in sorted(self._op_totals.items())
            if p == plane
        }

    def phase_totals(self, plane: str) -> dict[str, CommTotals]:
        """Aggregates per phase, in first-execution order."""
        out: dict[str, CommTotals] = {}
        for rc in self.rounds(plane):
            out.setdefault(rc.phase, CommTotals()).merge(rc.totals)
        return out

    def pair_totals(self, plane: str) -> dict[tuple[int, int], CommTotals]:
        """Aggregates per (src, dst) channel across all rounds, sorted."""
        out: dict[tuple[int, int], CommTotals] = {}
        for rc in self.rounds(plane):
            for pair, t in rc.pairs.items():
                out.setdefault(pair, CommTotals()).merge(t)
        return dict(sorted(out.items()))

    def top_channels(
        self, plane: str, k: int = 10
    ) -> list[tuple[tuple[int, int], CommTotals]]:
        """The ``k`` hottest channels by payload bytes (ties by pair id)."""
        return sorted(
            self.pair_totals(plane).items(),
            key=lambda it: (-it[1].payload_bytes, it[0]),
        )[:k]

    def per_host_bytes(self, num_hosts: int) -> tuple[list[int], list[int]]:
        """Gluon bytes leaving / arriving at each host, summed over rounds."""
        out = [0] * num_hosts
        inn = [0] * num_hosts
        for (src, dst), t in self.pair_totals(PLANE_GLUON).items():
            out[src] += t.payload_bytes
            inn[dst] += t.payload_bytes
        return out, inn

    def host_matrix(self, num_hosts: int) -> list[list[int]]:
        """Gluon host×host payload bytes: ``matrix[src][dst]``."""
        m = [[0] * num_hosts for _ in range(num_hosts)]
        for (src, dst), t in self.pair_totals(PLANE_GLUON).items():
            m[src][dst] += t.payload_bytes
        return m

    def max_channel_words(self) -> tuple[int, BoundViolation | None]:
        """Largest per-channel word count in any CONGEST round.

        Returns ``(words, where)`` with ``where`` describing the maximal
        channel (reusing the violation record shape; it need not be an
        actual violation), or ``(0, None)`` when nothing was recorded.
        """
        best = 0
        where: BoundViolation | None = None
        for rc in self.rounds(PLANE_CONGEST):
            for (src, dst), t in sorted(rc.pairs.items()):
                if t.words > best:
                    best = t.words
                    where = BoundViolation(
                        round_index=rc.round_index,
                        src=src,
                        dst=dst,
                        words=t.words,
                        bound_words=self.bound_words or 0,
                    )
        return best, where

    def max_round_messages(self, plane: str) -> int:
        """Largest per-round message count on one plane."""
        return max((rc.totals.messages for rc in self.rounds(plane)), default=0)

    # -- export ----------------------------------------------------------------

    def per_round(self, plane: str | None = None) -> list[dict[str, Any]]:
        """Per-round rows (execution order) for the CLI's round breakdown."""
        return [
            {
                "plane": rc.plane,
                "run": rc.epoch,
                "phase": rc.phase,
                "round": rc.round_index,
                "channels": len(rc.pairs),
                **rc.totals.to_dict(),
            }
            for rc in self.rounds(plane)
        ]

    def summary(self, top: int = 5) -> dict[str, Any]:
        """The deterministic JSON-able digest persisted into manifests and
        ``BENCH_<sha>.json`` snapshots (sorted/ordered throughout)."""
        planes: dict[str, Any] = {}
        for plane in (PLANE_GLUON, PLANE_CONGEST):
            rounds = self.rounds(plane)
            if not rounds:
                continue
            doc: dict[str, Any] = {
                "rounds": len(rounds),
                **self.totals(plane).to_dict(),
                "by_phase": {
                    ph: t.to_dict() for ph, t in self.phase_totals(plane).items()
                },
                "by_op": {
                    op: t.to_dict() for op, t in self.op_totals(plane).items()
                },
                "top_channels": [
                    {"src": src, "dst": dst, **t.to_dict()}
                    for (src, dst), t in self.top_channels(plane, top)
                ],
            }
            if plane == PLANE_CONGEST:
                words, where = self.max_channel_words()
                doc["max_channel_words"] = words
                doc["max_channel"] = None if where is None else where.to_dict()
                doc["bound_words"] = self.bound_words
                doc["violations"] = [v.to_dict() for v in self.violations]
            planes[plane] = doc
        return {"schema": COMM_SCHEMA_VERSION, "planes": planes}

    def bench_counts(self) -> dict[str, int]:
        """The flat deterministic counts ``repro bench --compare`` gates on."""
        ops = self.op_totals(PLANE_GLUON)
        totals = self.totals(PLANE_GLUON)
        return {
            "messages": totals.messages,
            "values": totals.values,
            "payload_bytes": totals.payload_bytes,
            "reduce_bytes": ops.get("reduce", CommTotals()).payload_bytes,
            "broadcast_bytes": ops.get("broadcast", CommTotals()).payload_bytes,
        }
