"""Table 2 reproduction: execution time per source at the best-performing
host count, for ABBC / MFBC / SBBC / MRBC.

Paper shapes to reproduce:

- ABBC wins on road networks (asynchronous, no barrier cost) but runs out
  of memory on the largest single-host input and loses elsewhere;
- MFBC loses to both SBBC and MRBC (MRBC 3.0× faster on average);
- SBBC wins on trivial-diameter graphs (estimated diameter ≤ 25);
- MRBC wins on non-trivial-diameter graphs, especially web-crawls
  (2.1× over SBBC on the paper's crawls at 256 hosts).

ABBC and MFBC are evaluated on the small inputs only, exactly as in the
paper (§5.1: MFBC does not scale to the large graphs; ABBC is
shared-memory only).
"""

import math

import pytest

from repro.baselines.abbc import abbc, abbc_simulated_time
from repro.graph.suite import SUITE, load_suite_graph, suite_names

from conftest import (
    COLLECTOR,
    LARGE_HOSTS,
    SCALING_HOSTS,
    SMALL_HOSTS,
    run_mfbc,
    run_mrbc,
    run_sbbc,
    simulated,
    sources_for,
)

#: Single-host memory ceiling (words) for the ABBC OOM model: large enough
#: for every small input except the friendster stand-in (the paper's ABBC
#: similarly OOMs on its biggest shared-memory inputs).
ABBC_MEMORY_LIMIT = 150_000

HEADERS = ["graph", "ABBC (s/src)", "MFBC (s/src)", "SBBC (s/src)", "MRBC (s/src)", "winner"]

_best: dict[tuple[str, str], float] = {}


def _host_candidates(name: str) -> tuple[int, ...]:
    return (1, SMALL_HOSTS) if SUITE[name].size_class == "small" else SCALING_HOSTS


def _time_per_source(result, H: int, n_src: int) -> float:
    return simulated(result.run, H).total / n_src


def _best_time(algo: str, name: str) -> float:
    key = (algo, name)
    if key not in _best:
        n_src = sources_for(name).size
        times = []
        for H in _host_candidates(name):
            if algo == "sbbc":
                times.append(_time_per_source(run_sbbc(name, H), H, n_src))
            else:
                times.append(_time_per_source(run_mrbc(name, H), H, n_src))
        _best[key] = min(times)
    return _best[key]


@pytest.mark.parametrize("name", suite_names("small"))
def test_table2_small(name, benchmark):
    n_src = sources_for(name).size
    g = load_suite_graph(name)

    def compute():
        ab = abbc(g, sources=sources_for(name), memory_limit_words=ABBC_MEMORY_LIMIT)
        t_ab = abbc_simulated_time(ab, g) / n_src
        mf = run_mfbc(name, SMALL_HOSTS)
        t_mf = _time_per_source(mf, SMALL_HOSTS, n_src)
        return t_ab, t_mf

    t_ab, t_mf = benchmark.pedantic(compute, rounds=1, iterations=1)
    t_sb = _best_time("sbbc", name)
    t_mr = _best_time("mrbc", name)

    named = {"ABBC": t_ab, "MFBC": t_mf, "SBBC": t_sb, "MRBC": t_mr}
    winner = min(named, key=lambda k: named[k])

    if name == "road-europe":
        # Paper: ABBC substantially outperforms all BSP algorithms on
        # road networks.
        assert winner == "ABBC"
    if SUITE[name].low_diameter:
        # Paper: SBBC beats MRBC on trivial-diameter inputs.
        assert t_sb < t_mr, name
    # MFBC never wins (paper: MRBC is 3.0x faster than MFBC on average).
    assert winner != "MFBC"

    def fmt(t: float) -> str:
        return "OOM" if math.isinf(t) else f"{t:.5f}"

    COLLECTOR.add(
        "Table 2: execution time per source (best host count)",
        HEADERS,
        [name, fmt(t_ab), fmt(t_mf), fmt(t_sb), fmt(t_mr), winner],
    )


@pytest.mark.parametrize("name", suite_names("large"))
def test_table2_large(name, benchmark):
    t_sb = benchmark.pedantic(
        lambda: _best_time("sbbc", name), rounds=1, iterations=1
    )
    t_mr = _best_time("mrbc", name)
    # Paper: MRBC is faster on all three large graphs (non-trivial
    # diameter or equal), except kron30 where SBBC wins (diameter 9).
    if not SUITE[name].low_diameter:
        assert t_mr < t_sb, name
    winner = "MRBC" if t_mr < t_sb else "SBBC"
    COLLECTOR.add(
        "Table 2: execution time per source (best host count)",
        HEADERS,
        [name, "-", "-", f"{t_sb:.5f}", f"{t_mr:.5f}", winner],
    )


def test_table2_webcrawl_speedup(benchmark):
    """Paper: MRBC is 2.1× faster than SBBC for real-world web-crawls at
    scale.  Our gsh15/clueweb12 stand-ins must show ≥ 1.5× at the scaled
    'at scale' host count."""
    from repro.analysis.reporting import geometric_mean

    def compute():
        ratios = []
        for name in ("gsh15", "clueweb12"):
            n_src = sources_for(name).size
            t_sb = _time_per_source(run_sbbc(name, LARGE_HOSTS), LARGE_HOSTS, n_src)
            t_mr = _time_per_source(run_mrbc(name, LARGE_HOSTS), LARGE_HOSTS, n_src)
            ratios.append(t_sb / t_mr)
        return geometric_mean(ratios)

    speedup = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert speedup > 1.5
    COLLECTOR.add(
        "Table 2: execution time per source (best host count)",
        HEADERS,
        ["web-crawl speedup", "", "", "", "", f"MRBC {speedup:.1f}x vs SBBC"],
    )
