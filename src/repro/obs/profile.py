"""Opt-in phase-scoped profiling: cProfile hotspots and tracemalloc peaks.

A :class:`PhaseProfiler` hooks into the span tracer (see
:meth:`repro.obs.spans.SpanTracer.add_hooks`) and profiles the code that
runs inside each *outermost* phase span: CPU via a per-phase
:class:`cProfile.Profile` (top-N functions by cumulative time), memory
via :mod:`tracemalloc` (peak traced bytes and top allocation sites per
phase).  Each phase closes with one ``profile`` event carrying the
digest; ``repro profile`` renders them.

Strictly opt-in: a profiler is only constructed when a telemetry session
is created with ``profile=...`` *and* a recording sink — with the default
:class:`~repro.obs.sinks.NullSink` no profiler exists, no tracemalloc
tracing is started, and the engines' hot paths are untouched.  cProfile
cannot nest, so when phase spans nest only the outermost one is profiled.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Callable

from repro.obs.events import KIND_PROFILE
from repro.obs.spans import KIND_PHASE, Span

#: Accepted values for the ``profile=`` session argument.
PROFILE_MODES = ("cpu", "memory", "all")


def _short_path(path: str) -> str:
    """Last two path components — enough to identify a repro module."""
    parts = path.replace(os.sep, "/").split("/")
    return "/".join(parts[-2:]) if len(parts) > 1 else path


class PhaseProfiler:
    """Profiles outermost phase spans and emits one ``profile`` event each.

    Parameters
    ----------
    emit:
        ``Telemetry.emit``-shaped callable the digests are sent through.
    mode:
        ``"cpu"`` (cProfile), ``"memory"`` (tracemalloc), or ``"all"``.
    top_n:
        Hotspots / allocation sites kept per phase.
    """

    def __init__(
        self,
        emit: Callable[..., None],
        mode: str = "cpu",
        top_n: int = 10,
    ) -> None:
        if mode not in PROFILE_MODES:
            raise ValueError(
                f"unknown profile mode {mode!r} (options: {', '.join(PROFILE_MODES)})"
            )
        self._emit = emit
        self.mode = mode
        self.cpu = mode in ("cpu", "all")
        self.memory = mode in ("memory", "all")
        self.top_n = top_n
        self._active_span_id: int | None = None
        self._prof: cProfile.Profile | None = None
        self._mem_before: Any = None
        self._mem_started_here = False
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._mem_started_here = True

    # -- tracer hooks ----------------------------------------------------------

    def on_span_start(self, span: Span) -> None:
        if span.kind != KIND_PHASE or self._active_span_id is not None:
            return
        self._active_span_id = span.span_id
        if self.memory:
            import tracemalloc

            tracemalloc.reset_peak()
            self._mem_before = tracemalloc.take_snapshot()
        if self.cpu:
            self._prof = cProfile.Profile()
            self._prof.enable()

    def on_span_end(self, span: Span) -> None:
        if span.span_id != self._active_span_id:
            return
        self._active_span_id = None
        phase = span.attrs.get("phase", span.name)
        attrs: dict[str, Any] = {
            "parent_id": span.span_id,
            "phase": phase,
            "wall_s": span.wall_s,
        }
        if self.cpu and self._prof is not None:
            self._prof.disable()
            attrs["hotspots"] = self._hotspots(self._prof)
            self._prof = None
        if self.memory:
            import tracemalloc

            current, peak = tracemalloc.get_traced_memory()
            top = []
            if self._mem_before is not None:
                diffs = tracemalloc.take_snapshot().compare_to(
                    self._mem_before, "lineno"
                )
                for d in diffs:
                    if len(top) >= self.top_n:
                        break
                    frame = d.traceback[0]
                    # Skip the profiling machinery's own allocations.
                    if any(
                        s in frame.filename
                        for s in ("tracemalloc.py", "cProfile.py", "pstats.py")
                    ):
                        continue
                    top.append(
                        {
                            "location": f"{_short_path(frame.filename)}:{frame.lineno}",
                            "size_diff_bytes": d.size_diff,
                            "count_diff": d.count_diff,
                        }
                    )
                self._mem_before = None
            attrs["memory"] = {
                "peak_bytes": peak,
                "current_bytes": current,
                "top_allocations": top,
            }
        span.set(profiled=True)
        self._emit(KIND_PROFILE, f"profile:{phase}", **attrs)

    # -- digests ---------------------------------------------------------------

    def _hotspots(self, prof: cProfile.Profile) -> list[dict[str, Any]]:
        """Top-N functions by cumulative time, profiler frames excluded."""
        stats = pstats.Stats(prof)
        rows = []
        for (path, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
            if "_lsprof" in func or "_lsprof" in path:
                continue
            rows.append(
                {
                    "function": func,
                    "location": f"{_short_path(path)}:{line}" if line else path,
                    "ncalls": nc,
                    "tottime_s": round(tt, 6),
                    "cumtime_s": round(ct, 6),
                }
            )
        rows.sort(key=lambda r: r["cumtime_s"], reverse=True)
        return rows[: self.top_n]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it (idempotent)."""
        if self._prof is not None:  # phase span leaked; disable defensively
            self._prof.disable()
            self._prof = None
        if self._mem_started_here:
            import tracemalloc

            if tracemalloc.is_tracing():
                tracemalloc.stop()
            self._mem_started_here = False


def aggregate_profile_events(events: "list[Any]") -> dict[str, dict[str, Any]]:
    """Merge ``profile`` events into one digest per phase name.

    Engines open the same phase many times (one ``forward`` span per
    source batch), so a recorded run carries many profile events per
    phase.  This merges them: hotspot rows summed by ``(function,
    location)`` and re-ranked by cumulative time, memory peaks maxed,
    allocation deltas summed by site.  Keys are phase names in
    first-appearance order (dicts preserve insertion order).
    """
    phases: dict[str, dict[str, Any]] = {}
    for e in events:
        if e.kind != KIND_PROFILE:
            continue
        a = e.attrs
        phase = str(a.get("phase", "?"))
        agg = phases.setdefault(
            phase,
            {"phase": phase, "spans": 0, "wall_s": 0.0,
             "hotspots": {}, "memory": None},
        )
        agg["spans"] += 1
        agg["wall_s"] += a.get("wall_s") or 0.0
        for row in a.get("hotspots", []):
            key = (row["function"], row["location"])
            tot = agg["hotspots"].setdefault(
                key,
                {"function": row["function"], "location": row["location"],
                 "ncalls": 0, "tottime_s": 0.0, "cumtime_s": 0.0},
            )
            tot["ncalls"] += row["ncalls"]
            tot["tottime_s"] += row["tottime_s"]
            tot["cumtime_s"] += row["cumtime_s"]
        mem = a.get("memory")
        if mem is not None:
            m = agg["memory"]
            if m is None:
                m = agg["memory"] = {"peak_bytes": 0, "allocations": {}}
            m["peak_bytes"] = max(m["peak_bytes"], mem.get("peak_bytes", 0))
            for site in mem.get("top_allocations", []):
                s = m["allocations"].setdefault(
                    site["location"], {"location": site["location"],
                                       "size_diff_bytes": 0, "count_diff": 0},
                )
                s["size_diff_bytes"] += site["size_diff_bytes"]
                s["count_diff"] += site["count_diff"]
    out: dict[str, dict[str, Any]] = {}
    for phase, agg in phases.items():
        hotspots = sorted(
            agg["hotspots"].values(), key=lambda r: r["cumtime_s"], reverse=True
        )
        mem = agg["memory"]
        if mem is not None:
            mem = {
                "peak_bytes": mem["peak_bytes"],
                "allocations": sorted(
                    mem["allocations"].values(),
                    key=lambda s: abs(s["size_diff_bytes"]),
                    reverse=True,
                ),
            }
        out[phase] = {
            "phase": phase,
            "spans": agg["spans"],
            "wall_s": agg["wall_s"],
            "hotspots": hotspots,
            "memory": mem,
        }
    return out
