"""The CONGEST round loop: scheduling, delivery, accounting, termination.

See :mod:`repro.congest` for the model semantics.  The simulator is
deterministic: vertices compute their sends in increasing vertex order and
deliveries are processed in (sender, arrival) order, but correct CONGEST
algorithms — including all of the paper's — may not depend on any such
order within a round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro import obs
from repro.congest.messages import MAX_COMBINED_VALUES, MessageStats
from repro.congest.program import BROADCAST, VertexContext, VertexProgram
from repro.graph.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.context import ResilienceContext


class ChannelCapacityError(RuntimeError):
    """A vertex tried to exceed the per-channel combining cap in one round."""


class NotAChannelError(RuntimeError):
    """A vertex tried to send to a non-neighbor."""


@dataclass
class NetworkRunResult:
    """Outcome of one network run."""

    rounds_executed: int
    last_send_round: int
    terminated_by: str  # "stopped" | "quiescence" | "round_limit"
    stats: MessageStats = field(default_factory=MessageStats)
    #: Messages sent per round (index 0 = round 1).
    sends_per_round: list[int] = field(default_factory=list)


class CongestNetwork:
    """A network of vertex programs over the undirected version of ``graph``.

    Parameters
    ----------
    graph:
        The directed input graph; channels follow ``UG``.
    program_factory:
        Called once per vertex id to create its :class:`VertexProgram`.
    expose_n:
        If True, programs receive the true vertex count in their context
        (the paper's "n is known" case); otherwise ``num_vertices_hint``
        is ``None`` and the algorithm must compute n itself.
    resilience:
        Optional :class:`~repro.resilience.context.ResilienceContext`;
        when given, every channel's per-round payload list passes through
        its guard before delivery (message-scope faults only — the
        CONGEST model has no host scope, so stall/crash specs are inert
        here).
    """

    def __init__(
        self,
        graph: DiGraph,
        program_factory: Callable[[int], VertexProgram],
        expose_n: bool = True,
        resilience: "ResilienceContext | None" = None,
    ) -> None:
        self.graph = graph
        self.resilience = resilience
        n = graph.num_vertices
        ug = graph.to_undirected()
        self.channel_neighbors: list[np.ndarray] = [
            ug.out_neighbors(v) for v in range(n)
        ]
        self._channel_sets: list[set[int]] = [
            set(nbrs.tolist()) for nbrs in self.channel_neighbors
        ]
        self.programs: list[VertexProgram] = []
        for v in range(n):
            prog = program_factory(v)
            prog.setup(
                VertexContext(
                    vid=v,
                    num_vertices_hint=n if expose_n else None,
                    out_neighbors=graph.out_neighbors(v),
                    in_neighbors=graph.in_neighbors(v),
                    channel_neighbors=self.channel_neighbors[v],
                )
            )
            self.programs.append(prog)

    # -- round loop ----------------------------------------------------------

    def run(
        self,
        max_rounds: int,
        detect_quiescence: bool = False,
        detect_stopped: bool = False,
    ) -> NetworkRunResult:
        """Execute rounds ``1 .. max_rounds`` (or fewer on termination).

        ``detect_quiescence`` enables Lemma 8's global termination detector:
        stop after a round with no sends and no vertex reporting pending
        work.  ``detect_stopped`` halts once every program reports
        :meth:`~repro.congest.program.VertexProgram.is_stopped` (Algorithm 4
        semantics).
        """
        result = NetworkRunResult(rounds_executed=0, last_send_round=0, terminated_by="round_limit")
        programs = self.programs
        tele = obs.current()
        with tele.span(
            "congest.run", kind="run", vertices=len(programs)
        ) as sp:
            self._run_rounds(max_rounds, detect_quiescence, detect_stopped,
                             result, tele)
            if sp is not None:
                sp.set(
                    rounds=result.rounds_executed,
                    last_send_round=result.last_send_round,
                    terminated_by=result.terminated_by,
                    messages=result.stats.messages,
                )
        return result

    def _run_rounds(
        self,
        max_rounds: int,
        detect_quiescence: bool,
        detect_stopped: bool,
        result: NetworkRunResult,
        tele,
    ) -> None:
        programs = self.programs
        for rnd in range(1, max_rounds + 1):
            # -- send phase: collect and validate this round's messages.
            # outbox maps (sender, target) -> list of payloads (combined).
            outbox: dict[tuple[int, int], list[tuple[Any, ...]]] = {}
            any_send = False
            for v, prog in enumerate(programs):
                if prog.is_stopped():
                    continue
                sends = prog.compute_sends(rnd)
                if not sends:
                    continue
                for target, payload in sends:
                    if target == BROADCAST:
                        targets = self.channel_neighbors[v]
                    else:
                        if target not in self._channel_sets[v]:
                            raise NotAChannelError(
                                f"vertex {v} has no channel to {target}"
                            )
                        targets = (target,)
                    for t in targets:
                        key = (v, int(t))
                        bucket = outbox.setdefault(key, [])
                        if len(bucket) >= MAX_COMBINED_VALUES:
                            raise ChannelCapacityError(
                                f"vertex {v} exceeded channel capacity to {t} "
                                f"in round {rnd}"
                            )
                        bucket.append(payload)
                        any_send = True

            result.sends_per_round.append(len(outbox))
            if any_send:
                result.last_send_round = rnd
                for payloads in outbox.values():
                    result.stats.record_channel(payloads)
            if tele.enabled:
                tele.emit(
                    "round",
                    "round:congest",
                    round=rnd,
                    phase="congest",
                    channels=len(outbox),
                    values=sum(len(p) for p in outbox.values()),
                )

            # -- delivery phase: receivers process during this round.
            for (sender, target), payloads in outbox.items():
                if self.resilience is not None:
                    payloads = self.resilience.guard_congest(
                        rnd, sender, target, payloads
                    )
                handler = programs[target].handle_message
                for payload in payloads:
                    handler(rnd, sender, payload)

            for prog in programs:
                prog.end_of_round(rnd)

            result.rounds_executed = rnd

            if detect_stopped and all(p.is_stopped() for p in programs):
                result.terminated_by = "stopped"
                break
            if (
                detect_quiescence
                and not any_send
                and not any(p.has_pending_work(rnd) for p in programs)
            ):
                result.terminated_by = "quiescence"
                break
        return result
