"""Tests for the sanity digest, CSV export, and undirected BC API."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.export import export_tables, read_csv, write_csv
from repro.analysis.sanity import bc_digest, structural_checks
from repro.baselines.brandes import brandes_bc
from repro.core.undirected import undirected_bc
from repro.graph import generators as gen
from repro.graph.builders import from_edges, to_networkx


class TestSanityDigest:
    def test_digest_values(self):
        d = bc_digest(np.array([0.0, 3.0, 1.0, 0.0]))
        assert d.max_bc == 3.0
        assert d.argmax == 1
        assert d.sum_bc == 4.0
        assert d.nonzero == 2
        assert d.mean_nonzero == 2.0

    def test_digest_is_run_invariant(self, er_graph):
        """Any two correct algorithms produce the same digest."""
        from repro.core.mrbc import mrbc_engine

        srcs = [0, 5, 9]
        a = bc_digest(brandes_bc(er_graph, sources=srcs))
        b = bc_digest(
            mrbc_engine(er_graph, sources=srcs, batch_size=3, num_hosts=4).bc
        )
        assert a.matches(b)

    def test_matches_detects_difference(self):
        a = bc_digest(np.array([1.0, 2.0]))
        b = bc_digest(np.array([1.0, 3.0]))
        assert not a.matches(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            bc_digest(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            bc_digest(np.array([]))

    def test_row_output(self):
        row = bc_digest(np.array([1.0])).as_row()
        assert "max BC" in row

    def test_structural_checks_pass_on_real_bc(self, powerlaw_graph):
        bc = brandes_bc(powerlaw_graph)
        assert structural_checks(powerlaw_graph, bc) == []

    def test_structural_checks_catch_violations(self):
        g = from_edges(4, [(0, 1), (1, 2)])  # 2 is a sink, 3 isolated
        bad = np.array([0.0, 1.0, 5.0, 0.0])  # nonzero at the sink
        problems = structural_checks(g, bad)
        assert any("outgoing" in p for p in problems)
        assert structural_checks(g, np.array([0.0, -1.0, 0.0, 0.0]))
        assert structural_checks(g, np.zeros(3))  # shape mismatch reported

    def test_bound_check(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        too_big = np.array([0.0, 1e9, 0.0])
        assert any("bound" in p for p in structural_checks(g, too_big))


class TestCSVExport:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(p, ["a", "b"], [[1, "x"], [2, "y"]])
        headers, rows = read_csv(p)
        assert headers == ["a", "b"]
        assert rows == [["1", "x"], ["2", "y"]]

    def test_width_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "t.csv", ["a"], [[1, 2]])

    def test_export_tables_slugs(self, tmp_path):
        paths = export_tables(
            tmp_path,
            {"Table 1: rounds & imbalance": [[1]], "Figure 2 (breakdown)": [[2]]},
            {"Table 1: rounds & imbalance": ["x"], "Figure 2 (breakdown)": ["y"]},
        )
        names = sorted(p.split("/")[-1] for p in paths)
        assert names == ["figure_2_breakdown.csv", "table_1_rounds_imbalance.csv"]

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.csv"
        p.write_text("")
        assert read_csv(p) == ([], [])


class TestUndirectedBC:
    @pytest.mark.parametrize("make", [
        lambda: gen.grid_road(5, 5, seed=91),
        lambda: gen.small_world(30, k=2, rewire_prob=0.1, seed=92),
        lambda: gen.path_graph(12),
    ])
    def test_matches_networkx_undirected(self, make):
        g = make()
        ours = undirected_bc(g, method="engine", num_hosts=2, batch_size=8)
        nxg = to_networkx(g).to_undirected()
        ref = nx.betweenness_centrality(nxg, normalized=False)
        refv = np.array([ref[v] for v in range(g.num_vertices)])
        assert np.allclose(ours, refv)

    def test_congest_and_engine_agree(self, er_graph):
        a = undirected_bc(er_graph, method="congest")
        b = undirected_bc(er_graph, method="engine", num_hosts=4, batch_size=16)
        assert np.allclose(a, b)

    def test_sampled_sources_consistent(self, er_graph):
        srcs = [0, 7, 13]
        a = undirected_bc(er_graph, sources=srcs, method="congest")
        b = undirected_bc(
            er_graph, sources=srcs, method="engine", num_hosts=2, batch_size=3
        )
        assert np.allclose(a, b)

    def test_unknown_method_rejected(self, er_graph):
        with pytest.raises(ValueError):
            undirected_bc(er_graph, method="quantum")

    def test_directed_input_symmetrized(self):
        """A one-way path treated as undirected has interior BC like the
        bidirectional path."""
        one_way = gen.path_graph(6, bidirectional=False)
        both = gen.path_graph(6, bidirectional=True)
        a = undirected_bc(one_way, method="congest")
        b = undirected_bc(both, method="congest")
        assert np.allclose(a, b)
