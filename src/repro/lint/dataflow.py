"""Whole-program analysis: call graph, effect propagation, RL5xx/RL6xx.

This is the interprocedural layer on top of the per-module effect
summaries (:mod:`repro.lint.effects`).  It builds a :class:`Program` —
a function table plus a resolved call graph over every analyzed module
— and uses reachability over that graph for the checks a per-file AST
pass cannot express:

- **RL503** (vectorization-readiness): every writer of per-source state
  must be reachable from a driver entry point, a CONGEST vertex-program
  handler, a runtime seam, or a step closure handed to one.  An orphan
  writer is a mutation path the columnar ``GluonPlane`` of ROADMAP
  item 1 would not know to marshal.
- **RL601** (parallel-safety): module-level mutable state mutated inside
  the *round cone* — the functions reachable from step closures, vertex
  handlers, and ``CongestPlane.exchange_round`` — races the moment
  ROADMAP item 2 swaps the in-process host loop for real workers.
- the **interprocedural RL404 refinement**: a lexically-swallowed
  resilience error is rescinded when the handler body calls a helper
  that transitively re-raises or routes into the recovery machinery.

The same graph feeds the per-driver **vectorization-readiness report**
(:func:`readiness_report`) and the ``repro lint --effects`` explain mode
(:func:`explain_effects`), both keyed by the call chains behind each
verdict.

Call resolution is deliberately over-approximate (imports, same-module
names, unique-or-polymorphic method names, constructor calls, and the
implicit enclosing-function → nested-def edge): for reachability-based
rules, extra edges mean *fewer* false positives.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint import model
from repro.lint.effects import (
    CallSite,
    FunctionEffects,
    ModuleEffects,
    infer_effects,
)
from repro.lint.findings import SEVERITY_ERROR, Finding
from repro.lint.rules import ModuleInfo, Rule, register, run_rules

#: Method names too generic to resolve by name across classes (dict/list
#: protocol and similar) — resolving ``x.get()`` to every ``get`` in the
#: program would connect everything to everything.  They still resolve
#: when the receiver is ``self`` and the caller's own class defines them.
_GENERIC_METHODS = (
    model.MUTATING_METHODS
    | model.ALIAS_SAFE_CALLS
    | {
        "get",
        "items",
        "keys",
        "values",
        "tolist",
        "close",
        "join",
        "split",
        "format",
        "read_text",
        "write_text",
        "exists",
        "is_file",
    }
)


@dataclass
class Program:
    """The function table and resolved call graph of one analysis run."""

    modules: dict[str, ModuleEffects] = field(default_factory=dict)
    #: "relpath::qualname" -> (ModuleEffects, FunctionEffects)
    functions: dict[str, tuple[ModuleEffects, FunctionEffects]] = field(
        default_factory=dict
    )
    edges: dict[str, set[str]] = field(default_factory=dict)
    redges: dict[str, set[str]] = field(default_factory=dict)
    _method_index: dict[str, list[str]] = field(default_factory=dict)
    _class_init: dict[str, list[str]] = field(default_factory=dict)
    _module_by_dotted: dict[str, str] = field(default_factory=dict)

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, modules: dict[str, ModuleEffects]) -> "Program":
        prog = cls(modules=dict(modules))
        for rel, me in modules.items():
            if me.module:
                prog._module_by_dotted[me.module] = rel
            for qual, fe in me.functions.items():
                key = f"{rel}::{qual}"
                prog.functions[key] = (me, fe)
                parts = qual.split(".")
                if len(parts) == 2 and parts[0] in me.classes:
                    prog._method_index.setdefault(parts[1], []).append(key)
                    if parts[1] == "__init__":
                        prog._class_init.setdefault(parts[0], []).append(key)
        for key, (me, fe) in prog.functions.items():
            out: set[str] = set()
            for nd in fe.nested_defs:  # definition edge: enclosing -> nested
                nk = f"{me.relpath}::{nd}"
                if nk in prog.functions:
                    out.add(nk)
            for call in fe.calls:
                out.update(prog._resolve(me, fe, call))
            # Seam edge: a closure handed to a runtime seam call runs on
            # this function's behalf — the driver's cone must include it.
            for cq in fe.seam_closures:
                ck = f"{me.relpath}::{cq}"
                if ck in prog.functions:
                    out.add(ck)
            out.discard(key)
            prog.edges[key] = out
            for tgt in out:
                prog.redges.setdefault(tgt, set()).add(key)
        return prog

    def _resolve_dotted(self, dotted: str) -> list[str]:
        """Resolve an absolute dotted name to function keys."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            rel = self._module_by_dotted.get(".".join(parts[:i]))
            if rel is None:
                continue
            me = self.modules[rel]
            rest = parts[i:]
            key = f"{rel}::{'.'.join(rest)}"
            if key in self.functions:
                return [key]
            if len(rest) == 1 and rest[0] in me.classes:
                return list(self._class_init.get(rest[0], ()))
            return []
        return []

    def _resolve(self, me: ModuleEffects, fe: FunctionEffects, call: CallSite) -> list[str]:
        parts = [p for p in call.chain.split(".") if p]
        if not parts or parts[-1] == "()":
            return []
        term = parts[-1]
        rel = me.relpath

        if len(parts) == 1:
            name = parts[0]
            key = f"{rel}::{name}"
            if key in self.functions:
                return [key]
            if name in me.imports:
                return self._resolve_dotted(me.imports[name])
            if name in me.classes:
                return list(self._class_init.get(name, ()))
            # a visible nested def of an enclosing scope
            anc = fe.qualname
            while "." in anc:
                anc = anc.rsplit(".", 1)[0]
                nk = f"{rel}::{anc}.{name}"
                if nk in self.functions:
                    return [nk]
            if name in self._class_init:
                return list(self._class_init[name])
            return []

        # self.<method>: the caller's own class first
        if parts[0] == "self" and len(parts) == 2 and fe.class_name:
            own = f"{rel}::{fe.class_name}.{term}"
            if own in self.functions:
                return [own]

        # module-attribute call through an import: pkg.func(...)
        if parts[0] in me.imports:
            hit = self._resolve_dotted(
                ".".join([me.imports[parts[0]], *parts[1:]])
            )
            if hit:
                return hit

        if term in me.classes:
            return list(self._class_init.get(term, ()))
        if term in _GENERIC_METHODS:
            return []
        # polymorphic fallback: every class defining this method name
        return list(self._method_index.get(term, ()))

    # -- graph queries ---------------------------------------------------------

    def cone(self, roots: Iterable[str]) -> set[str]:
        """Roots plus everything transitively callable from them."""
        seen: set[str] = set()
        dq = deque(r for r in roots if r in self.functions)
        seen.update(dq)
        while dq:
            cur = dq.popleft()
            for nxt in self.edges.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    dq.append(nxt)
        return seen

    def chain(self, src: str, dst: str) -> list[str]:
        """Shortest call path ``src → ... → dst`` (inclusive), or []."""
        if src == dst:
            return [src]
        prev: dict[str, str] = {src: src}
        dq = deque([src])
        while dq:
            cur = dq.popleft()
            for nxt in self.edges.get(cur, ()):
                if nxt in prev:
                    continue
                prev[nxt] = cur
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    return list(reversed(path))
                dq.append(nxt)
        return []

    def drivers(self) -> list[tuple[str, str]]:
        """``(key, kind)`` of every driver entry point in the program."""
        out: list[tuple[str, str]] = []
        for key, (_me, fe) in self.functions.items():
            if "." in fe.qualname or fe.qualname.startswith("_"):
                continue  # entry points are public module-level functions
            if model.ENGINE_ENTRY_RE.match(fe.qualname):
                out.append((key, "gluon"))
            elif fe.qualname in model.CONGEST_DRIVER_NAMES:
                out.append((key, "congest"))
        return sorted(out)

    def handler_methods(self) -> set[str]:
        """Vertex-program handler methods (simulator-invoked roots)."""
        out: set[str] = set()
        for rel, me in self.modules.items():
            for cls in me.vertex_programs:
                for m in model.CONGEST_HANDLER_METHODS:
                    key = f"{rel}::{cls}.{m}"
                    if key in self.functions:
                        out.add(key)
        return out

    def seam_closures(self) -> set[str]:
        """Step/prepare/body closures handed to a runtime seam call."""
        out: set[str] = set()
        for _key, (me, fe) in self.functions.items():
            for cq in fe.seam_closures:
                ck = f"{me.relpath}::{cq}"
                if ck in self.functions:
                    out.add(ck)
        return out

    def round_roots(self) -> set[str]:
        """Code the runtime executes *inside* rounds: seam closures,
        vertex handlers, and the CONGEST exchange chokepoint."""
        roots = self.seam_closures() | self.handler_methods()
        for key, (_me, fe) in self.functions.items():
            if fe.qualname.split(".")[-1] == "exchange_round":
                roots.add(key)
        return roots

    def seam_roots(self) -> set[str]:
        """Every sanctioned execution root: drivers, round roots, and the
        runtime implementation itself."""
        roots = {key for key, _kind in self.drivers()}
        roots |= self.round_roots()
        for key, (me, _fe) in self.functions.items():
            if model.path_matches(me.relpath, model.RUNTIME_IMPL_PARTS):
                roots.add(key)
        return roots

    def transitively_raising(self) -> set[str]:
        """Functions that raise or route a fault, directly or via a callee."""
        flagged = {
            key
            for key, (_me, fe) in self.functions.items()
            if fe.raises or fe.routes
        }
        dq = deque(flagged)
        while dq:
            cur = dq.popleft()
            for caller in self.redges.get(cur, ()):
                if caller not in flagged:
                    flagged.add(caller)
                    dq.append(caller)
        return flagged

    def find(self, name: str) -> list[str]:
        """Keys whose qualname matches ``name`` (exact, suffix, or leaf)."""
        exact = [
            k for k, (_m, fe) in self.functions.items() if fe.qualname == name
        ]
        if exact:
            return sorted(exact)
        return sorted(
            k
            for k, (_m, fe) in self.functions.items()
            if fe.qualname.endswith("." + name)
            or fe.qualname.split(".")[-1] == name
        )


# -- program-scope rules -------------------------------------------------------


def run_program_rules(
    program: Program, enabled: Iterable[str] | None = None
) -> list[Finding]:
    """Run every ``scope="program"`` rule in the registry."""
    from repro.lint.rules import RULES

    out: list[Finding] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if rule.scope != "program":
            continue
        if enabled is not None and code not in enabled:
            continue
        out.extend(rule.check(rule, program))
    return out


def _finding(
    rule: Rule, me: ModuleEffects, line: int, message: str, symbol: str, chain: str = ""
) -> Finding:
    return Finding(
        code=rule.code,
        severity=rule.severity,
        path=me.relpath,
        line=line,
        col=1,
        message=message,
        symbol=symbol,
        chain=chain,
    )


def _short_chain(program: Program, path: list[str]) -> str:
    return " -> ".join(program.functions[k][1].qualname for k in path)


@register(
    "RL503",
    "off-seam-state-write",
    SEVERITY_ERROR,
    "per-source state written by a function unreachable from any driver, "
    "vertex-program handler, or runtime seam — a mutation path the "
    "vectorized plane would not marshal",
    scope="program",
)
def _rl503(rule: Rule, program: Program) -> Iterator[Finding]:
    reachable = program.cone(program.seam_roots())
    for key, (me, fe) in sorted(program.functions.items()):
        if not fe.state_writes or key in reachable:
            continue
        if model.is_test_path(me.relpath) or not model.path_matches(
            me.relpath, model.STATE_MODULE_PARTS
        ):
            continue
        attrs = sorted({a for a, _ln in fe.state_writes})
        line = min(ln for _a, ln in fe.state_writes)
        yield _finding(
            rule,
            me,
            line,
            f"'{fe.qualname}' writes per-source state "
            f"({', '.join('.' + a for a in attrs)}) but is reachable from "
            "no driver entry point, vertex-program handler, or runtime "
            "seam — an off-seam mutation path the columnar GluonPlane "
            "refactor (ROADMAP item 1) cannot see; route it through the "
            "plane API or delete it",
            symbol=fe.qualname,
        )


@register(
    "RL601",
    "global-mutation-in-round-cone",
    SEVERITY_ERROR,
    "module-level mutable state mutated by code reachable from the round "
    "loop — races under a real multi-worker backend",
    scope="program",
)
def _rl601(rule: Rule, program: Program) -> Iterator[Finding]:
    roots = program.round_roots()
    cone = program.cone(roots)
    for key in sorted(cone):
        me, fe = program.functions[key]
        if not fe.global_mutations or model.is_test_path(me.relpath):
            continue
        root_path: list[str] = []
        for r in sorted(roots):
            root_path = program.chain(r, key)
            if root_path:
                break
        chain = _short_chain(program, root_path)
        for name, how, line in fe.global_mutations:
            yield _finding(
                rule,
                me,
                line,
                f"'{fe.qualname}' mutates module-level '{name}' ({how}) and "
                "runs inside the round loop"
                + (f" (via {chain})" if chain else "")
                + " — per-process module state desynchronizes the moment "
                "the backend runs hosts in separate workers (ROADMAP "
                "item 2); thread it through host/runtime state instead",
                symbol=fe.qualname,
                chain=chain,
            )


# -- interprocedural RL404 refinement ------------------------------------------


def refine_findings(program: Program, findings: list[Finding]) -> list[Finding]:
    """Rescind lexical RL404 findings whose handler calls a helper that
    transitively re-raises or routes into the recovery machinery."""
    if not any(f.code == "RL404" for f in findings):
        return findings
    raising = program.transitively_raising()
    out: list[Finding] = []
    for f in findings:
        if f.code == "RL404" and _handler_routes_via_helper(program, f, raising):
            continue
        out.append(f)
    return out


def _handler_routes_via_helper(
    program: Program, finding: Finding, raising: set[str]
) -> bool:
    me = program.modules.get(finding.path)
    if me is None:
        return False
    fe = me.functions.get(finding.symbol)
    handlers = fe.handlers if fe is not None else []
    for handler in handlers:
        if handler.line != finding.line:
            continue
        for called in handler.calls:
            site = CallSite(chain=called, line=handler.line)
            if fe is not None:
                site = CallSite(chain=called, line=handler.line)
            for key in program._resolve(me, fe, site):
                if key in raising:
                    return True
    return False


# -- readiness report ----------------------------------------------------------


def readiness_report(program: Program, findings: list[Finding]) -> dict:
    """Per-driver ready/blocked verdicts for the two refactors.

    A driver is *vectorization-ready* when no active RL5xx finding lies
    in its call cone, and *parallel-safe* when no active RL6xx finding
    does.  This is the precondition gate for ROADMAP items 1 and 2.
    """
    by_key: dict[str, list[Finding]] = {}
    for f in findings:
        if f.symbol and (f.code.startswith("RL5") or f.code.startswith("RL6")):
            by_key.setdefault(f"{f.path}::{f.symbol}", []).append(f)

    report: dict[str, dict] = {}
    for key, kind in program.drivers():
        me, fe = program.functions[key]
        cone = program.cone([key])
        rl5: list[dict] = []
        rl6: list[dict] = []
        for fk in sorted(cone):
            for f in by_key.get(fk, ()):
                entry = dict(f.to_dict())
                entry["chain"] = _short_chain(program, program.chain(key, fk))
                (rl5 if f.code.startswith("RL5") else rl6).append(entry)
        report[fe.qualname] = {
            "path": me.relpath,
            "kind": kind,
            "cone_size": len(cone),
            "vectorization": {
                "verdict": "ready" if not rl5 else "blocked",
                "blockers": rl5,
            },
            "parallel_safety": {
                "verdict": "ready" if not rl6 else "blocked",
                "blockers": rl6,
            },
            # Not a dataflow verdict: records which drivers already ship
            # a columnar (plane="array") tier, so the report shows what
            # the readiness gate bought and what remains to port.
            "columnar": (
                "ported"
                if fe.qualname in model.COLUMNAR_PORTED_DRIVERS
                else "pending"
            ),
        }
    return {"drivers": report}


def render_readiness(report: dict, stream) -> None:
    """Text table for ``repro lint --readiness``."""
    drivers = report.get("drivers", {})
    if not drivers:
        print("readiness: no driver entry points in the analyzed set", file=stream)
        return
    width = max(len(n) for n in drivers)
    print("vectorization-readiness report (gate for ROADMAP items 1-2):", file=stream)
    for name in sorted(drivers):
        entry = drivers[name]
        vec = entry["vectorization"]
        par = entry["parallel_safety"]
        print(
            f"  {name:<{width}}  [{entry['kind']:<7}] "
            f"vectorize: {vec['verdict']:<7} "
            f"parallel: {par['verdict']:<7} "
            f"columnar: {entry.get('columnar', 'pending'):<7} "
            f"(cone: {entry['cone_size']} fns)",
            file=stream,
        )
        for blocker in vec["blockers"] + par["blockers"]:
            print(
                f"      blocked by {blocker['code']} at "
                f"{blocker['path']}:{blocker['line']}"
                + (f"  via {blocker['chain']}" if blocker.get("chain") else ""),
                file=stream,
            )


# -- explain mode --------------------------------------------------------------


def explain_effects(
    program: Program, name: str, findings: list[Finding] | None = None
) -> str | None:
    """The ``repro lint --effects <function>`` report: the inferred
    summary, the call neighborhood, and the finding chains through it."""
    keys = program.find(name)
    if not keys:
        return None
    lines: list[str] = []
    for key in keys:
        me, fe = program.functions[key]
        cone = program.cone([key])
        lines.append(f"{fe.qualname}  ({me.relpath}:{fe.line})")
        if fe.class_name:
            lines.append(f"  class:      {fe.class_name}")
        lines.append(
            "  purity:     "
            + ("pure (locally side-effect-free)" if fe.pure else "effectful")
        )
        reads = sorted({a for a, _ in fe.state_reads})
        writes = sorted({a for a, _ in fe.state_writes})
        if reads:
            lines.append(f"  state reads:  {', '.join('.' + a for a in reads)}")
        if writes:
            lines.append(f"  state writes: {', '.join('.' + a for a in writes)}")
        if fe.global_mutations:
            lines.append(
                "  global mutations: "
                + ", ".join(f"{n} ({how})" for n, how, _ in fe.global_mutations)
            )
        if fe.telemetry_writes:
            lines.append(
                "  telemetry writes: "
                + ", ".join(c for c, _ in fe.telemetry_writes)
            )
        if fe.sync_lines:
            lines.append(
                f"  synchronizes: {len(fe.sync_lines)} reduce/broadcast call(s)"
            )
        if fe.raises or fe.routes:
            how = [w for w, on in (("raises", fe.raises), ("routes", fe.routes)) if on]
            lines.append(f"  resilience:  {' + '.join(how)}")
        callees = sorted(
            program.functions[k][1].qualname for k in program.edges.get(key, ())
        )
        callers = sorted(
            program.functions[k][1].qualname for k in program.redges.get(key, ())
        )
        if callees:
            lines.append(f"  calls:       {', '.join(callees)}")
        if callers:
            lines.append(f"  called by:   {', '.join(callers)}")
        # transitive rollup over the cone
        t_writes: set[str] = set()
        t_globals: set[str] = set()
        t_sync = 0
        for k in cone:
            cfe = program.functions[k][1]
            t_writes.update(a for a, _ in cfe.state_writes)
            t_globals.update(n for n, _h, _l in cfe.global_mutations)
            t_sync += len(cfe.sync_lines)
        lines.append(
            f"  transitive ({len(cone)} fns): "
            f"writes {{{', '.join('.' + a for a in sorted(t_writes)) or '-'}}}, "
            f"globals {{{', '.join(sorted(t_globals)) or '-'}}}, "
            f"{t_sync} sync site(s)"
        )
        for f in findings or []:
            fk = f"{f.path}::{f.symbol}"
            if fk in cone:
                path = program.chain(key, fk)
                lines.append(
                    f"  finding {f.code} at {f.location()}"
                    + (f"  via {_short_chain(program, path)}" if path else "")
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# -- in-memory analysis (tests, fixtures) --------------------------------------

_DRIVER_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def analyze_sources(
    sources: dict[str, str], enabled: set[str] | None = None
) -> tuple[list[Finding], Program]:
    """Analyze an in-memory ``{relpath: source}`` program: module rules,
    program rules, and the RL404 refinement — no filesystem involved.

    The fixture entry point for the dataflow layer's own tests.
    """
    findings: list[Finding] = []
    effects: dict[str, ModuleEffects] = {}
    for relpath in sorted(sources):
        mod = ModuleInfo(path=relpath, relpath=relpath, source=sources[relpath])
        findings.extend(run_rules(mod, enabled=enabled))
        effects[relpath] = infer_effects(mod)
    program = Program.build(effects)
    findings.extend(run_program_rules(program, enabled=enabled))
    findings = refine_findings(program, findings)
    return findings, program
