"""Shared fixtures: small graphs covering every shape the paper evaluates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.digraph import DiGraph


def _build(edges: list[tuple[int, int]], n: int) -> DiGraph:
    arr = np.asarray(edges, dtype=np.int64)
    return DiGraph(n, arr[:, 0], arr[:, 1])


@pytest.fixture
def tiny_dag() -> DiGraph:
    """A 5-vertex DAG with two equal-length s→t paths (easy hand-check).

    Edges: 0→1, 0→2, 1→3, 2→3, 3→4.  From source 0 there are two shortest
    paths to 3 (via 1 and via 2), so BC(1) = BC(2) for sampled source 0.
    """
    return _build([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], 5)


@pytest.fixture
def diamond() -> DiGraph:
    """The classic diamond: 0→{1,2}→3."""
    return _build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)


@pytest.fixture
def bipath() -> DiGraph:
    """Bidirectional path of 8 vertices (strongly connected, diameter 7)."""
    return gen.path_graph(8, bidirectional=True)


@pytest.fixture
def dicycle() -> DiGraph:
    """Directed 9-cycle (strongly connected, diameter 8)."""
    return gen.cycle_graph(9)


@pytest.fixture
def er_graph() -> DiGraph:
    """Random sparse digraph, 40 vertices."""
    return gen.erdos_renyi(40, 3.0, seed=11)


@pytest.fixture
def er_dense_sc() -> DiGraph:
    """Denser random digraph: strongly connected with 5·D < n (the regime
    where Algorithm 4's early termination applies)."""
    g = gen.erdos_renyi(60, 6.0, seed=7)
    from repro.graph.properties import directed_diameter, is_strongly_connected

    assert is_strongly_connected(g)
    assert 5 * directed_diameter(g) < g.num_vertices
    return g


@pytest.fixture
def powerlaw_graph() -> DiGraph:
    """Small RMAT power-law graph."""
    return gen.rmat(6, 4, seed=13)


@pytest.fixture
def road_graph() -> DiGraph:
    """Small grid/road graph (high diameter, bounded degree)."""
    return gen.grid_road(7, 7, seed=17)


@pytest.fixture
def webcrawl_graph() -> DiGraph:
    """Web-crawl-like graph: power-law core + long tails."""
    return gen.web_crawl_like(core_n=60, tail_total=40, avg_tail_len=10, seed=19)


@pytest.fixture
def disconnected_graph() -> DiGraph:
    """Two weakly-connected components."""
    return _build([(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)], 6)


def some_sources(g: DiGraph, k: int = 6) -> list[int]:
    """Deterministic spread-out source subset for a graph."""
    n = g.num_vertices
    step = max(1, n // k)
    return list(range(0, n, step))[:k]
