"""Unit tests for the CONGEST network simulator."""

import pytest

from repro.congest.messages import MAX_COMBINED_VALUES, MessageStats, payload_words
from repro.congest.network import (
    ChannelCapacityError,
    CongestNetwork,
    NotAChannelError,
)
from repro.congest.program import BROADCAST, VertexProgram
from repro.graph.builders import from_edges
from repro.graph.generators import cycle_graph, path_graph


class Flood(VertexProgram):
    """Simple flooding: vertex 0 starts a token; everyone forwards once."""

    def setup(self, ctx):
        super().setup(ctx)
        self.have = ctx.vid == 0
        self.forwarded = ctx.vid != 0 and False
        self.sent = False

    def compute_sends(self, rnd):
        if self.have and not self.sent:
            self.sent = True
            return [(BROADCAST, ("tok",))]
        return []

    def handle_message(self, rnd, sender, payload):
        self.have = True

    def has_pending_work(self, rnd):
        return self.have and not self.sent


class TestDelivery:
    def test_flood_reaches_everyone_in_diameter_rounds(self):
        g = path_graph(6, bidirectional=False)  # channels follow UG anyway
        net = CongestNetwork(g, lambda v: Flood())
        res = net.run(20, detect_quiescence=True)
        assert all(p.have for p in net.programs)  # type: ignore[attr-defined]
        assert res.terminated_by == "quiescence"
        # Path of 6: farthest vertex at distance 5 → ~6 rounds + 1 quiet.
        assert res.rounds_executed <= 8

    def test_channels_are_bidirectional(self):
        """A directed edge still gives a two-way channel (CONGEST on UG)."""
        g = from_edges(2, [(0, 1)])

        class SendBack(VertexProgram):
            def setup(self, ctx):
                super().setup(ctx)
                self.got = False

            def compute_sends(self, rnd):
                if self.ctx.vid == 1 and rnd == 1:
                    return [(0, ("x",))]
                return []

            def handle_message(self, rnd, sender, payload):
                self.got = True

            def has_pending_work(self, rnd):
                return False

        net = CongestNetwork(g, lambda v: SendBack())
        net.run(2)
        assert net.programs[0].got  # type: ignore[attr-defined]

    def test_send_to_non_neighbor_rejected(self):
        g = path_graph(3, bidirectional=False)

        class Bad(VertexProgram):
            def compute_sends(self, rnd):
                return [(2, ("x",))] if self.ctx.vid == 0 else []

            def handle_message(self, rnd, sender, payload):
                pass

        net = CongestNetwork(g, lambda v: Bad())
        with pytest.raises(NotAChannelError):
            net.run(1)

    def test_channel_capacity_enforced(self):
        g = from_edges(2, [(0, 1)])

        class Chatty(VertexProgram):
            def compute_sends(self, rnd):
                if self.ctx.vid == 0:
                    return [(1, ("x", i)) for i in range(MAX_COMBINED_VALUES + 1)]
                return []

            def handle_message(self, rnd, sender, payload):
                pass

        net = CongestNetwork(g, lambda v: Chatty())
        with pytest.raises(ChannelCapacityError):
            net.run(1)


class TestAccounting:
    def test_message_vs_value_counts(self):
        g = from_edges(2, [(0, 1)])

        class TwoValues(VertexProgram):
            def compute_sends(self, rnd):
                if self.ctx.vid == 0 and rnd == 1:
                    return [(1, ("a", 1)), (1, ("b", 1, 2))]
                return []

            def handle_message(self, rnd, sender, payload):
                pass

            def has_pending_work(self, rnd):
                return False

        net = CongestNetwork(g, lambda v: TwoValues())
        res = net.run(3, detect_quiescence=True)
        assert res.stats.messages == 1  # combined into one channel message
        assert res.stats.values == 2
        assert res.stats.count_for_tag("a") == 1
        assert res.stats.count_for_tag("b") == 1
        assert res.last_send_round == 1

    def test_sends_per_round_recorded(self):
        g = cycle_graph(4)
        net = CongestNetwork(g, lambda v: Flood())
        res = net.run(10, detect_quiescence=True)
        assert res.sends_per_round[0] >= 1
        assert res.sends_per_round[-1] == 0  # quiescent final round

    def test_round_limit_termination(self):
        g = cycle_graph(3)
        net = CongestNetwork(g, lambda v: Flood())
        res = net.run(1)
        assert res.terminated_by == "round_limit"
        assert res.rounds_executed == 1


class TestPayloadWords:
    def test_sizes(self):
        assert payload_words(("tag",)) == 1
        assert payload_words(("tag", 1)) == 1
        assert payload_words(("tag", 1, 2, 3)) == 3

    def test_stats_words(self):
        ms = MessageStats()
        ms.record_channel([("a", 1), ("b", 1, 2)])
        assert ms.words == 3
        assert ms.messages == 1
