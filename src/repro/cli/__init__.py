"""Command-line interface: run any BC algorithm on an edge-list file.

Examples
--------
Compute exact BC with MRBC on a generated graph and print the top ranks::

    python -m repro --generate rmat:8:8 --algorithm mrbc --top 10

Compare algorithms on an edge-list file with 16 sampled sources::

    python -m repro graph.txt --algorithm mrbc sbbc --sources 16 --hosts 8

Record a traced run — JSONL event stream, run manifest, and a Figure 2
style per-phase computation/communication breakdown::

    python -m repro trace mrbc --graph rmat:8:8 --sources 16 --out trace/

Run a fault experiment — inject a deterministic fault plan, recover, and
verify the result against exact Brandes (exit code is the verdict)::

    python -m repro faults drop --algorithm mrbc --graph er:30:3 --sources 6

Run a seeded chaos campaign — engines × fault kinds × recovery policies,
each scenario verified bit-exact (or exactly salvaged) against the
fault-free run (exit code is the verdict)::

    python -m repro chaos --seed 7 --campaign smoke --report chaos-report.json

Run the pinned benchmark suite, snapshot it at the repo root, and gate
against a stored baseline (exit code is the verdict)::

    python -m repro bench --smoke --compare benchmarks/baselines/BENCH_smoke.json

Profile a run phase by phase (cProfile hotspots / tracemalloc peaks)::

    python -m repro profile mrbc --graph rmat:8:8 --sources 16 --mode all

Diff two recorded runs, or export one for Perfetto::

    python -m repro compare traceA/ traceB/
    python -m repro trace mrbc --graph rmat:8:8 --chrome out.trace.json

Statically check determinism / CONGEST protocol / delayed-sync
invariants against the committed baseline (exit code is the verdict)::

    python -m repro lint src tests --format json

Inspect communication volume (per phase/round/channel) or run the
predicted-vs-measured conformance suite (exit code is the verdict)::

    python -m repro comm mrbc --graph er:60:3 --matrix --top 5
    python -m repro comm --check --report comm-report.json

Inspect round complexity (per phase × source batch, with convergence
curves) or check the measured rounds against the paper's Diam + k
budgets (exit code is the verdict)::

    python -m repro rounds mrbc --graph er:60:3 --curves
    python -m repro rounds --check --report rounds-report.json

Chart the benchmark trajectory across committed snapshots — wall-clock
medians and deterministic/comm/round counts per case, ordered by commit
lineage, regressions flagged::

    python -m repro trend --format json

Each subcommand lives in its own module (:mod:`repro.cli.run`,
:mod:`repro.cli.trace`, :mod:`repro.cli.faults`, :mod:`repro.cli.chaos`,
:mod:`repro.cli.bench`, :mod:`repro.cli.profile`,
:mod:`repro.cli.compare`, :mod:`repro.cli.lint`, :mod:`repro.cli.comm`,
:mod:`repro.cli.rounds`, :mod:`repro.cli.trend`);
shared flags and graph loading are in
:mod:`repro.cli.common`.  This package re-exports every historical
``repro.cli`` name, so imports written against the old single-module CLI
keep working.
"""

from __future__ import annotations

import sys

from repro.cli.bench import bench_main
from repro.cli.common import (
    ALGORITHMS,
    TRACEABLE,
    _generate as _generate,  # historical import site (tests, scripts)
    _load_graph_arg as _load_graph_arg,
    add_logging_flags,
    log,
    setup_logging,
)
from repro.cli.chaos import chaos_main
from repro.cli.comm import comm_main
from repro.cli.compare import compare_main
from repro.cli.faults import faults_main
from repro.cli.profile import profile_main
from repro.cli.rounds import rounds_main
from repro.cli.run import _run_one as _run_one, run_main
from repro.cli.trace import trace_main
from repro.cli.trend import trend_main

__all__ = [
    "ALGORITHMS",
    "TRACEABLE",
    "add_logging_flags",
    "bench_main",
    "chaos_main",
    "comm_main",
    "compare_main",
    "faults_main",
    "log",
    "main",
    "profile_main",
    "rounds_main",
    "run_main",
    "setup_logging",
    "trace_main",
    "trend_main",
]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "faults":
        return faults_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "compare":
        return compare_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.cli.lint import lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "comm":
        return comm_main(argv[1:])
    if argv and argv[0] == "rounds":
        return rounds_main(argv[1:])
    if argv and argv[0] == "trend":
        return trend_main(argv[1:])
    return run_main(argv)
