"""Round-by-round tracing for CONGEST runs.

Wraps any :class:`~repro.congest.program.VertexProgram` factory so every
send is recorded as a ``(round, sender, receiver, payload)`` event.  Used
by tests to assert fine-grained schedule properties (e.g. MRBC's "vertex
v sends for source s exactly in round d_sv + ℓ") and handy when debugging
new CONGEST algorithms; :func:`render_schedule` pretty-prints who sent
what when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.congest.program import VertexProgram


@dataclass(frozen=True)
class SendEvent:
    """One value sent on one channel in one round."""

    round: int
    sender: int
    receiver: int
    payload: tuple[Any, ...]

    @property
    def tag(self) -> str:
        """The payload's type tag."""
        return self.payload[0]


@dataclass
class Trace:
    """Accumulated send events of one network run."""

    events: list[SendEvent] = field(default_factory=list)

    def by_round(self, rnd: int) -> list[SendEvent]:
        """Events of one round."""
        return [e for e in self.events if e.round == rnd]

    def by_sender(self, vid: int) -> list[SendEvent]:
        """Events originated by one vertex, in round order."""
        return [e for e in self.events if e.sender == vid]

    def with_tag(self, tag: str) -> list[SendEvent]:
        """Events carrying a given payload tag."""
        return [e for e in self.events if e.tag == tag]

    def rounds_used(self) -> list[int]:
        """Sorted list of rounds in which anything was sent."""
        return sorted({e.round for e in self.events})


class _TracedProgram(VertexProgram):
    """Delegating wrapper that records every send."""

    def __init__(self, inner: VertexProgram, trace: Trace) -> None:
        self._inner = inner
        self._trace = trace

    def setup(self, ctx) -> None:  # type: ignore[override]
        self._inner.setup(ctx)
        self.ctx = ctx

    def compute_sends(self, rnd: int):
        sends = self._inner.compute_sends(rnd)
        for target, payload in sends:
            if target == -1:  # BROADCAST
                for t in self.ctx.channel_neighbors:
                    self._trace.events.append(
                        SendEvent(rnd, self.ctx.vid, int(t), payload)
                    )
            else:
                self._trace.events.append(
                    SendEvent(rnd, self.ctx.vid, int(target), payload)
                )
        return sends

    def handle_message(self, rnd, sender, payload):
        self._inner.handle_message(rnd, sender, payload)

    def end_of_round(self, rnd):
        self._inner.end_of_round(rnd)

    def has_pending_work(self, rnd):
        return self._inner.has_pending_work(rnd)

    def is_stopped(self):
        return self._inner.is_stopped()

    def __getattr__(self, name: str):
        # Expose the wrapped program's algorithm state (e.g. ``.state``).
        return getattr(self._inner, name)


def traced_factory(
    factory: Callable[[int], VertexProgram],
) -> tuple[Callable[[int], VertexProgram], Trace]:
    """Wrap a program factory; returns ``(wrapped_factory, trace)``."""
    trace = Trace()

    def wrapped(vid: int) -> VertexProgram:
        return _TracedProgram(factory(vid), trace)

    return wrapped, trace


def render_schedule(trace: Trace, max_rounds: int | None = None) -> str:
    """Human-readable per-round schedule (for debugging/teaching)."""
    lines: list[str] = []
    for rnd in trace.rounds_used():
        if max_rounds is not None and rnd > max_rounds:
            lines.append("  ...")
            break
        evs = trace.by_round(rnd)
        parts = ", ".join(
            f"{e.sender}->{e.receiver} {e.payload}" for e in evs[:8]
        )
        more = "" if len(evs) <= 8 else f" (+{len(evs) - 8} more)"
        lines.append(f"round {rnd:>4}: {parts}{more}")
    return "\n".join(lines)
