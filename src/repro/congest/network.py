"""The CONGEST round loop: scheduling, delivery, accounting, termination.

See :mod:`repro.congest` for the model semantics.  The simulator is
deterministic: vertices compute their sends in increasing vertex order and
deliveries are processed in (sender, arrival) order, but correct CONGEST
algorithms — including all of the paper's — may not depend on any such
order within a round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.congest.messages import MessageStats
from repro.congest.program import VertexContext, VertexProgram
from repro.graph.digraph import DiGraph
from repro.runtime.errors import ChannelCapacityError, NotAChannelError
from repro.runtime.plane import CongestPlane
from repro.runtime.superstep import SuperstepRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.stats import EngineRun
    from repro.resilience.context import ResilienceContext

__all__ = [
    "ChannelCapacityError",  # canonical home: repro.runtime.errors
    "CongestNetwork",
    "NetworkRunResult",
    "NotAChannelError",  # canonical home: repro.runtime.errors
]


@dataclass
class NetworkRunResult:
    """Outcome of one network run."""

    rounds_executed: int
    last_send_round: int
    terminated_by: str  # "stopped" | "quiescence" | "round_limit"
    stats: MessageStats = field(default_factory=MessageStats)
    #: Messages sent per round (index 0 = round 1).
    sends_per_round: list[int] = field(default_factory=list)


class CongestNetwork:
    """A network of vertex programs over the undirected version of ``graph``.

    Parameters
    ----------
    graph:
        The directed input graph; channels follow ``UG``.
    program_factory:
        Called once per vertex id to create its :class:`VertexProgram`.
    expose_n:
        If True, programs receive the true vertex count in their context
        (the paper's "n is known" case); otherwise ``num_vertices_hint``
        is ``None`` and the algorithm must compute n itself.
    resilience:
        Optional :class:`~repro.resilience.context.ResilienceContext`;
        when given, every channel's per-round payload list passes through
        its guard before delivery, and host-scope faults (stall/crash)
        materialize at the round barrier — a crash raises
        :class:`~repro.resilience.errors.HostCrashError` for the driver
        to restart the network run (see :func:`~repro.resilience
        .supervisor.run_congest_with_restart`).
    """

    def __init__(
        self,
        graph: DiGraph,
        program_factory: Callable[[int], VertexProgram],
        expose_n: bool = True,
        resilience: "ResilienceContext | None" = None,
    ) -> None:
        self.graph = graph
        self.resilience = resilience
        n = graph.num_vertices
        ug = graph.to_undirected()
        self.channel_neighbors: list[np.ndarray] = [
            ug.out_neighbors(v) for v in range(n)
        ]
        self._channel_sets: list[set[int]] = [
            set(nbrs.tolist()) for nbrs in self.channel_neighbors
        ]
        self.programs: list[VertexProgram] = []
        for v in range(n):
            prog = program_factory(v)
            prog.setup(
                VertexContext(
                    vid=v,
                    num_vertices_hint=n if expose_n else None,
                    out_neighbors=graph.out_neighbors(v),
                    in_neighbors=graph.in_neighbors(v),
                    channel_neighbors=self.channel_neighbors[v],
                )
            )
            self.programs.append(prog)

    # -- round loop ----------------------------------------------------------

    def run(
        self,
        max_rounds: int,
        detect_quiescence: bool = False,
        detect_stopped: bool = False,
        run: "EngineRun | None" = None,
    ) -> NetworkRunResult:
        """Execute rounds ``1 .. max_rounds`` (or fewer on termination).

        ``detect_quiescence`` enables Lemma 8's global termination detector:
        stop after a round with no sends and no vertex reporting pending
        work.  ``detect_stopped`` halts once every program reports
        :meth:`~repro.congest.program.VertexProgram.is_stopped` (Algorithm 4
        semantics).  Pass an :class:`~repro.engine.stats.EngineRun` as
        ``run`` to record one persistable round record per CONGEST round
        (phase ``"congest"``).

        The round loop itself lives in the shared
        :class:`~repro.runtime.superstep.SuperstepRuntime`, exchanging
        through a :class:`~repro.runtime.plane.CongestPlane` over this
        network.
        """
        result = NetworkRunResult(rounds_executed=0, last_send_round=0, terminated_by="round_limit")
        programs = self.programs
        tele = obs.current()
        if tele.comm is not None:
            # Round counters restart per network run (one run per source
            # batch and phase); a fresh ledger epoch keeps their per-round
            # channel records from merging across runs.
            tele.comm.begin_epoch("congest")
        with tele.span(
            "congest.run", kind="run", vertices=len(programs)
        ) as sp:
            plane = CongestPlane(self)
            runtime = SuperstepRuntime(plane=plane, run=run)

            def step(rnd: int, rs) -> bool:
                return plane.exchange_round(
                    rnd, result, tele, rs, detect_quiescence
                )

            stop = (
                (lambda: all(p.is_stopped() for p in programs))
                if detect_stopped
                else None
            )
            runtime.run_loop("congest", step, stop=stop, max_rounds=max_rounds)
            result.terminated_by = runtime.terminated_by
            if sp is not None:
                sp.set(
                    rounds=result.rounds_executed,
                    last_send_round=result.last_send_round,
                    terminated_by=result.terminated_by,
                    messages=result.stats.messages,
                )
        return result
