"""repro.lint — domain-aware static analysis for the MRBC engine.

Rule families: ``RL1xx`` determinism, ``RL2xx`` CONGEST protocol,
``RL3xx`` Gluon delayed synchronization, ``RL4xx`` observability /
resilience hygiene, ``RL5xx`` vectorization-readiness and ``RL6xx``
parallel-safety (interprocedural, over the whole-program call graph).
See ``docs/STATIC_ANALYSIS.md`` for the full rule table and the paper
invariants each encodes.

Programmatic entry points::

    from repro.lint import lint_main          # CLI (repro lint ...)
    from repro.lint import run_lint, RULES    # library use
    from repro.lint import Program, analyze_sources   # dataflow layer
"""

from repro.lint.baseline import Baseline
from repro.lint.cli import lint_main
from repro.lint.dataflow import (
    Program,
    analyze_sources,
    explain_effects,
    readiness_report,
)
from repro.lint.effects import FunctionEffects, ModuleEffects, infer_effects
from repro.lint.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    sort_findings,
)
from repro.lint.runner import LintCache, LintResult, lint_file, run_lint
from repro.lint.rules import RULES, ModuleInfo, run_rules
from repro.lint.sarif import from_sarif, to_sarif, write_sarif

__all__ = [
    "Baseline",
    "Finding",
    "FunctionEffects",
    "LintCache",
    "LintResult",
    "ModuleEffects",
    "ModuleInfo",
    "Program",
    "RULES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "analyze_sources",
    "explain_effects",
    "from_sarif",
    "infer_effects",
    "lint_file",
    "lint_main",
    "readiness_report",
    "run_lint",
    "run_rules",
    "sort_findings",
    "to_sarif",
    "write_sarif",
]
