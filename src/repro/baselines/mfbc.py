"""Maximal-Frontier BC (MFBC) — sparse-matrix BC (Solomonik et al. 2017).

MFBC formulates Brandes' algorithm as sparse-matrix–sparse-matrix products
over a batch of ``k`` sources: the forward phase is a Bellman-Ford-style
multi-source relaxation (for unweighted graphs, one SpMM per BFS level
where the frontier matrix carries path counts), and the backward phase is
one SpMM per level in reverse carrying dependency coefficients.  The
"maximal frontier" refers to processing every updated vertex each
iteration; unlike MRBC there is no pipelining — every iteration is a full
collective over the whole batch.

The numerical computation here is exact (validated against Brandes).  The
distributed cost is accounted per iteration the way CTF executes it on a
``pr × pc`` processor grid: the frontier matrix is replicated along grid
rows and the result reduced along grid columns, so each iteration moves
``O(nnz(frontier) · (pr + pc))`` words and synchronizes the whole grid a
constant number of times.  That full-replication cost per iteration is why
MFBC loses to both SBBC and MRBC on most inputs (paper §5.3: "Both SBBC
and MRBC outperform MFBC by significant margins").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.batching import iter_batches
from repro.engine.stats import EngineRun
from repro.graph.builders import to_scipy_csr
from repro.graph.digraph import DiGraph

#: Bytes per nonzero moved in a frontier replication (value + row index).
NNZ_BYTES = 12
#: Grid collectives per SpMM iteration (broadcast + reduce + barrier).
COLLECTIVES_PER_ITER = 3
#: CTF tensor-contraction overhead factor: every SpMM repacks, pads, and
#: redistributes its block-cyclic operands, costing several passes over
#: the dense batch state per iteration.
DENSE_OVERHEAD = 4


@dataclass
class MFBCResult:
    """Output of :func:`mfbc`."""

    bc: np.ndarray
    dist: np.ndarray
    sigma: np.ndarray
    sources: np.ndarray
    batch_size: int
    run: EngineRun
    #: SpMM iterations (forward + backward), the MFBC analogue of rounds.
    iterations: int

    @property
    def total_rounds(self) -> int:
        """Iterations count as BSP rounds for cross-algorithm comparison."""
        return self.iterations


def _grid_shape(num_hosts: int) -> tuple[int, int]:
    pr = int(np.floor(np.sqrt(num_hosts)))
    while num_hosts % pr != 0:
        pr -= 1
    return pr, num_hosts // pr


def _account_iteration(
    run: EngineRun,
    phase: str,
    frontier_nnz: int,
    flops: int,
    num_hosts: int,
    dense_cells: int,
) -> None:
    """Charge one SpMM iteration to the run's statistics.

    ``dense_cells`` is the full ``n × k`` label matrix: the maximal-frontier
    formulation has no update tracking, so every iteration sweeps the whole
    batch state (the cost pipelining avoids) — this is the term that makes
    MFBC lose to MRBC/SBBC in the paper's Table 2.
    """
    rs = run.new_round(phase)
    pr, pc = _grid_shape(num_hosts)
    # Work is spread across the grid; the straggler does ~1/H of the flops
    # plus its share of the dense batch-state sweep.
    per_host_flops = (flops + frontier_nnz) // max(1, num_hosts) + 1
    per_host_dense = DENSE_OVERHEAD * dense_cells // max(1, num_hosts) + 1
    for oc in rs.compute:
        oc.edge_ops += per_host_flops
        # Charged at data-structure cost: CTF repacks/redistributes the
        # full tensor blocks on every contraction.
        oc.struct_ops += per_host_dense
    if num_hosts > 1:
        per_host_bytes = (frontier_nnz * NNZ_BYTES * (pr + pc)) // num_hosts + 1
        rs.bytes_out += per_host_bytes
        rs.bytes_in += per_host_bytes
        rs.msgs_out += COLLECTIVES_PER_ITER
        rs.msgs_in += COLLECTIVES_PER_ITER
        rs.pair_messages += COLLECTIVES_PER_ITER * num_hosts
    rs.items_synced += frontier_nnz
    rs.proxies_synced += frontier_nnz


def mfbc(
    g: DiGraph,
    sources: np.ndarray | list[int] | None = None,
    batch_size: int = 32,
    num_hosts: int = 8,
) -> MFBCResult:
    """Run Maximal-Frontier BC over batches of ``batch_size`` sources."""
    n = g.num_vertices
    if sources is None:
        src = np.arange(n, dtype=np.int64)
    else:
        src = np.asarray(sources, dtype=np.int64).ravel()
    if src.size == 0:
        raise ValueError("need at least one source")

    A = to_scipy_csr(g)  # A[u, v] = 1 for edge (u, v)
    AT = A.T.tocsr()
    out_deg = g.out_degrees()
    in_deg = g.in_degrees()

    run = EngineRun(num_hosts=num_hosts)
    bc = np.zeros(n, dtype=np.float64)
    dist_all = np.full((src.size, n), -1, dtype=np.int64)
    sigma_all = np.zeros((src.size, n), dtype=np.float64)
    iterations = 0

    for b0, batch in enumerate(iter_batches(src, batch_size)):
        k = batch.size
        dist = np.full((n, k), -1, dtype=np.int64)
        sigma = np.zeros((n, k), dtype=np.float64)
        cols = np.arange(k)
        dist[batch, cols] = 0
        sigma[batch, cols] = 1.0

        # -- forward: one SpMM per BFS level, frontier carries σ.
        frontier = sp.csr_matrix(
            (np.ones(k), (batch, cols)), shape=(n, k), dtype=np.float64
        )
        level = 0
        while frontier.nnz:
            # SpMM flops: each frontier nonzero (v, i) fans out along v's
            # out-edges (AT @ F touches row u for every edge (v, u)).
            frows = frontier.tocoo().row
            flops = int(out_deg[frows].sum())
            _account_iteration(
                run, "forward", int(frontier.nnz), flops, num_hosts, n * k
            )
            iterations += 1
            level += 1
            # CSR @ CSR is canonical: duplicate (u, i) contributions are
            # already summed, so `vals` carries the full σ of each pair.
            cand = (AT @ frontier).tocoo()
            rows, ccols, vals = cand.row, cand.col, cand.data
            fresh = dist[rows, ccols] == -1
            rows, ccols, vals = rows[fresh], ccols[fresh], vals[fresh]
            if rows.size == 0:
                break
            dist[rows, ccols] = level
            sigma[rows, ccols] = vals
            frontier = sp.csr_matrix((vals, (rows, ccols)), shape=(n, k))
        max_level = level

        # -- backward: one SpMM per level in reverse.
        delta = np.zeros((n, k), dtype=np.float64)
        for lev in range(max_level, 0, -1):
            rows, ccols = np.nonzero(dist == lev)
            if rows.size == 0:
                continue
            coeff = (1.0 + delta[rows, ccols]) / sigma[rows, ccols]
            C = sp.csr_matrix((coeff, (rows, ccols)), shape=(n, k))
            _account_iteration(
                run,
                "backward",
                int(C.nnz),
                int(in_deg[np.unique(rows)].sum()),
                num_hosts,
                n * k,
            )
            iterations += 1
            # CSR @ CSR coalesces duplicates, so each (u, i) pair appears
            # once with its coefficients already summed; the σ_su factor
            # then multiplies the combined coefficient exactly once.
            Y = (A @ C).tocoo()
            yr, yc, yv = Y.row, Y.col, Y.data
            is_pred = dist[yr, yc] == lev - 1
            yr, yc, yv = yr[is_pred], yc[is_pred], yv[is_pred]
            delta[yr, yc] += sigma[yr, yc] * yv

        base = b0 * batch_size
        for i in range(k):
            dist_all[base + i] = dist[:, i]
            sigma_all[base + i] = sigma[:, i]
            d = delta[:, i].copy()
            d[batch[i]] = 0.0
            bc += d

    return MFBCResult(
        bc=bc,
        dist=dist_all,
        sigma=sigma_all,
        sources=src,
        batch_size=batch_size,
        run=run,
        iterations=iterations,
    )
