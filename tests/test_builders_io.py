"""Unit tests for repro.graph.builders and repro.graph.io."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.builders import (
    from_edge_array,
    from_edges,
    from_networkx,
    to_networkx,
    to_scipy_csr,
)
from repro.graph.generators import erdos_renyi
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestBuilders:
    def test_from_edges(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_from_edges_empty(self):
        assert from_edges(4, []).num_edges == 0

    def test_from_edges_bad_shape(self):
        with pytest.raises(ValueError):
            from_edges(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_from_edge_array(self):
        g = from_edge_array(3, np.array([0, 1]), np.array([1, 2]))
        assert g.has_edge(0, 1)

    def test_networkx_roundtrip(self):
        g = erdos_renyi(30, 2.5, seed=3)
        back = from_networkx(to_networkx(g))
        assert back == g

    def test_from_networkx_undirected_symmetrizes(self):
        nxg = nx.Graph([(0, 1), (1, 2)])
        g = from_networkx(nxg)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_edges == 4

    def test_from_networkx_drops_self_loops(self):
        nxg = nx.DiGraph([(0, 0), (0, 1)])
        assert from_networkx(nxg).num_edges == 1

    def test_from_networkx_requires_contiguous_labels(self):
        nxg = nx.DiGraph([(0, 5)])
        with pytest.raises(ValueError):
            from_networkx(nxg)

    def test_to_scipy_csr(self):
        g = from_edges(3, [(0, 1), (2, 1)])
        A = to_scipy_csr(g)
        assert A.shape == (3, 3)
        assert A[0, 1] == 1.0
        assert A[1, 0] == 0.0
        assert A.nnz == 2


class TestIO:
    def test_edge_list_roundtrip(self, tmp_path):
        g = erdos_renyi(25, 2.0, seed=5)
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        assert read_edge_list(p) == g

    def test_edge_list_header_overridden(self, tmp_path):
        g = from_edges(3, [(0, 1)])
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        g2 = read_edge_list(p, num_vertices=10)
        assert g2.num_vertices == 10

    def test_edge_list_no_header_infers_n(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0 1\n4 2\n")
        g = read_edge_list(p)
        assert g.num_vertices == 5
        assert g.num_edges == 2

    def test_edge_list_ignores_comments_and_blanks(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# a comment\n\n0 1\n")
        assert read_edge_list(p).num_edges == 1

    def test_edge_list_malformed_rejected(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(p)

    def test_empty_edge_list(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# nodes: 7\n")
        g = read_edge_list(p)
        assert g.num_vertices == 7
        assert g.num_edges == 0

    def test_npz_roundtrip(self, tmp_path):
        g = erdos_renyi(40, 3.0, seed=6)
        p = tmp_path / "g.npz"
        save_npz(g, p)
        assert load_npz(p) == g


class TestWeightedIO:
    def test_roundtrip(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list, write_weighted_edge_list
        from repro.graph.weighted import with_random_weights

        wg = with_random_weights(erdos_renyi(25, 2.0, seed=8), 1, 9, seed=9)
        p = tmp_path / "wg.txt"
        write_weighted_edge_list(wg, p)
        back = read_weighted_edge_list(p)
        assert back.graph == wg.graph
        assert np.allclose(back.weights, wg.weights)

    def test_two_column_lines_default_unit(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list

        p = tmp_path / "g.txt"
        p.write_text("0 1\n1 2 3.5\n")
        wg = read_weighted_edge_list(p)
        assert wg.edge_weight(0, 1) == 1.0
        assert wg.edge_weight(1, 2) == 3.5

    def test_malformed_rejected(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list

        p = tmp_path / "g.txt"
        p.write_text("7\n")
        with pytest.raises(ValueError):
            read_weighted_edge_list(p)
