"""``repro bench``: run the pinned suite, snapshot it, gate regressions."""

from __future__ import annotations

import argparse
import os

from repro.analysis.reporting import format_table
from repro.cli.common import add_logging_flags, log, setup_logging


def bench_main(argv: list[str]) -> int:
    """``repro bench``: run the pinned suite, snapshot it, gate regressions.

    Runs the pinned engine-configuration matrix (``--smoke`` for the
    CI-sized subset), writes a versioned ``BENCH_<git-sha>.json`` at the
    repo root (or ``--out``), and prints the per-case table.  With
    ``--compare BASELINE`` the fresh snapshot is diffed against the stored
    one — any change to the deterministic counts (rounds, bytes, pair
    messages) fails, as does a wall-clock median regression beyond the
    noise threshold — and the exit code is the verdict.
    """
    from repro.obs import bench

    p = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the pinned benchmark suite and gate regressions",
    )
    p.add_argument("--smoke", action="store_true",
                   help="run the small CI suite instead of the default one")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repetitions per case (default: 3)")
    p.add_argument("--warmup", type=int, default=1,
                   help="untimed warmup runs per case (default: 1)")
    p.add_argument("--cases", metavar="SUBSTR", default=None,
                   help="only run cases whose name contains SUBSTR")
    p.add_argument("--plane", choices=("dict", "array", "both"), default="dict",
                   help="execution tier: dict (reference), array (columnar "
                        "twins named <case>@array), or both — with both, "
                        "each array case records its speedup_vs_dict "
                        "(default: dict)")
    p.add_argument("--out", "-o", default=None, metavar="PATH",
                   help="snapshot path (default: <repo root>/BENCH_<sha>.json)")
    p.add_argument("--compare", metavar="BASELINE", default=None,
                   help="diff against a stored snapshot; exit 1 on regression")
    p.add_argument("--wall", choices=("auto", "always", "never"), default="auto",
                   help="wall-clock gating: auto skips when the baseline "
                        "came from a different machine (default: auto)")
    p.add_argument("--wall-threshold", type=float, default=3.0,
                   help="fail when the median grows by more than this many "
                        "IQRs of noise (default: 3.0)")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    suite = bench.SMOKE_SUITE if args.smoke else bench.DEFAULT_SUITE
    suite_name = "smoke" if args.smoke else "default"
    if args.cases:
        suite = tuple(c for c in suite if args.cases in c.name)
        if not suite:
            p.error(f"no bench case name contains {args.cases!r}")
    suite = bench.expand_planes(suite, args.plane)

    doc = bench.run_suite(
        suite,
        repeats=args.repeats,
        warmup=args.warmup,
        suite_name=suite_name,
        progress=lambda c: log.info(
            "bench case %s (%s on %s, %d hosts)",
            c.name, c.algorithm, c.graph, c.hosts,
        ),
    )
    out = args.out or os.path.join(
        bench.repo_root(), bench.bench_filename(doc["git_sha"])
    )
    bench.write_bench(doc, out)
    log.info("wrote bench snapshot to %s", out)

    rows = [
        [
            c["name"],
            c["deterministic"]["rounds"],
            c["deterministic"]["bytes"],
            c["deterministic"]["pair_messages"],
            f"{c['deterministic']['sim_total_s']:.5f}",
            f"{c['wall_s']['median']:.4f}",
            f"{c['wall_s']['iqr']:.4f}",
            (f"{c['wall_s']['speedup_vs_dict']:.2f}x"
             if "speedup_vs_dict" in c["wall_s"] else "-"),
        ]
        for c in doc["cases"]
    ]
    print(format_table(
        ["case", "rounds", "bytes", "msgs", "sim (s)",
         "wall p50 (s)", "IQR (s)", "vs dict"],
        rows,
        title=f"bench suite: {suite_name} ({args.repeats} repeats, "
              f"sha {(doc['git_sha'] or 'nogit')[:12]})",
    ))

    if args.compare is None:
        return 0
    baseline = bench.load_bench(args.compare)
    cmp = bench.compare_bench(
        doc, baseline, wall=args.wall, wall_threshold=args.wall_threshold
    )
    print(bench.render_comparison(cmp))
    return 0 if cmp.ok else 1
