"""Cross-algorithm integration tests: all four BC implementations agree,
and the paper's qualitative performance claims hold at library scale."""

import numpy as np
import pytest

from repro.analysis.metrics import summarize_engine_result
from repro.baselines.abbc import abbc
from repro.baselines.brandes import brandes_bc
from repro.baselines.mfbc import mfbc
from repro.baselines.sbbc import sbbc_engine
from repro.cluster.model import ClusterModel
from repro.core.mrbc import mrbc_engine
from repro.core.mrbc_congest import mrbc_congest
from repro.core.sampling import sample_sources
from repro.engine.partition import partition_graph
from repro.graph.suite import load_suite_graph


@pytest.fixture(scope="module")
def setup():
    g = load_suite_graph("gsh15")  # web-crawl shape: MRBC's home turf
    srcs = sample_sources(g, 8, seed=5)
    pg = partition_graph(g, 4, "cvc")
    return g, srcs, pg


class TestAllAlgorithmsAgree:
    def test_five_way_agreement(self, setup):
        g, srcs, pg = setup
        ref = brandes_bc(g, sources=srcs)
        results = {
            "mrbc_congest": mrbc_congest(g, sources=srcs).bc,
            "mrbc_engine": mrbc_engine(
                g, sources=srcs, batch_size=8, partition=pg
            ).bc,
            "sbbc": sbbc_engine(g, sources=srcs, partition=pg).bc,
            "abbc": abbc(g, sources=srcs).bc,
            "mfbc": mfbc(g, sources=srcs, batch_size=8, num_hosts=4).bc,
        }
        for name, bc in results.items():
            assert np.allclose(bc, ref, atol=1e-6), name

    def test_approximation_uses_identical_sources(self, setup):
        """§5.1: same sampled sources ⇒ identical approximate BC values."""
        g, srcs, pg = setup
        a = mrbc_engine(g, sources=srcs, batch_size=4, partition=pg).bc
        b = sbbc_engine(g, sources=srcs, partition=pg).bc
        assert np.allclose(a, b, atol=1e-6)


class TestQualitativeClaims:
    """The shape results of §5, checked at library scale."""

    def test_mrbc_reduces_rounds_massively_on_webcrawls(self, setup):
        g, srcs, pg = setup
        mr = mrbc_engine(g, sources=srcs, batch_size=8, partition=pg)
        sb = sbbc_engine(g, sources=srcs, partition=pg)
        # Paper: 14× mean reduction; our gsh15 stand-in must show at least 2x.
        assert sb.total_rounds / mr.total_rounds > 2.0

    def test_mrbc_faster_than_sbbc_on_nontrivial_diameter(self, setup):
        g, srcs, pg = setup
        model = ClusterModel(4)
        mr = mrbc_engine(g, sources=srcs, batch_size=8, partition=pg)
        sb = sbbc_engine(g, sources=srcs, partition=pg)
        t_mr = model.time_run(mr.run).total
        t_sb = model.time_run(sb.run).total
        assert t_mr < t_sb

    def test_sbbc_wins_on_trivial_diameter(self):
        """Table 2: SBBC is faster for estimated diameter <= 25 inputs."""
        g = load_suite_graph("rmat24")
        srcs = sample_sources(g, 8, seed=6)
        pg = partition_graph(g, 4, "cvc")
        model = ClusterModel(4)
        mr = mrbc_engine(g, sources=srcs, batch_size=8, partition=pg)
        sb = sbbc_engine(g, sources=srcs, partition=pg)
        t_mr = model.time_run(mr.run)
        t_sb = model.time_run(sb.run)
        # MRBC pays more computation (its §4.3 data structures)...
        assert t_mr.computation > t_sb.computation
        # ...which on a trivial-diameter graph is not bought back.
        assert t_sb.total < t_mr.total

    def test_mrbc_computation_overhead_but_comm_win(self, setup):
        """Figure 2: MRBC's computation is higher, communication lower."""
        g, srcs, pg = setup
        model = ClusterModel(4)
        mr = model.time_run(
            mrbc_engine(g, sources=srcs, batch_size=8, partition=pg).run
        )
        sb = model.time_run(sbbc_engine(g, sources=srcs, partition=pg).run)
        assert mr.computation > sb.computation
        assert mr.communication < sb.communication

    def test_mrbc_beats_mfbc(self, setup):
        g, srcs, pg = setup
        model = ClusterModel(4)
        t_mr = model.time_run(
            mrbc_engine(g, sources=srcs, batch_size=8, partition=pg).run
        ).total
        t_mf = model.time_run(
            mfbc(g, sources=srcs, batch_size=8, num_hosts=4).run
        ).total
        assert t_mr < t_mf

    def test_mrbc_scales_better_than_sbbc(self):
        """Figure 3: MRBC's self-relative speedup beats SBBC's."""
        g = load_suite_graph("gsh15")
        srcs = sample_sources(g, 8, seed=7)
        times = {}
        for H in (2, 8):
            pg = partition_graph(g, H, "cvc")
            model = ClusterModel(H)
            times[("mrbc", H)] = model.time_run(
                mrbc_engine(g, sources=srcs, batch_size=8, partition=pg).run
            ).total
            times[("sbbc", H)] = model.time_run(
                sbbc_engine(g, sources=srcs, partition=pg).run
            ).total
        mr_speedup = times[("mrbc", 2)] / times[("mrbc", 8)]
        sb_speedup = times[("sbbc", 2)] / times[("sbbc", 8)]
        assert mr_speedup > sb_speedup

    def test_summaries_build(self, setup):
        g, srcs, pg = setup
        mr = mrbc_engine(g, sources=srcs, batch_size=8, partition=pg)
        s = summarize_engine_result("MRBC", "gsh15", mr.run, len(srcs))
        assert s.rounds_per_source < 200
        assert s.comm_volume > 0
