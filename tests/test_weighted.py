"""Tests for the weighted substrate: WeightedDiGraph, Dijkstra-Brandes,
and weighted MFBC."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.baselines.weighted_brandes import (
    dijkstra_sssp,
    weighted_brandes_bc,
)
from repro.baselines.weighted_mfbc import weighted_mfbc
from repro.graph import generators as gen
from repro.graph.weighted import (
    WeightedDiGraph,
    from_weighted_edges,
    with_random_weights,
    with_unit_weights,
)


@pytest.fixture(scope="module")
def wg():
    """Random digraph with integer weights (exact in float64)."""
    g = gen.erdos_renyi(40, 3.0, seed=81)
    return with_random_weights(g, 1, 8, integer=True, seed=82)


def _scipy_dist(wg, source):
    g = wg.graph
    src, dst = g.edges()
    A = sp.csr_matrix((wg.weights, (src, dst)), shape=(g.num_vertices,) * 2)
    return csgraph.dijkstra(A, indices=[source])[0]


class TestWeightedDiGraph:
    def test_wraps_structure(self, wg):
        assert wg.num_vertices == wg.graph.num_vertices
        assert wg.num_edges == wg.graph.num_edges

    def test_out_in_edge_weights_agree(self, wg):
        out_view = {}
        for u in range(wg.num_vertices):
            nbrs, ws = wg.out_edges(u)
            for v, w in zip(nbrs.tolist(), ws.tolist()):
                out_view[(u, v)] = w
        for v in range(wg.num_vertices):
            nbrs, ws = wg.in_edges(v)
            for u, w in zip(nbrs.tolist(), ws.tolist()):
                assert out_view[(u, v)] == w

    def test_edge_weight_lookup(self):
        wg = from_weighted_edges(3, [(0, 1, 2.5), (1, 2, 4.0)])
        assert wg.edge_weight(0, 1) == 2.5
        with pytest.raises(KeyError):
            wg.edge_weight(0, 2)

    def test_duplicate_edges_keep_minimum(self):
        wg = from_weighted_edges(2, [(0, 1, 5.0), (0, 1, 2.0)])
        assert wg.edge_weight(0, 1) == 2.0
        assert wg.num_edges == 1

    def test_positive_weights_required(self):
        g = gen.path_graph(3, bidirectional=False)
        with pytest.raises(ValueError):
            WeightedDiGraph(g, np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            WeightedDiGraph(g, np.array([1.0]))

    def test_unit_weights(self):
        wg = with_unit_weights(gen.cycle_graph(4))
        assert (wg.weights == 1.0).all()

    def test_random_weights_deterministic(self):
        g = gen.cycle_graph(6)
        a = with_random_weights(g, seed=1)
        b = with_random_weights(g, seed=1)
        assert np.array_equal(a.weights, b.weights)
        with pytest.raises(ValueError):
            with_random_weights(g, low=0.0)


class TestDijkstra:
    def test_distances_match_scipy(self, wg):
        for s in (0, 7, 21):
            dist, _, _, _ = dijkstra_sssp(wg, s)
            assert np.allclose(dist, _scipy_dist(wg, s))

    def test_unit_weights_reduce_to_bfs(self):
        from repro.baselines.brandes import brandes_sssp

        g = gen.erdos_renyi(40, 3.0, seed=83)
        wg = with_unit_weights(g)
        d_w, s_w, _, _ = dijkstra_sssp(wg, 0)
        d_u, s_u, _, _ = brandes_sssp(g, 0)
        d_u_f = d_u.astype(float)
        d_u_f[d_u_f < 0] = np.inf
        assert np.array_equal(d_w, d_u_f)
        assert np.allclose(s_w, s_u)

    def test_sigma_counts_tied_paths(self):
        # Two 0→3 paths of equal total weight 5: via 1 (2+3) and 2 (4+1).
        wg = from_weighted_edges(
            4, [(0, 1, 2), (1, 3, 3), (0, 2, 4), (2, 3, 1)]
        )
        dist, sigma, preds, _ = dijkstra_sssp(wg, 0)
        assert dist[3] == 5.0
        assert sigma[3] == 2.0
        assert set(preds[3]) == {1, 2}

    def test_settle_order_nondecreasing(self, wg):
        dist, _, _, order = dijkstra_sssp(wg, 3)
        ds = [dist[v] for v in order]
        assert all(a <= b + 1e-12 for a, b in zip(ds, ds[1:]))


class TestWeightedBrandesVsNetworkX:
    def test_exact_bc(self, wg):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(wg.num_vertices))
        src, dst = wg.graph.edges()
        for u, v, w in zip(src.tolist(), dst.tolist(), wg.weights.tolist()):
            nxg.add_edge(u, v, weight=w)
        ref = nx.betweenness_centrality(nxg, normalized=False, weight="weight")
        refv = np.array([ref[v] for v in range(wg.num_vertices)])
        assert np.allclose(weighted_brandes_bc(wg), refv)

    def test_unit_weights_match_unweighted(self):
        from repro.baselines.brandes import brandes_bc

        g = gen.rmat(6, 4, seed=84)
        assert np.allclose(
            weighted_brandes_bc(with_unit_weights(g)), brandes_bc(g)
        )

    def test_sampled_sources(self, wg):
        srcs = [0, 5, 11]
        full = weighted_brandes_bc(wg, sources=srcs)
        assert full.shape == (wg.num_vertices,)
        with pytest.raises(ValueError):
            weighted_brandes_bc(wg, sources=[999])


class TestWeightedMFBC:
    def test_matches_weighted_brandes(self, wg):
        srcs = [0, 7, 21, 33]
        res = weighted_mfbc(wg, sources=srcs, batch_size=2, num_hosts=4)
        assert np.allclose(res.bc, weighted_brandes_bc(wg, sources=srcs))

    def test_distances_and_sigma(self, wg):
        srcs = [3, 9]
        res = weighted_mfbc(wg, sources=srcs, batch_size=2)
        for i, s in enumerate(srcs):
            dist, sigma, _, _ = dijkstra_sssp(wg, s)
            assert np.allclose(res.dist[i], dist)
            assert np.allclose(res.sigma[i], sigma)

    def test_unit_weights_match_unweighted_mfbc(self):
        from repro.baselines.mfbc import mfbc

        g = gen.erdos_renyi(30, 3.0, seed=85)
        srcs = [0, 10, 20]
        a = weighted_mfbc(with_unit_weights(g), sources=srcs, batch_size=3)
        b = mfbc(g, sources=srcs, batch_size=3)
        assert np.allclose(a.bc, b.bc)

    def test_stats_populated(self, wg):
        res = weighted_mfbc(wg, sources=[0], batch_size=1, num_hosts=4)
        assert res.iterations > 0
        assert res.run.num_rounds == res.iterations

    def test_empty_sources_rejected(self, wg):
        with pytest.raises(ValueError):
            weighted_mfbc(wg, sources=[])
