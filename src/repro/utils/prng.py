"""Seeded random-number-generator helpers.

Every stochastic component of the reproduction (graph generators, source
sampling, partition tie-breaking) draws from a :class:`numpy.random.Generator`
constructed here, so that every experiment is bit-reproducible from a single
integer seed.
"""

from __future__ import annotations

import numpy as np

#: Seed used by the benchmark harness when the caller does not supply one.
DEFAULT_SEED = 0x5EED_2019


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a NumPy ``Generator`` for ``seed``.

    Accepts an existing ``Generator`` (returned unchanged), an integer seed,
    or ``None`` (uses :data:`DEFAULT_SEED` — experiments must stay
    deterministic, so we never fall back to OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used to give each simulated host its own stream so that per-host
    randomness does not depend on host execution order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
