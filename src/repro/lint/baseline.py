"""Committed-baseline support: suppress pre-existing findings only.

The baseline is a JSON file mapping finding fingerprints (see
:meth:`repro.lint.findings.Finding.fingerprint`) to an occurrence count
plus a human-readable locator.  CI runs ``repro lint --baseline``: a
finding whose fingerprint appears in the baseline (up to its recorded
count) is suppressed; anything *new* fails the build.  Fingerprints
ignore line numbers, so unrelated edits do not churn the file.

The file is regenerated with ``repro lint --write-baseline`` and is
meant to be reviewed in diffs — shrinking is progress, growing needs a
justification (the dogfooding policy prefers an inline pragma with a
comment over a silent baseline entry).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Finding

#: Default location, relative to the project root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_FORMAT_VERSION = 1


class Baseline:
    """In-memory view of a baseline file."""

    def __init__(self, entries: dict[str, dict[str, object]] | None = None) -> None:
        #: fingerprint -> {"count": int, "code": str, "where": str}
        self.entries: dict[str, dict[str, object]] = dict(entries or {})
        #: fingerprint -> matches consumed during this run
        self._used: dict[str, int] = {}

    # -- persistence -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {_FORMAT_VERSION})"
            )
        return cls(entries=data.get("findings", {}))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries: dict[str, dict[str, object]] = {}
        for f in findings:
            fp = f.fingerprint()
            if fp in entries:
                entries[fp]["count"] = int(entries[fp]["count"]) + 1
            else:
                entries[fp] = {
                    "count": 1,
                    "code": f.code,
                    "where": f"{f.path}::{f.symbol or '<module>'}",
                }
        return cls(entries=entries)

    def dump(self, path: str | Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Pre-existing repro-lint findings suppressed in CI. "
                "Regenerate with: repro lint src tests --write-baseline. "
                "Prefer fixing or pragma-annotating over growing this file."
            ),
            "findings": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    # -- matching --------------------------------------------------------------

    def reset(self) -> None:
        """Clear per-run match bookkeeping (called at the start of a run)."""
        self._used = {}

    def matches(self, finding: Finding) -> bool:
        """Consume one baseline slot for this finding if available."""
        fp = finding.fingerprint()
        entry = self.entries.get(fp)
        if entry is None:
            return False
        used = self._used.get(fp, 0)
        if used >= int(entry.get("count", 0)):
            return False
        self._used[fp] = used + 1
        return True

    def stale_entries(self) -> dict[str, dict[str, object]]:
        """Entries never (fully) matched this run — candidates for removal."""
        out: dict[str, dict[str, object]] = {}
        for fp, entry in self.entries.items():
            if self._used.get(fp, 0) < int(entry.get("count", 0)):
                out[fp] = entry
        return out
