"""Correctness cross-checks for BC implementations.

Every algorithm in the library is validated two ways:

1. against :func:`repro.baselines.brandes.brandes_bc` (the in-repo oracle);
2. the oracle itself against NetworkX's independently implemented
   ``betweenness_centrality`` (:func:`bc_networkx`).

NetworkX normalizes and (for undirected graphs) halves scores; we use the
raw endpoint-free directed definition, matching the paper's
``BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st``, so :func:`bc_networkx` requests
``normalized=False``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.graph.builders import to_networkx
from repro.graph.digraph import DiGraph


def bc_networkx(g: DiGraph, sources: np.ndarray | list[int] | None = None) -> np.ndarray:
    """Betweenness centrality via NetworkX (independent reference).

    With ``sources``, uses NetworkX's ``betweenness_centrality_subset``
    semantics by summing per-source dependency contributions — implemented
    here through ``nx.betweenness_centrality`` when ``sources`` is None,
    and through per-source shortest-path dependency accumulation otherwise.
    """
    nxg = to_networkx(g)
    if sources is None:
        scores = nx.betweenness_centrality(nxg, normalized=False)
        return np.array([scores[v] for v in range(g.num_vertices)])
    bc = np.zeros(g.num_vertices, dtype=np.float64)
    for s in np.asarray(sources).ravel().tolist():
        # Single-source dependency accumulation (Brandes), via NetworkX
        # building blocks so the code path is independent of ours.
        sigma = {v: 0.0 for v in nxg}
        dist = {}
        preds: dict[int, list[int]] = {v: [] for v in nxg}
        sigma[s] = 1.0
        dist[s] = 0
        order = []
        frontier = [s]
        level = 0
        while frontier:
            order.extend(frontier)
            nxt = []
            level += 1
            for v in frontier:
                for w in nxg.successors(v):
                    if w not in dist:
                        dist[w] = level
                        nxt.append(w)
                    if dist[w] == level:
                        sigma[w] += sigma[v]
                        preds[w].append(v)
            frontier = nxt
        delta = {v: 0.0 for v in nxg}
        for w in reversed(order):
            for v in preds[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
        delta[s] = 0.0
        for v in nxg:
            bc[v] += delta[v]
    return bc


def max_abs_error(bc: np.ndarray, ref: np.ndarray) -> float:
    """Largest absolute difference between two BC vectors."""
    bc = np.asarray(bc, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if bc.shape != ref.shape:
        raise ValueError("BC vectors have different shapes")
    return float(np.abs(bc - ref).max(initial=0.0))


def compare_bc(
    bc: np.ndarray, ref: np.ndarray, rtol: float = 1e-9, atol: float = 1e-7
) -> bool:
    """Whether two BC vectors agree up to floating-point accumulation noise."""
    return bool(np.allclose(bc, ref, rtol=rtol, atol=atol))
