"""The rule registry and the AST analyses behind each ``RLxxx`` code.

Rule families (stable codes — baselines and pragmas depend on them):

- ``RL1xx`` **determinism** — the engine's ``repro bench`` trajectory
  gates on :meth:`EngineRun.deterministic_signature`; these rules catch
  constructs that let iteration order, entropy, or wall clocks leak into
  message emission or σ/δ accumulation.
- ``RL2xx`` **CONGEST protocol & round-loop discipline** — the
  O(log n)-bits-per-edge-per-round budget, the simulator-owned handler
  contract, the Alg. 3 flat-map schedule ``r = d_sv + ℓ``, and the rule
  that driver round loops live in :mod:`repro.runtime` only.
- ``RL3xx`` **Gluon / delayed synchronization** — §4.3's rule that a
  proxy's finalized label may be read only after the reduce/broadcast
  that proves it final.
- ``RL4xx`` **observability / resilience hygiene** — engine entry points
  must expose ``resilience=``; sinks and spans must be closed; message
  emission and byte accounting must go through the ledger-recording
  MessagePlane entry points.

Every rule is a pure function of one module's AST plus the semantic
model (:mod:`repro.lint.model`); there is no cross-module inference.
Findings carry the enclosing symbol so baselines survive line drift.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint import model
from repro.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding

# -- module analysis -----------------------------------------------------------


@dataclass
class FunctionScope:
    """One function body (nested defs excluded — they get their own scope)."""

    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Module (pseudo-scope)
    class_node: ast.ClassDef | None = None

    @property
    def name(self) -> str:
        return getattr(self.node, "name", "<module>")

    @property
    def params(self) -> list[str]:
        a = getattr(self.node, "args", None)
        if a is None:
            return []
        names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
        if a.vararg:
            names.append(a.vararg.arg)
        if a.kwarg:
            names.append(a.kwarg.arg)
        return names

    def walk(self) -> Iterator[ast.AST]:
        """Every node in this scope, not descending into nested defs."""

        def rec(n: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(n):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                yield child
                yield from rec(child)

        return rec(self.node)


class ModuleInfo:
    """Parsed module plus the derived tables every rule shares."""

    def __init__(self, path: str, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self._parents: dict[int, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        self.scopes: list[FunctionScope] = [
            FunctionScope(qualname="", node=self.tree)
        ]
        self._collect_scopes(self.tree, prefix="", class_node=None)
        self.vertex_program_classes = self._vertex_program_classes()

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def _collect_scopes(
        self, node: ast.AST, prefix: str, class_node: ast.ClassDef | None
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{prefix}{child.name}"
                self.scopes.append(
                    FunctionScope(qualname=qn, node=child, class_node=class_node)
                )
                self._collect_scopes(child, prefix=qn + ".", class_node=None)
            elif isinstance(child, ast.ClassDef):
                qn = f"{prefix}{child.name}"
                self._collect_scopes(child, prefix=qn + ".", class_node=child)
            else:
                self._collect_scopes(child, prefix=prefix, class_node=class_node)

    def _vertex_program_classes(self) -> set[str]:
        """Class names that (transitively, within this module) extend a
        CONGEST vertex-program base."""
        bases: dict[str, set[str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                bases[node.name] = {
                    t for b in node.bases if (t := terminal_name(b)) is not None
                }
        marked: set[str] = set()
        changed = True
        while changed:
            changed = False
            for cls, bs in bases.items():
                if cls in marked:
                    continue
                if bs & model.VERTEX_PROGRAM_BASES or bs & marked:
                    marked.add(cls)
                    changed = True
        return marked


def terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a dotted/called chain (``a.b.c()`` → ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    return None


def chain_root(node: ast.AST) -> ast.AST:
    """Unwrap ``a.b[x].c`` to its leftmost expression node."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def chain_has_program_subscript(node: ast.AST) -> bool:
    """Whether a chain reaches through ``programs[...]``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Subscript):
            if terminal_name(node.value) in model.PROGRAM_COLLECTION_NAMES:
                return True
        node = node.value
    return False


# -- set-valuedness ------------------------------------------------------------


def set_valued_locals(scope: FunctionScope) -> set[str]:
    """Local names this scope binds to set-valued expressions (one pass)."""
    names: set[str] = set()
    for node in scope.walk():
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if isinstance(tgt, ast.Name) and describe_set_expr(node.value, names):
                names.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ann = ast.dump(node.annotation)
            if "'set'" in ann or "'frozenset'" in ann or "'Set'" in ann:
                names.add(node.target.id)
    return names


def describe_set_expr(node: ast.AST, set_locals: set[str]) -> str | None:
    """A short description if ``node`` evaluates to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set display"
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return f"{fn.id}(...)"
        if isinstance(fn, ast.Attribute):
            if fn.attr in model.SET_RETURNING_METHODS:
                return f".{fn.attr}(...)"
            # mapping-to-sets access: preds.get(s, ...)
            if (
                fn.attr == "get"
                and terminal_name(fn.value) in model.SET_MAPPING_ATTRS
            ):
                return f"{terminal_name(fn.value)}.get(...)"
        return None
    if isinstance(node, ast.Attribute) and node.attr in model.SET_VALUED_ATTRS:
        return f".{node.attr}"
    if isinstance(node, ast.Subscript):
        base = terminal_name(node.value)
        if base in model.SET_MAPPING_ATTRS:
            return f"{base}[...]"
        return None
    if isinstance(node, ast.Name) and node.id in set_locals:
        return f"'{node.id}' (set-valued local)"
    return None


# -- emission-scope classification ---------------------------------------------


def emission_scope_reason(scope: FunctionScope) -> str | None:
    """Why this scope is order-sensitive, or None.

    A scope is *message-emitting* when iteration order inside it can leak
    into what crosses the network or into a float accumulation: CONGEST
    send handlers, functions that drive a Gluon sync or open engine
    rounds, functions that stage items into per-host reduce/broadcast
    buffers, and functions that fold into σ/δ/BC accumulators.
    """
    if scope.name == "compute_sends":
        return "a CONGEST send handler"
    for node in scope.walk():
        if isinstance(node, ast.Call):
            t = terminal_name(node.func)
            if t in model.SYNC_PRIMITIVES or t in model.ROUND_OPENERS:
                return f"calls {t}()"
            if (
                t in ("append", "extend")
                and isinstance(node.func, ast.Attribute)
                and (recv := terminal_name(node.func.value)) is not None
                and model.EMISSION_BUFFER_RE.search(recv)
            ):
                return f"stages messages into '{recv}'"
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            t = terminal_name(node.target)
            if t is not None and model.ACCUMULATOR_RE.search(t):
                return f"accumulates into '{t}'"
    return None


# -- the registry --------------------------------------------------------------


@dataclass
class Rule:
    code: str
    name: str
    severity: str
    summary: str
    #: Callable (rule, ModuleInfo) -> Iterable[Finding] for module-scope
    #: rules; (rule, Program) -> Iterable[Finding] for program scope.
    check: object = field(repr=False, default=None)
    #: "module" rules run per file in :func:`run_rules`; "program" rules
    #: run once over the whole-program model (repro.lint.dataflow).
    scope: str = "module"

    def finding(
        self, mod: ModuleInfo, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        return Finding(
            code=self.code,
            severity=self.severity,
            path=mod.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=symbol,
        )


RULES: dict[str, Rule] = {}


def register(code: str, name: str, severity: str, summary: str, scope: str = "module"):
    def deco(fn):
        RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            summary=summary,
            check=fn,
            scope=scope,
        )
        return fn

    return deco


def run_rules(mod: ModuleInfo, enabled: Iterable[str] | None = None) -> list[Finding]:
    """Run (the module-scope subset of) the registry over one module.

    Program-scope rules need the whole-program model and run in
    :func:`repro.lint.dataflow.run_program_rules` instead.
    """
    out: list[Finding] = []
    for code in sorted(RULES):
        if enabled is not None and code not in enabled:
            continue
        rule = RULES[code]
        if rule.scope != "module":
            continue
        out.extend(rule.check(rule, mod))
    return out


# -- RL1xx: determinism --------------------------------------------------------


@register(
    "RL101",
    "set-iteration-in-emission",
    SEVERITY_ERROR,
    "unordered set iteration inside a message-emitting or accumulating "
    "scope — wrap the iterable in sorted()",
)
def _rl101(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    for scope in mod.scopes:
        reason = emission_scope_reason(scope)
        if reason is None:
            continue
        set_locals = set_valued_locals(scope)
        for node in scope.walk():
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(g.iter for g in node.generators)
            elif (
                isinstance(node, ast.Call)
                and terminal_name(node.func) in model.ORDER_PRESERVING_CONSUMERS
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                desc = describe_set_expr(it, set_locals)
                if desc is not None:
                    yield rule.finding(
                        mod,
                        it,
                        f"iteration over unordered set {desc} in "
                        f"'{scope.qualname}' ({reason}); set order can leak "
                        "into message emission/accumulation order — iterate "
                        "sorted(...) instead",
                        symbol=scope.qualname,
                    )


@register(
    "RL102",
    "unseeded-randomness",
    SEVERITY_ERROR,
    "global/unseeded RNG reachable from engine code — use "
    "repro.utils.prng.make_rng(seed)",
)
def _rl102(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath):
        return
    for scope in mod.scopes:
        for node in scope.walk():
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            fn = node.func
            base = terminal_name(fn.value)
            if base == "random" and isinstance(
                chain_root(fn.value), ast.Name
            ):
                # random.<fn>() module-level API, or np.random.<fn>().
                if fn.attr in model.SEEDED_RNG_FACTORIES:
                    if node.args or node.keywords:
                        continue
                    what = f"{fn.attr}() without a seed"
                else:
                    what = f"random.{fn.attr}()"
                yield rule.finding(
                    mod,
                    node,
                    f"{what} draws from global/OS entropy; runs become "
                    "unreproducible and EngineRun.deterministic_signature "
                    "can drift — derive a Generator via "
                    "repro.utils.prng.make_rng(seed)",
                    symbol=scope.qualname,
                )


@register(
    "RL103",
    "wall-clock-in-deterministic-path",
    SEVERITY_ERROR,
    "wall-clock read outside the telemetry/analysis layers — simulated "
    "time must come from ClusterModel",
)
def _rl103(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or model.path_matches(
        mod.relpath, model.CLOCK_EXEMPT_PARTS
    ):
        return
    for scope in mod.scopes:
        for node in scope.walk():
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            pair = (terminal_name(node.func.value), node.func.attr)
            if pair in model.CLOCK_CALLS:
                yield rule.finding(
                    mod,
                    node,
                    f"{pair[0]}.{pair[1]}() reads the wall clock in a "
                    "deterministic engine path; timings belong to the obs "
                    "layer, simulated time to repro.cluster.model",
                    symbol=scope.qualname,
                )


# -- RL2xx: CONGEST protocol ---------------------------------------------------


@register(
    "RL201",
    "unbounded-congest-payload",
    SEVERITY_ERROR,
    "CONGEST payload carries a container — each message is limited to "
    "O(log n) bits per edge per round",
)
def _rl201(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    for scope in mod.scopes:
        if (
            scope.class_node is None
            or scope.class_node.name not in mod.vertex_program_classes
            or scope.name != "compute_sends"
        ):
            continue
        for node in scope.walk():
            if not isinstance(node, ast.Tuple):
                continue
            for elt in node.elts:
                bad = None
                if isinstance(
                    elt,
                    (
                        ast.List,
                        ast.Set,
                        ast.Dict,
                        ast.ListComp,
                        ast.SetComp,
                        ast.DictComp,
                        ast.GeneratorExp,
                    ),
                ):
                    bad = "a container display"
                elif isinstance(elt, ast.Call) and terminal_name(elt.func) in (
                    "list",
                    "set",
                    "dict",
                ):
                    bad = f"{terminal_name(elt.func)}(...)"
                if bad is not None:
                    yield rule.finding(
                        mod,
                        elt,
                        f"CONGEST payload element is {bad}: one message may "
                        "carry only O(log n) bits (a constant number of "
                        "words) per round — send per-value messages across "
                        "rounds instead",
                        symbol=scope.qualname,
                    )


@register(
    "RL202",
    "direct-program-state-mutation",
    SEVERITY_ERROR,
    "vertex state mutated without a message — all cross-vertex effects "
    "must travel through CongestNetwork channels",
)
def _rl202(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.path_matches(mod.relpath, model.CONGEST_NETWORK_PARTS):
        return  # the simulator itself owns handler invocation
    for scope in mod.scopes:
        # (a) invoking simulator-owned hooks through programs[...]
        for node in scope.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in model.CONGEST_HANDLER_METHODS
                and chain_has_program_subscript(node.func.value)
            ):
                yield rule.finding(
                    mod,
                    node,
                    f"direct call of {node.func.attr}() on another vertex's "
                    "program bypasses channel delivery, round accounting, "
                    "and the resilience guard — send a message through "
                    "CongestNetwork instead",
                    symbol=scope.qualname,
                )
            # stores through programs[...]
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                if isinstance(
                    tgt, (ast.Attribute, ast.Subscript)
                ) and chain_has_program_subscript(tgt):
                    yield rule.finding(
                        mod,
                        tgt,
                        "assignment into another vertex's program state "
                        "bypasses the CONGEST message model — only the "
                        "owning vertex may mutate its state, via "
                        "handle_message",
                        symbol=scope.qualname,
                    )
        # (b) vertex-program methods writing through foreign parameters
        if (
            scope.class_node is not None
            and scope.class_node.name in mod.vertex_program_classes
        ):
            foreign = {p for p in scope.params if p != "self"}
            for node in scope.walk():
                targets = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for tgt in targets:
                    if not isinstance(tgt, (ast.Attribute, ast.Subscript)):
                        continue
                    root = chain_root(tgt)
                    if isinstance(root, ast.Name) and root.id in foreign:
                        yield rule.finding(
                            mod,
                            tgt,
                            f"vertex program writes through parameter "
                            f"'{root.id}' — state it does not own; "
                            "cross-vertex effects must be messages",
                            symbol=scope.qualname,
                        )


def _add_chain_leaves(node: ast.AST) -> list[ast.AST]:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _add_chain_leaves(node.left) + _add_chain_leaves(node.right)
    return [node]


@register(
    "RL203",
    "flatmap-schedule-deviation",
    SEVERITY_ERROR,
    "fire-round arithmetic deviates from Alg. 3's r = d + position + 1 "
    "flat-map schedule",
)
def _rl203(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    for scope in mod.scopes:
        for node in scope.walk():
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
                continue
            parent = mod.parent(node)
            if (
                isinstance(parent, ast.BinOp)
                and isinstance(parent.op, ast.Add)
            ):
                continue  # only maximal + chains
            leaves = _add_chain_leaves(node)
            names: set[str] = set()
            const = 0
            opaque = False
            for leaf in leaves:
                if isinstance(leaf, ast.Constant):
                    if isinstance(leaf.value, int) and not isinstance(
                        leaf.value, bool
                    ):
                        const += leaf.value
                    else:
                        opaque = True
                elif isinstance(leaf, (ast.Name, ast.Attribute)):
                    t = terminal_name(leaf)
                    if t is not None:
                        names.add(t)
                else:
                    opaque = True
            if opaque:
                continue
            if not (
                names & model.SCHEDULE_POSITION_NAMES
                and names & model.SCHEDULE_DISTANCE_NAMES
            ):
                continue
            if const != model.SCHEDULE_CONSTANT:
                yield rule.finding(
                    mod,
                    node,
                    f"fire-round expression 'distance + position + "
                    f"{const}' deviates from the flat-map schedule "
                    "r = d + position + 1 (Alg. 3; checked at runtime as "
                    "the timestamp_schedule invariant) — a late or early "
                    "fire breaks Lemma 2's stable-prefix argument",
                    symbol=scope.qualname,
                )


def _loop_descendants(loop: ast.AST) -> Iterator[ast.AST]:
    """Every node under ``loop``, not descending into nested defs."""
    for child in ast.iter_child_nodes(loop):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield child
        yield from _loop_descendants(child)


@register(
    "RL204",
    "driver-bypasses-superstep-runtime",
    SEVERITY_ERROR,
    "hand-rolled round loop outside repro.runtime — drivers must execute "
    "rounds through SuperstepRuntime.run_loop",
)
def _rl204(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or model.path_matches(
        mod.relpath, model.ROUND_LOOP_EXEMPT_PARTS
    ):
        return
    for scope in mod.scopes:
        in_vertex_program = (
            scope.class_node is not None
            and scope.class_node.name in mod.vertex_program_classes
        )
        for node in scope.walk():
            if not isinstance(node, (ast.While, ast.For)):
                continue
            # Report only the outermost qualifying loop: a parent loop in
            # this scope contains everything this one does.
            anc = mod.parent(node)
            nested = False
            while anc is not None and anc is not scope.node:
                if isinstance(anc, (ast.While, ast.For)):
                    nested = True
                    break
                anc = mod.parent(anc)
            if nested:
                continue
            for inner in _loop_descendants(node):
                if not isinstance(inner, ast.Call):
                    continue
                t = terminal_name(inner.func)
                if t in model.ROUND_OPENERS:
                    what = f"{t}()"
                elif t == "compute_sends" and not in_vertex_program:
                    # A vertex program may delegate to a sub-program's
                    # compute_sends; outside one, invoking the handler in
                    # a loop is a hand-rolled CONGEST round driver.
                    what = "compute_sends()"
                else:
                    continue
                yield rule.finding(
                    mod,
                    node,
                    f"loop in '{scope.qualname}' drives rounds by hand "
                    f"(calls {what}); round loops live in "
                    "SuperstepRuntime — pass a step callback to "
                    "runtime.run_loop(...) so termination, round "
                    "accounting, and recovery policies stay in one place",
                    symbol=scope.qualname,
                )
                break


# -- RL3xx: Gluon / delayed synchronization ------------------------------------


@register(
    "RL301",
    "proxy-read-before-sync",
    SEVERITY_ERROR,
    "finalized proxy label read before any reduce/broadcast in the "
    "function — §4.3: labels are valid only after the sync that proves "
    "them final",
)
def _rl301(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath):
        return
    for scope in mod.scopes:
        if scope.name in ("__init__", "<module>"):
            continue  # allocation/initialization scope
        sync_lines = [
            node.lineno
            for node in scope.walk()
            if isinstance(node, ast.Call)
            and terminal_name(node.func) in model.SYNC_PRIMITIVES
        ]
        first_sync = min(sync_lines) if sync_lines else None
        for node in scope.walk():
            if (
                not isinstance(node, ast.Attribute)
                or node.attr not in model.PROXY_FINAL_FIELDS
            ):
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                continue  # direct (re)binding
            parent = mod.parent(node)
            if isinstance(parent, ast.Subscript) and isinstance(
                parent.ctx, (ast.Store, ast.Del)
            ):
                continue  # delivery write: st.fin_dist[...] = value
            if first_sync is not None and node.lineno >= first_sync:
                continue
            where = (
                "before the first reduce/broadcast"
                if first_sync is not None
                else "in a function that never synchronizes"
            )
            yield rule.finding(
                mod,
                node,
                f"read of finalized proxy label '.{node.attr}' {where}: "
                "under delayed synchronization the value may be "
                "provisional until reduce_to_masters/"
                "broadcast_from_masters has run (§4.3)",
                symbol=scope.qualname,
            )


# -- RL4xx: observability / resilience hygiene ---------------------------------


@register(
    "RL401",
    "entry-point-missing-resilience",
    SEVERITY_WARNING,
    "engine entry point does not accept resilience= — fault injection "
    "and recovery cannot reach this driver",
)
def _rl401(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath):
        return
    for scope in mod.scopes:
        if not isinstance(scope.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if scope.class_node is not None or scope.name.startswith("_"):
            continue
        if not model.ENGINE_ENTRY_RE.match(scope.name):
            continue
        if model.RESILIENCE_PARAM not in scope.params:
            yield rule.finding(
                mod,
                scope.node,
                f"engine entry point '{scope.name}' has no "
                f"'{model.RESILIENCE_PARAM}=' parameter; every driver must "
                "plumb the ResilienceContext into its GluonSubstrate so "
                "fault plans and invariant checks can attach",
                symbol=scope.qualname,
            )


@register(
    "RL402",
    "span-or-sink-leak",
    SEVERITY_WARNING,
    "telemetry sink constructed without close/with/session ownership, or "
    "span opened outside a with block",
)
def _rl402(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.path_matches(mod.relpath, model.OBS_IMPL_PARTS):
        return  # the implementation layer manages its own lifecycles
    for scope in mod.scopes:
        with_names: set[str] = set()
        with_call_ids: set[int] = set()
        closed_names: set[str] = set()
        transferred: set[str] = set()
        escaped: set[str] = set()
        for node in scope.walk():
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ce = item.context_expr
                    with_call_ids.add(id(ce))
                    if isinstance(ce, ast.Name):
                        with_names.add(ce.id)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and isinstance(node.func.value, ast.Name)
                ):
                    closed_names.add(node.func.value.id)
                if terminal_name(node.func) in model.SINK_OWNERSHIP_TRANSFERS:
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        if isinstance(arg, ast.Name):
                            transferred.add(arg.id)
                        with_call_ids.add(id(arg))
            elif isinstance(node, ast.Return) and isinstance(
                node.value, ast.Name
            ):
                escaped.add(node.value.id)
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Attribute) and isinstance(
                        node.value, ast.Name
                    ):
                        escaped.add(node.value.id)  # self.sink = sink

        for node in scope.walk():
            if not isinstance(node, ast.Call):
                continue
            t = terminal_name(node.func)
            if t in model.SINK_CONSTRUCTORS:
                if id(node) in with_call_ids:
                    continue
                parent = mod.parent(node)
                bound: str | None = None
                if isinstance(parent, ast.Assign) and all(
                    isinstance(x, ast.Name) for x in parent.targets
                ):
                    bound = parent.targets[0].id
                elif isinstance(parent, ast.withitem):
                    continue
                if bound is not None and (
                    bound in with_names
                    or bound in closed_names
                    or bound in transferred
                    or bound in escaped
                ):
                    continue
                yield rule.finding(
                    mod,
                    node,
                    f"{t}(...) is never closed in '{scope.qualname}': use "
                    "'with', call .close(), or hand it to obs.session(...) "
                    "— an unflushed sink drops buffered telemetry events",
                    symbol=scope.qualname,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in model.SPAN_OPENERS
                and isinstance(node.func.value, (ast.Name, ast.Attribute))
            ):
                parent = mod.parent(node)
                if isinstance(parent, ast.withitem) or id(node) in with_call_ids:
                    continue
                if isinstance(parent, (ast.Expr, ast.Assign)):
                    yield rule.finding(
                        mod,
                        node,
                        f".{node.func.attr}(...) opens a span context "
                        "manager but is not entered with 'with' — the span "
                        "never closes and its subtree is orphaned in the "
                        "trace",
                        symbol=scope.qualname,
                    )


@register(
    "RL403",
    "ledger-bypassing-emission",
    SEVERITY_ERROR,
    "message emission or byte accounting bypasses the ledger-recording "
    "MessagePlane entry points — CommLedger totals would drift from "
    "RoundStats/MessageStats",
)
def _rl403(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or model.path_matches(
        mod.relpath, model.LEDGER_ENTRY_PARTS
    ):
        return  # the accounting chokepoints themselves
    for scope in mod.scopes:
        for node in scope.walk():
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                t = node.func.attr
                if (
                    t in model.SYNC_PRIMITIVES
                    and terminal_name(node.func.value)
                    in model.SUBSTRATE_RECEIVER_NAMES
                ):
                    recv = terminal_name(node.func.value)
                    yield rule.finding(
                        mod,
                        node,
                        f"{t}() invoked on raw substrate '{recv}' — drivers "
                        "must synchronize through the MessagePlane so the "
                        "comm ledger records every pair message; reaching "
                        "under the plane desynchronizes ledger and "
                        "RoundStats accounting",
                        symbol=scope.qualname,
                    )
                elif t in model.CHANNEL_RECORDERS:
                    yield rule.finding(
                        mod,
                        node,
                        f"{t}() called outside the CONGEST message plane: a "
                        "MessageStats record with no matching CommLedger "
                        "record breaks the ledger-vs-stats reconciliation "
                        "that 'repro comm --check' enforces",
                        symbol=scope.qualname,
                    )
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.value, ast.Attribute)
                    and tgt.value.attr in model.BYTE_ACCOUNT_FIELDS
                ):
                    yield rule.finding(
                        mod,
                        tgt,
                        f"direct write to '.{tgt.value.attr}[...]' charges "
                        "wire bytes the comm ledger never sees — byte "
                        "accounting belongs to the MessagePlane entry "
                        "points (GluonSubstrate._account, "
                        "CongestPlane.exchange_round, retransmit charging)",
                        symbol=scope.qualname,
                    )


def _caught_exception_names(node: ast.AST | None) -> frozenset[str]:
    """Class names a handler's ``except <type>`` clause catches."""
    if node is None:
        return frozenset()
    if isinstance(node, ast.Tuple):
        out: set[str] = set()
        for elt in node.elts:
            out |= _caught_exception_names(elt)
        return frozenset(out)
    t = terminal_name(node)
    return frozenset() if t is None else frozenset({t})


@register(
    "RL404",
    "swallowed-resilience-error",
    SEVERITY_ERROR,
    "resilience error caught and swallowed — neither re-raised nor "
    "routed into the recovery machinery, so an injected fault would "
    "vanish silently and the run would continue on corrupt state",
)
def _rl404(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or model.path_matches(
        mod.relpath, model.RESILIENCE_HANDLER_EXEMPT_PARTS
    ):
        return  # the recovery machinery / verdict glue terminates errors
    for scope in mod.scopes:
        for node in scope.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _caught_exception_names(node.type)
            hit = sorted(caught & model.RESILIENCE_ERROR_NAMES)
            if not hit:
                continue
            routed = False
            for inner in ast.walk(node):
                if isinstance(inner, ast.Raise):
                    routed = True
                    break
                if (
                    isinstance(inner, ast.Call)
                    and terminal_name(inner.func)
                    in model.RESILIENCE_ROUTING_NAMES
                ):
                    routed = True
                    break
            if routed:
                continue
            yield rule.finding(
                mod,
                node,
                f"handler catches {', '.join(hit)} but neither re-raises "
                "nor routes it into the recovery machinery "
                f"({'/'.join(sorted(model.RESILIENCE_ROUTING_NAMES))}); "
                "swallowing a resilience error hides an injected fault "
                "and lets the run continue on unrecovered state",
                symbol=scope.qualname or "<module>",
            )


@register(
    "RL405",
    "shadow-round-accounting",
    SEVERITY_WARNING,
    "driver maintains an ad-hoc round counter or frontier tally — state "
    "the superstep runtime and the round ledger already own; a shadow "
    "count drifts under recovery rounds, crash replays, or early "
    "termination",
)
def _rl405(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or model.path_matches(
        mod.relpath, model.ROUND_STATE_EXEMPT_PARTS
    ):
        return  # the runtime/ledger/stats layers own these counts
    for scope in mod.scopes:
        for node in scope.walk():
            if not isinstance(node, ast.AugAssign) or not isinstance(
                node.op, ast.Add
            ):
                continue
            name = terminal_name(node.target)
            if name is None:
                continue
            by_one = (
                isinstance(node.value, ast.Constant) and node.value.value == 1
            )
            if by_one and model.ROUND_COUNTER_RE.search(name):
                yield rule.finding(
                    mod,
                    node,
                    f"'{name} += 1' is an ad-hoc round counter — the "
                    "superstep runtime counts rounds (run_loop returns "
                    "the count; EngineRun.num_rounds and the RoundLedger "
                    "persist it); a shadow tally drifts when recovery "
                    "rounds or crash replays change the loop shape",
                    symbol=scope.qualname or "<module>",
                )
            elif model.FRONTIER_TALLY_RE.search(name):
                yield rule.finding(
                    mod,
                    node,
                    f"augmented addition on '{name}' accumulates a "
                    "frontier/settlement tally — per-round algorithm "
                    "state the round ledger owns; report it via "
                    "RoundLedger.note(frontier=..., settled=...) and "
                    "read it back from UnitRounds/RoundState",
                    symbol=scope.qualname or "<module>",
                )


# -- RL5xx/RL6xx: interprocedural readiness (module-scope halves) --------------
#
# RL501/RL502 (vectorization) and RL602/RL603 (parallel safety) are the
# per-module halves of the dataflow rule families; RL503 and RL601 need
# the whole-program call graph and live in repro.lint.dataflow.


def _alias_source(value: ast.AST) -> str | None:
    """The state-container attr this expression aliases, or None.

    Covers direct attribute reads (``st.local_lists``), subscript reads
    (``st.local_lists[lid]``, ``self.hosts[h]``), and ``.get()``/
    ``.setdefault()`` lookups (``self.masters.get(gid)``).
    """
    if isinstance(value, ast.Attribute) and value.attr in model.STATE_CONTAINER_ATTRS:
        return value.attr
    if isinstance(value, ast.Subscript):
        t = terminal_name(value.value)
        if t in model.STATE_CONTAINER_ATTRS:
            return t
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr in ("get", "setdefault")
    ):
        t = terminal_name(value.func.value)
        if t in model.STATE_CONTAINER_ATTRS:
            return t
    return None


@register(
    "RL501",
    "aliased-state-escape",
    SEVERITY_ERROR,
    "reference to a mutable per-source state container escapes its "
    "owning structure — pins the dict/list representation the columnar "
    "GluonPlane refactor replaces",
)
def _rl501(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or not model.path_matches(
        mod.relpath, model.STATE_MODULE_PARTS
    ):
        return
    module_funcs = {s.name for s in mod.scopes if s.qualname and "." not in s.qualname}
    for scope in mod.scopes:
        if not scope.qualname:
            continue
        aliases: dict[str, str] = {}
        for node in scope.walk():
            if isinstance(node, ast.Assign):
                src = _alias_source(node.value)
                if src is None:
                    continue
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        aliases[tgt.id] = src
        if not aliases:
            continue
        for node in scope.walk():
            if isinstance(node, ast.Assign):
                val = node.value
                if not (isinstance(val, ast.Name) and val.id in aliases):
                    continue
                src = aliases[val.id]
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and tgt.attr not in model.STATE_CONTAINER_ATTRS
                    ):
                        yield rule.finding(
                            mod,
                            tgt,
                            f"alias '{val.id}' of state container "
                            f"'.{src}' is stored onto '.{tgt.attr}' — the "
                            "reference now outlives the plane's view of the "
                            "state and pins its mutable representation "
                            "(blocks the columnar rewrite, ROADMAP item 1)",
                            symbol=scope.qualname,
                        )
                    elif isinstance(tgt, ast.Subscript):
                        base = terminal_name(tgt.value)
                        if base not in model.STATE_CONTAINER_ATTRS:
                            yield rule.finding(
                                mod,
                                tgt,
                                f"alias '{val.id}' of state container "
                                f"'.{src}' is stored into "
                                f"'{base or '<expr>'}[...]' outside the "
                                "state family — an escaped reference the "
                                "vectorized plane cannot track",
                                symbol=scope.qualname,
                            )
            elif isinstance(node, ast.Call):
                t = terminal_name(node.func)
                if (
                    t in model.ALIAS_SAFE_CALLS
                    or t in model.RUNTIME_SEAM_CALLS
                    or t in module_funcs
                ):
                    continue
                root = chain_root(node.func)
                if isinstance(root, ast.Name) and root.id == "self":
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in aliases
                ):
                    continue  # method on the alias itself
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in aliases:
                        yield rule.finding(
                            mod,
                            arg,
                            f"alias '{arg.id}' of state container "
                            f"'.{aliases[arg.id]}' is passed to "
                            f"'{t or '<expr>'}(...)' — outside the plane "
                            "API and this module, the callee may retain or "
                            "mutate the raw container behind the plane's "
                            "back",
                            symbol=scope.qualname,
                        )


def _scope_bound(scope: FunctionScope) -> set[str]:
    """Names this scope binds: params, stores, imports, nested def/class
    names (without descending into the nested bodies)."""
    bound = set(scope.params)

    def rec(n: ast.AST) -> None:
        for child in ast.iter_child_nodes(n):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(child.name)
                continue
            if isinstance(child, ast.Name) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                bound.add(child.id)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            rec(child)

    rec(scope.node)
    return bound


def _captured_names(node: ast.AST, outer_bound: set[str]) -> set[str]:
    """Outer-scope bindings a nested def/lambda closes over."""
    params: set[str] = set()
    a = getattr(node, "args", None)
    if a is not None:
        params = {p.arg for p in a.posonlyargs + a.args + a.kwonlyargs}
        if a.vararg:
            params.add(a.vararg.arg)
        if a.kwarg:
            params.add(a.kwarg.arg)
    inner_bound = set(params)
    loads: set[str] = set()
    nonlocals: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if isinstance(sub.ctx, ast.Load):
                loads.add(sub.id)
            else:
                inner_bound.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if sub is not node:
                inner_bound.add(sub.name)
        elif isinstance(sub, ast.Nonlocal):
            nonlocals.update(sub.names)
    inner_bound -= nonlocals
    return ((loads & outer_bound) - inner_bound) | (nonlocals & outer_bound)


@register(
    "RL502",
    "stateful-closure-escape",
    SEVERITY_WARNING,
    "closure capturing driver state escapes past the runtime seams — "
    "captured state leaves the plane API's sight",
)
def _rl502(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or not model.path_matches(
        mod.relpath, model.STATE_MODULE_PARTS
    ):
        return
    module_funcs = {s.name for s in mod.scopes if s.qualname and "." not in s.qualname}
    safe_calls = (
        model.RUNTIME_SEAM_CALLS | model.CLOSURE_SAFE_BUILTINS | module_funcs
    )
    bound_by_qual = {s.qualname: _scope_bound(s) for s in mod.scopes if s.qualname}
    # closure name -> captured set, per defining scope qualname
    captures: dict[str, dict[str, set[str]]] = {}
    for s in mod.scopes:
        if not s.qualname or "." not in s.qualname:
            continue
        parent_qn = s.qualname.rsplit(".", 1)[0]
        parent_bound = bound_by_qual.get(parent_qn)
        if parent_bound is None:
            continue  # a method: the enclosing "scope" is a class
        captures.setdefault(parent_qn, {})[s.name] = _captured_names(
            s.node, parent_bound
        )

    def call_context(node: ast.AST) -> ast.Call | None:
        """The Call this node is an argument of (directly or via keyword)."""
        parent = mod.parent(node)
        if isinstance(parent, ast.keyword):
            parent = mod.parent(parent)
        if isinstance(parent, ast.Call) and node is not parent.func:
            return parent
        return None

    for scope in mod.scopes:
        if not scope.qualname:
            continue
        # closures visible here: defined in this scope or an ancestor
        visible: dict[str, set[str]] = {}
        qn = scope.qualname
        chain = [qn]
        while "." in qn:
            qn = qn.rsplit(".", 1)[0]
            chain.append(qn)
        for anc in reversed(chain):
            visible.update(captures.get(anc, {}))
        scope_bound = bound_by_qual[scope.qualname]

        for node in scope.walk():
            if isinstance(node, ast.Lambda):
                cap = _captured_names(node, scope_bound)
                if not cap:
                    continue
                call = call_context(node)
                if call is not None:
                    t = terminal_name(call.func)
                    if t in safe_calls:
                        continue
                    root = chain_root(call.func)
                    if isinstance(root, ast.Name) and root.id == "self":
                        continue
                    yield rule.finding(
                        mod,
                        node,
                        f"lambda capturing {{{', '.join(sorted(cap))}}} is "
                        f"passed to '{t or '<expr>'}(...)' — captured driver "
                        "state escapes the runtime seams "
                        f"({'/'.join(sorted(model.RUNTIME_SEAM_CALLS))})",
                        symbol=scope.qualname,
                    )
                continue
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            cap = visible.get(node.id)
            if not cap:
                continue
            parent = mod.parent(node)
            call = call_context(node)
            if call is not None:
                t = terminal_name(call.func)
                if t in safe_calls:
                    continue
                root = chain_root(call.func)
                if isinstance(root, ast.Name) and root.id == "self":
                    continue
                yield rule.finding(
                    mod,
                    node,
                    f"closure '{node.id}' (captures "
                    f"{{{', '.join(sorted(cap))}}}) is passed to "
                    f"'{t or '<expr>'}(...)' — a stateful closure may only "
                    "be handed to the runtime seams "
                    f"({'/'.join(sorted(model.RUNTIME_SEAM_CALLS))}), "
                    "order/aggregation builtins, or same-module helpers",
                    symbol=scope.qualname,
                )
            elif isinstance(parent, ast.Return):
                yield rule.finding(
                    mod,
                    node,
                    f"closure '{node.id}' (captures "
                    f"{{{', '.join(sorted(cap))}}}) is returned — the "
                    "captured driver state outlives the call and leaves "
                    "the plane API's sight",
                    symbol=scope.qualname,
                )
            elif isinstance(parent, ast.Assign) and node is parent.value:
                for tgt in parent.targets:
                    if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                        yield rule.finding(
                            mod,
                            node,
                            f"closure '{node.id}' (captures "
                            f"{{{', '.join(sorted(cap))}}}) is stored into "
                            "a structure — captured driver state escapes "
                            "the defining scope",
                            symbol=scope.qualname,
                        )


def _telemetry_receiver_hit(tgt: ast.AST) -> str | None:
    """The telemetry/ledger receiver this store writes *through*, if any.

    Binding the receiver itself (``self.tele = Telemetry()``) is not a
    write through it; ``tele.counts[k] = v`` and ``tele.rounds += 1``
    are.  ``obs.current().x = ...`` counts via the ``current()`` chain.
    """
    recv = model.TELEMETRY_RECEIVER_NAMES | model.LEDGER_RECEIVER_NAMES
    node: ast.AST = tgt
    outermost = True
    while True:
        if isinstance(node, ast.Attribute):
            if node.attr in recv and not outermost:
                return node.attr
            outermost = False
            node = node.value
        elif isinstance(node, ast.Subscript):
            outermost = False
            node = node.value
        elif isinstance(node, ast.Call):
            if terminal_name(node.func) == "current":
                return "current()"
            outermost = False
            node = node.func
        elif isinstance(node, ast.Name):
            if node.id in recv and not outermost:
                return node.id
            return None
        else:
            return None


@register(
    "RL602",
    "telemetry-store-off-seam",
    SEVERITY_ERROR,
    "direct field store through a shared Telemetry/ledger object — "
    "cross-process shared state under a real backend; writes must go "
    "through the recording seams (note()/record()/observe())",
)
def _rl602(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or model.path_matches(
        mod.relpath,
        model.TELEMETRY_IMPL_PARTS
        + model.RUNTIME_IMPL_PARTS
        + ("repro/resilience/",),
    ):
        return
    for scope in mod.scopes:
        for node in scope.walk():
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                if not isinstance(tgt, (ast.Attribute, ast.Subscript)):
                    continue
                hit = _telemetry_receiver_hit(tgt)
                if hit is not None:
                    yield rule.finding(
                        mod,
                        tgt,
                        f"direct store through shared telemetry/ledger "
                        f"receiver '{hit}' — under a multi-worker backend "
                        "(ROADMAP item 2) this is cross-process shared "
                        "state; record through the seams the runtime "
                        "marshals (note()/record()/observe()) instead",
                        symbol=scope.qualname or "<module>",
                    )


def _host_loop_iter(it: ast.AST) -> str | None:
    """The host collection a For statement iterates, or None."""
    if (
        isinstance(it, ast.Call)
        and terminal_name(it.func) == "enumerate"
        and it.args
    ):
        it = it.args[0]
    t = terminal_name(it)
    return t if t in model.HOST_COLLECTION_NAMES else None


@register(
    "RL603",
    "cross-host-subscript",
    SEVERITY_ERROR,
    "host collection subscripted with a non-loop index inside a loop "
    "over hosts — reads another host's state without a barrier; only "
    "works because today's backend shares one address space",
)
def _rl603(rule: Rule, mod: ModuleInfo) -> Iterator[Finding]:
    if model.is_test_path(mod.relpath) or model.path_matches(
        mod.relpath, model.CROSS_HOST_EXEMPT_PARTS
    ):
        return
    if not model.path_matches(mod.relpath, model.STATE_MODULE_PARTS):
        return

    def scan(loop: ast.For, bound: set[str]) -> Iterator[tuple[ast.AST, str]]:
        bound = bound | {
            n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)
        }

        def rec(n: ast.AST) -> Iterator[tuple[ast.AST, str]]:
            for child in ast.iter_child_nodes(n):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(child, ast.For) and _host_loop_iter(child.iter):
                    yield from scan(child, bound)
                    continue
                if isinstance(child, ast.Subscript):
                    base = terminal_name(child.value)
                    if (
                        base in model.HOST_COLLECTION_NAMES
                        and not isinstance(child.slice, ast.Slice)
                        and not (
                            isinstance(child.slice, ast.Name)
                            and child.slice.id in bound
                        )
                    ):
                        yield child, base
                yield from rec(child)

        yield from rec(loop)

    for scope in mod.scopes:
        for node in scope.walk():
            if not (isinstance(node, ast.For) and _host_loop_iter(node.iter)):
                continue
            anc = mod.parent(node)
            nested = False
            while anc is not None and anc is not scope.node:
                if isinstance(anc, ast.For) and _host_loop_iter(anc.iter):
                    nested = True
                    break
                anc = mod.parent(anc)
            if nested:
                continue
            for sub, base in scan(node, set()):
                idx = (
                    terminal_name(sub.slice)
                    if isinstance(sub.slice, (ast.Name, ast.Attribute))
                    else None
                )
                yield rule.finding(
                    mod,
                    sub,
                    f"'{base}[{idx or '...'}]' indexed with a non-loop "
                    "value inside a loop over hosts — a barrier-bypassing "
                    "cross-host access; under the multiprocessing backend "
                    "(ROADMAP item 2) another host's state is in another "
                    "process, so route this through the MessagePlane",
                    symbol=scope.qualname or "<module>",
                )


