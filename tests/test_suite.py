"""Unit tests for repro.graph.suite (the Table 1 stand-ins)."""

import pytest

from repro.graph.properties import directed_diameter, graph_properties
from repro.graph.suite import SUITE, load_suite_graph, suite_names


class TestSuiteStructure:
    def test_all_eight_inputs_present(self):
        assert set(SUITE) == {
            "livejournal",
            "indochina04",
            "rmat24",
            "road-europe",
            "friendster",
            "kron30",
            "gsh15",
            "clueweb12",
        }

    def test_size_classes_match_paper(self):
        assert set(suite_names("small")) == {
            "livejournal",
            "indochina04",
            "rmat24",
            "road-europe",
            "friendster",
        }
        assert set(suite_names("large")) == {"kron30", "gsh15", "clueweb12"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_suite_graph("nope")

    def test_cache_returns_same_object(self):
        assert load_suite_graph("rmat24") is load_suite_graph("rmat24")


class TestSuiteShapes:
    """The stand-ins must preserve the shape properties the paper's
    qualitative results depend on."""

    def test_all_buildable_and_nonempty(self):
        for name in suite_names():
            g = load_suite_graph(name)
            assert g.num_vertices > 50, name
            assert g.num_edges > g.num_vertices / 2, name

    def test_road_has_largest_diameter(self):
        diam = {
            name: directed_diameter(load_suite_graph(name))
            for name in ("road-europe", "rmat24", "kron30")
        }
        assert diam["road-europe"] > 4 * diam["rmat24"]
        assert diam["road-europe"] > 4 * diam["kron30"]

    def test_webcrawls_have_nontrivial_diameter(self):
        """gsh15/clueweb12 stand-ins must sit between power-law and road."""
        d_kron = directed_diameter(load_suite_graph("kron30"))
        d_gsh = directed_diameter(load_suite_graph("gsh15"))
        d_clue = directed_diameter(load_suite_graph("clueweb12"))
        assert d_gsh > 2 * d_kron
        assert d_clue > d_gsh  # clueweb12 has the longer tails

    def test_low_diameter_classification_is_consistent(self):
        for name, entry in SUITE.items():
            d = directed_diameter(load_suite_graph(name))
            if entry.low_diameter:
                assert d <= 25, f"{name} flagged low-diameter but d={d}"
            else:
                assert d > 25, f"{name} flagged non-trivial but d={d}"

    def test_powerlaw_inputs_are_skewed(self):
        for name in ("livejournal", "rmat24", "friendster", "kron30"):
            g = load_suite_graph(name)
            p = graph_properties(g)
            mean_deg = g.num_edges / g.num_vertices
            assert p.max_out_degree > 5 * mean_deg, name

    def test_road_has_bounded_degree(self):
        p = graph_properties(load_suite_graph("road-europe"))
        assert p.max_out_degree <= 8
