"""Trace analytics: straggler attribution and run-to-run diffing.

Two consumers of a recorded run's artifacts (``events.jsonl`` +
``manifest.json``) that answer the questions a single
:func:`~repro.analysis.reporting.render_phase_breakdown` table cannot:

- :func:`phase_stragglers` — walks the columnar ``round`` events and
  attributes each BSP round to the host that bounds it (the max-ops host
  when the round is computation-bound under the cluster model, the
  max-bytes host when communication-bound), plus the within-phase load
  imbalance trend.  In BSP the slowest host *is* the critical path, so
  "which host bounds how many rounds" is the per-phase critical-path
  attribution.
- :func:`diff_runs` / ``repro compare`` — phase-by-phase deltas between
  two manifests (rounds, volume, messages, simulated split), with
  critical-host shifts when both runs carry event streams.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import KIND_ROUND, Event, read_events
from repro.obs.manifest import load_manifest

# -- straggler / critical-path attribution -----------------------------------------


@dataclass
class PhaseStragglers:
    """Critical-path attribution for one phase's rounds."""

    phase: str
    rounds: int = 0
    comp_bound_rounds: int = 0
    comm_bound_rounds: int = 0
    #: host -> number of rounds that host bounded (was the critical path).
    bound_by_host: dict[int, int] = field(default_factory=dict)
    #: Per-round max/mean compute imbalance, in execution order.
    imbalance: list[float] = field(default_factory=list)
    #: Attribution metric: "time" (model-bound resource) or "bytes".
    by: str = "time"
    #: host -> total bytes moved (out + in) across the phase's rounds.
    bytes_by_host: dict[int, int] = field(default_factory=dict)

    @property
    def critical_host(self) -> int | None:
        """The host bounding the most rounds of this phase."""
        if not self.bound_by_host:
            return None
        return max(sorted(self.bound_by_host), key=self.bound_by_host.get)

    @property
    def critical_share(self) -> float:
        """Fraction of rounds bounded by :attr:`critical_host`."""
        h = self.critical_host
        if h is None or self.rounds == 0:
            return 0.0
        return self.bound_by_host[h] / self.rounds

    def imbalance_halves(self) -> tuple[float, float]:
        """Mean imbalance over the first and second half of the rounds.

        A rising second half means the load balance *degrades* as the
        phase progresses (e.g. the frontier concentrating on few hosts).
        """
        if not self.imbalance:
            return (1.0, 1.0)
        mid = max(1, len(self.imbalance) // 2)
        first = self.imbalance[:mid]
        second = self.imbalance[mid:] or first
        return (sum(first) / len(first), sum(second) / len(second))

    def to_dict(self) -> dict[str, Any]:
        first, second = self.imbalance_halves()
        return {
            "phase": self.phase,
            "by": self.by,
            "rounds": self.rounds,
            "comp_bound_rounds": self.comp_bound_rounds,
            "comm_bound_rounds": self.comm_bound_rounds,
            "bound_by_host": {str(h): n for h, n in sorted(self.bound_by_host.items())},
            "bytes_by_host": {str(h): n for h, n in sorted(self.bytes_by_host.items())},
            "critical_host": self.critical_host,
            "critical_share": round(self.critical_share, 4),
            "imbalance_first_half": round(first, 4),
            "imbalance_second_half": round(second, 4),
        }


def phase_stragglers(
    events: "list[Event]", by: str = "time"
) -> list[PhaseStragglers]:
    """Aggregate the columnar ``round`` events into per-phase attribution.

    ``by`` picks the attribution metric: ``"time"`` charges each round to
    the host bounding its model-dominant resource (max-ops host of a
    computation-bound round, max-bytes host of a communication-bound
    round); ``"bytes"`` charges every round to its max-byte-volume host —
    who moves the traffic, regardless of what bounds the clock.  The
    comp/comm-bound round classification is identical either way.
    """
    if by not in ("time", "bytes"):
        raise ValueError(f"by must be time|bytes, got {by!r}")
    by_phase: dict[str, PhaseStragglers] = {}
    order: list[str] = []
    for e in sorted(
        (e for e in events if e.kind == KIND_ROUND), key=lambda e: e.seq
    ):
        a = e.attrs
        phase = str(a.get("phase", "?"))
        ps = by_phase.get(phase)
        if ps is None:
            ps = by_phase[phase] = PhaseStragglers(phase, by=by)
            order.append(phase)
        ops = a.get("host_ops") or []
        b_out = a.get("host_bytes_out") or []
        b_in = a.get("host_bytes_in") or []
        byts = [
            (b_out[h] if h < len(b_out) else 0)
            + (b_in[h] if h < len(b_in) else 0)
            for h in range(max(len(ops), len(b_out), len(b_in)))
        ]
        comp_s = a.get("sim_computation_s")
        comm_s = a.get("sim_communication_s")
        if comp_s is not None and comm_s is not None:
            comp_bound = comp_s >= comm_s
        else:  # no cluster model attached: fall back to count dominance
            comp_bound = (max(ops, default=0)) >= (max(byts, default=0))
        ps.rounds += 1
        if comp_bound:
            ps.comp_bound_rounds += 1
            bounding = ops
        else:
            ps.comm_bound_rounds += 1
            bounding = byts
        if by == "bytes":
            bounding = byts
        for h, nb in enumerate(byts):
            if nb:
                ps.bytes_by_host[h] = ps.bytes_by_host.get(h, 0) + int(nb)
        if bounding and max(bounding) > 0:
            h = int(max(range(len(bounding)), key=bounding.__getitem__))
            ps.bound_by_host[h] = ps.bound_by_host.get(h, 0) + 1
        if ops:
            mean = sum(ops) / len(ops)
            if mean > 0:
                ps.imbalance.append(max(ops) / mean)
    return [by_phase[p] for p in order]


def render_stragglers(reports: list[PhaseStragglers]) -> str:
    """Text table: who bounds each phase, and how the imbalance trends."""
    from repro.analysis.reporting import format_table

    by = reports[0].by if reports else "time"
    rows: list[list[object]] = []
    for ps in reports:
        h = ps.critical_host
        first, second = ps.imbalance_halves()
        trend = (
            "worsening" if second > first * 1.05
            else "improving" if second < first * 0.95
            else "stable"
        )
        rows.append(
            [
                ps.phase,
                ps.rounds,
                ps.comp_bound_rounds,
                ps.comm_bound_rounds,
                "-" if h is None else f"h{h} ({ps.critical_share:.0%})",
                f"{first:.2f} -> {second:.2f} ({trend})",
            ]
        )
    return format_table(
        ["phase", "rounds", "comp-bound", "comm-bound", "critical host",
         "imbalance (1st half -> 2nd half)"],
        rows,
        title=f"straggler / critical-path attribution (by {by})",
    )


# -- run loading -------------------------------------------------------------------


def load_run(path: str | os.PathLike) -> tuple[dict[str, Any], "list[Event] | None"]:
    """Load a recorded run: a trace directory or a bare manifest file.

    A directory must hold ``manifest.json`` and may hold ``events.jsonl``;
    a ``.json`` file is read as the manifest alone.  Returns the manifest
    as a dict plus the parsed events (or ``None`` when absent).
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        man = load_manifest(os.path.join(path, "manifest.json")).to_dict()
        events_path = os.path.join(path, "events.jsonl")
        events = read_events(events_path) if os.path.exists(events_path) else None
        return man, events
    return load_manifest(path).to_dict(), None


# -- manifest / run diffing --------------------------------------------------------


def _phase_map(man: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {p["phase"]: p for p in man.get("phases", [])}


def _delta_row(name: str, a: dict[str, Any] | None, b: dict[str, Any] | None) -> dict[str, Any]:
    def get(d: dict[str, Any] | None, key: str) -> float:
        return d.get(key, 0) if d else 0

    row: dict[str, Any] = {"phase": name}
    for key, out in (
        ("rounds", "rounds"),
        ("bytes", "bytes"),
        ("pair_messages", "pair_messages"),
        ("computation_s", "computation_s"),
        ("communication_s", "communication_s"),
    ):
        va, vb = get(a, key), get(b, key)
        row[f"{out}_a"] = va
        row[f"{out}_b"] = vb
        row[f"{out}_delta"] = vb - va
    ta = row["computation_s_a"] + row["communication_s_a"]
    tb = row["computation_s_b"] + row["communication_s_b"]
    row["total_s_a"] = ta
    row["total_s_b"] = tb
    row["total_s_delta"] = tb - ta
    row["total_s_pct"] = ((tb - ta) / ta * 100.0) if ta else None
    return row


def diff_runs(
    man_a: dict[str, Any],
    man_b: dict[str, Any],
    events_a: "list[Event] | None" = None,
    events_b: "list[Event] | None" = None,
) -> dict[str, Any]:
    """Phase-by-phase delta document between two recorded runs.

    The ``phases`` rows cover the union of both runs' phases in run-A
    execution order (run-B-only phases appended); ``totals`` diffs the
    manifests' whole-run blocks.  When both event streams are given, a
    ``stragglers`` block records each phase's critical host in A and B.
    """
    pa, pb = _phase_map(man_a), _phase_map(man_b)
    order = [p["phase"] for p in man_a.get("phases", [])]
    order += [p for p in pb if p not in pa]
    doc: dict[str, Any] = {
        "a": {k: man_a.get(k) for k in
              ("algorithm", "graph_spec", "num_hosts", "num_sources", "git_sha")},
        "b": {k: man_b.get(k) for k in
              ("algorithm", "graph_spec", "num_hosts", "num_sources", "git_sha")},
        "phases": [_delta_row(p, pa.get(p), pb.get(p)) for p in order],
    }
    ta, tb = man_a.get("totals", {}), man_b.get("totals", {})
    doc["totals"] = {
        key: {
            "a": ta.get(key, 0),
            "b": tb.get(key, 0),
            "delta": tb.get(key, 0) - ta.get(key, 0),
        }
        for key in ("rounds", "bytes", "pair_messages", "total_s",
                    "computation_s", "communication_s", "load_imbalance")
    }
    if events_a is not None and events_b is not None:
        sa = {s.phase: s for s in phase_stragglers(events_a)}
        sb = {s.phase: s for s in phase_stragglers(events_b)}
        doc["stragglers"] = [
            {
                "phase": p,
                "a": sa[p].to_dict() if p in sa else None,
                "b": sb[p].to_dict() if p in sb else None,
            }
            for p in order
            if p in sa or p in sb
        ]
    return doc


def _fmt_delta(v: float, as_int: bool = False) -> str:
    if as_int:
        return f"{int(v):+d}" if v else "0"
    return f"{v:+.5f}" if v else "0"


def render_run_diff(doc: dict[str, Any]) -> str:
    """Text rendering of a :func:`diff_runs` document."""
    from repro.analysis.reporting import format_table

    a, b = doc["a"], doc["b"]
    title = (
        f"compare: A={a.get('algorithm')}({a.get('graph_spec')}, "
        f"{a.get('num_hosts')} hosts) vs B={b.get('algorithm')}"
        f"({b.get('graph_spec')}, {b.get('num_hosts')} hosts)"
    )
    rows: list[list[object]] = []
    for r in doc["phases"]:
        pct = r.get("total_s_pct")
        rows.append(
            [
                r["phase"],
                f"{r['rounds_a']} -> {r['rounds_b']}",
                _fmt_delta(r["rounds_delta"], as_int=True),
                _fmt_delta(r["bytes_delta"], as_int=True),
                _fmt_delta(r["pair_messages_delta"], as_int=True),
                _fmt_delta(r["computation_s_delta"]),
                _fmt_delta(r["communication_s_delta"]),
                "-" if pct is None else f"{pct:+.1f}%",
            ]
        )
    t = doc.get("totals", {})
    if t:
        tot = t.get("total_s", {})
        ta, tb = tot.get("a", 0), tot.get("b", 0)
        rows.append(
            [
                "TOTAL",
                f"{t['rounds']['a']} -> {t['rounds']['b']}",
                _fmt_delta(t["rounds"]["delta"], as_int=True),
                _fmt_delta(t["bytes"]["delta"], as_int=True),
                _fmt_delta(t["pair_messages"]["delta"], as_int=True),
                _fmt_delta(t["computation_s"]["delta"]),
                _fmt_delta(t["communication_s"]["delta"]),
                "-" if not ta else f"{(tb - ta) / ta * 100.0:+.1f}%",
            ]
        )
    out = [
        format_table(
            ["phase", "rounds", "Δrounds", "Δbytes", "Δmsgs",
             "Δcomp (s)", "Δcomm (s)", "Δtotal"],
            rows,
            title=title,
        )
    ]
    for s in doc.get("stragglers", []):
        sa, sb = s.get("a"), s.get("b")

        def crit(d: dict[str, Any] | None) -> str:
            if not d or d.get("critical_host") is None:
                return "-"
            return f"h{d['critical_host']} ({d['critical_share']:.0%})"

        out.append(
            f"critical host [{s['phase']}]: {crit(sa)} -> {crit(sb)}"
        )
    return "\n".join(out)


def render_run_diff_json(doc: dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True)
