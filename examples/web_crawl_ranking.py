"""Web-crawl analysis: why MRBC wins on real-world crawls.

The paper's headline result (2.1× over Brandes BC on web-crawls at 256
hosts) comes from crawls like gsh15/clueweb12 having *non-trivial
diameter* — long tail chains hanging off a power-law core.  This example:

1. builds a web-crawl-like graph (power-law core + long tails),
2. ranks pages by sampled betweenness centrality (key connector pages),
3. runs the same computation with MRBC and with level-by-level Brandes
   (SBBC) on the same partitioned engine and compares rounds,
   communication volume, and simulated cluster time,
4. sweeps the MRBC batch size k, reproducing Figure 1's tuning effect.

Run:  python examples/web_crawl_ranking.py
"""

import numpy as np

from repro import ClusterModel, mrbc_engine, partition_graph, sbbc_engine
from repro.core.sampling import sample_sources
from repro.graph import web_crawl_like
from repro.graph.properties import estimate_diameter

HOSTS = 8


def main() -> None:
    g = web_crawl_like(
        core_n=1000, tail_total=800, avg_tail_len=40, edge_factor=8, seed=3
    )
    sources = sample_sources(g, 24, mode="contiguous", seed=5)
    est_d = estimate_diameter(g, sources[:6])
    print(f"web-crawl-like graph: {g}, estimated diameter {est_d}")

    pg = partition_graph(g, HOSTS, "cvc")
    model = ClusterModel(HOSTS)

    mrbc = mrbc_engine(g, sources=sources, batch_size=12, partition=pg)
    sbbc = sbbc_engine(g, sources=sources, partition=pg)
    assert np.allclose(mrbc.bc, sbbc.bc), "identical sampled BC values"

    print("\nkey connector pages (highest betweenness):")
    for v in np.argsort(mrbc.bc)[::-1][:5]:
        kind = "core" if v < 1000 else "tail"
        print(f"  page {v:>5} ({kind}): BC {mrbc.bc[v]:.2f}")

    t_mr = model.time_run(mrbc.run)
    t_sb = model.time_run(sbbc.run)
    print("\nMRBC vs level-by-level Brandes (SBBC), same partition:")
    print(f"  rounds:      {mrbc.total_rounds:>8} vs {sbbc.total_rounds:>8}"
          f"   ({sbbc.total_rounds / mrbc.total_rounds:.1f}x fewer)")
    print(f"  volume (B):  {mrbc.run.total_bytes:>8} vs {sbbc.run.total_bytes:>8}")
    print(f"  comm time:   {t_mr.communication:>8.4f} vs {t_sb.communication:>8.4f} s"
          f"   ({t_sb.communication / t_mr.communication:.1f}x less)")
    print(f"  total time:  {t_mr.total:>8.4f} vs {t_sb.total:>8.4f} s"
          f"   ({t_sb.total / t_mr.total:.1f}x faster)")

    print("\nbatch-size tuning (Figure 1's effect):")
    for k in (4, 12, 24):
        res = mrbc_engine(g, sources=sources, batch_size=k, partition=pg)
        t = model.time_run(res.run)
        print(f"  k={k:>2}: rounds {res.total_rounds:>5}, time {t.total:.4f} s")


if __name__ == "__main__":
    main()
