"""``[tool.repro-lint]`` configuration from ``pyproject.toml``.

Read with :mod:`tomllib` (stdlib); absence of the file or the table means
all defaults.  Recognized keys::

    [tool.repro-lint]
    baseline = "lint-baseline.json"    # project-root-relative path
    disable = ["RL402"]                # rule codes disabled globally
    select = []                        # if non-empty, ONLY these codes run
    cache = ".repro-lint-cache.json"   # incremental-cache path
    graph = ["src"]                    # call-graph roots for --changed runs

CLI flags (``--baseline``, ``--select``, ``--disable``) override the
file.  The project root is found by walking up from the first lint
target until a ``pyproject.toml`` or ``.git`` appears.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path

if sys.version_info >= (3, 11):
    import tomllib
else:  # pragma: no cover - 3.10 fallback, untested in CI
    tomllib = None

from repro.lint.baseline import DEFAULT_BASELINE_NAME

TABLE = "repro-lint"


@dataclass
class LintConfig:
    project_root: Path
    baseline_path: Path
    cache_path: Path = Path(".repro-lint-cache.json")
    graph: tuple[str, ...] = ("src",)
    disable: frozenset[str] = frozenset()
    select: frozenset[str] = frozenset()

    def enabled_codes(self, all_codes: list[str]) -> set[str]:
        codes = set(self.select) if self.select else set(all_codes)
        return {c for c in codes if c not in self.disable}


def find_project_root(start: str | Path) -> Path:
    """Nearest ancestor of ``start`` containing pyproject.toml or .git."""
    p = Path(start).resolve()
    if p.is_file():
        p = p.parent
    for candidate in (p, *p.parents):
        if (candidate / "pyproject.toml").is_file() or (candidate / ".git").exists():
            return candidate
    return p


def load_config(project_root: str | Path) -> LintConfig:
    root = Path(project_root)
    table: dict[str, object] = {}
    pyproject = root / "pyproject.toml"
    if pyproject.is_file() and tomllib is not None:
        with pyproject.open("rb") as fh:
            data = tomllib.load(fh)
        table = data.get("tool", {}).get(TABLE, {})
    baseline = table.get("baseline", DEFAULT_BASELINE_NAME)
    cache = table.get("cache", ".repro-lint-cache.json")
    graph = table.get("graph", ["src"])
    return LintConfig(
        project_root=root,
        baseline_path=root / str(baseline),
        cache_path=root / str(cache),
        graph=tuple(str(g) for g in graph),
        disable=frozenset(str(c) for c in table.get("disable", [])),
        select=frozenset(str(c) for c in table.get("select", [])),
    )
