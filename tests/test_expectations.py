"""Tests for the artifact-evaluation checker (analysis/expectations.py)."""

import pytest

from repro.analysis.expectations import (
    EXPECTATIONS,
    check_results,
    render_report,
)
from repro.analysis.export import write_csv


def _write(tmp_path, artifact, headers, rows):
    write_csv(tmp_path / f"{artifact}.csv", headers, rows)


@pytest.fixture
def good_results(tmp_path):
    """A minimal results directory satisfying every expectation."""
    _write(
        tmp_path,
        "table_1_rounds_per_source_and_load_imbalance",
        ["graph", "est.diam", "SBBC rounds/src", "MRBC rounds/src", "reduction"],
        [
            ["rmat24", "5", "10.0", "3.0", "3.3x"],
            ["gsh15", "150", "240.0", "20.0", "12.0x"],
        ],
    )
    _write(
        tmp_path,
        "table_2_execution_time_per_source_best_host_count",
        ["graph", "winner"],
        [
            ["road-europe", "ABBC"],
            ["gsh15", "MRBC"],
            ["clueweb12", "MRBC"],
            ["livejournal", "SBBC"],
            ["rmat24", "SBBC"],
        ],
    )
    _write(
        tmp_path,
        "figure_1_mrbc_execution_time_and_rounds_vs_batch_size",
        ["graph", "k (batch)", "rounds"],
        [["g", "8", "100"], ["g", "16", "60"], ["g", "32", "40"]],
    )
    _write(
        tmp_path,
        "figure_2_computation_vs_communication_breakdown",
        ["graph", "algo", "comp (s)", "comm (s)"],
        [
            ["g1", "SBBC", "1.0", "2.0"],
            ["g1", "MRBC", "1.5", "0.5"],
        ],
    )
    _write(
        tmp_path,
        "figure_3_strong_scaling_on_large_graphs",
        ["graph", "algo", "hosts", "exec (s)"],
        [
            ["g1", "SBBC", "4", "1.0"],
            ["g1", "SBBC", "16", "0.8"],
            ["g1", "MRBC", "4", "1.0"],
            ["g1", "MRBC", "16", "0.4"],
        ],
    )
    _write(
        tmp_path,
        "ablation_delayed_synchronization_4_3",
        ["graph", "mode", "volume (B)"],
        [["g1", "delayed", "100"], ["g1", "eager", "150"]],
    )
    _write(
        tmp_path,
        "ablation_pipelining_schedule_mrbc_vs_lenzen_peleg",
        ["graph", "algorithm", "messages"],
        [["g1", "Lenzen-Peleg", "120"], ["g1", "MRBC (Alg. 3)", "100"]],
    )
    return tmp_path


class TestChecker:
    def test_all_pass_on_good_results(self, good_results):
        results = check_results(good_results)
        assert all(r.status == "PASS" for r in results), [
            (r.expectation.claim, r.status) for r in results
        ]

    def test_missing_artifacts_are_skipped(self, tmp_path):
        results = check_results(tmp_path)
        assert all(r.status == "SKIPPED" for r in results)

    def test_violation_detected(self, good_results):
        # Flip a Table 2 winner: MFBC must never win.
        _write(
            good_results,
            "table_2_execution_time_per_source_best_host_count",
            ["graph", "winner"],
            [["livejournal", "MFBC"]],
        )
        results = check_results(good_results)
        failing = [
            r for r in results
            if r.expectation.artifact.startswith("table_2")
        ]
        assert failing[0].status == "FAIL"

    def test_malformed_artifact_fails_gracefully(self, good_results):
        _write(
            good_results,
            "figure_1_mrbc_execution_time_and_rounds_vs_batch_size",
            ["unexpected"],
            [["x"]],
        )
        results = check_results(good_results)
        fig1 = [
            r for r in results if r.expectation.artifact.startswith("figure_1")
        ][0]
        assert fig1.status == "FAIL"

    def test_render_report(self, good_results):
        text = render_report(check_results(good_results))
        assert "PASS" in text
        assert "passed" in text

    def test_real_results_if_present(self):
        """When the benchmark suite has been run, its artifacts must pass."""
        import os

        results_dir = os.path.join("benchmarks", "results")
        if not os.path.isdir(results_dir):
            pytest.skip("benchmarks not yet run")
        results = check_results(results_dir)
        ran = [r for r in results if r.status != "SKIPPED"]
        if not ran:
            pytest.skip("no artifacts exported yet")
        assert all(r.status == "PASS" for r in ran), [
            (r.expectation.claim, r.status) for r in ran
        ]

    def test_expectation_artifact_names_are_slugs(self):
        for exp in EXPECTATIONS:
            assert exp.artifact == exp.artifact.lower()
            assert " " not in exp.artifact
