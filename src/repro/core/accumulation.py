"""Algorithm 5: distributed accumulation phase via timestamp reversal.

After the forward phase (Algorithm 3) terminates at round ``R``, each
vertex ``v`` knows, for every source ``s`` it reached, the round ``τ_sv``
in which it sent its finalized ``(d_sv, s, σ_sv)`` message.  Algorithm 5
runs the Brandes accumulation *backwards in time*: ``v`` sends its
dependency message for source ``s`` exactly in round ``A_sv = R − τ_sv``,
carrying ``m = (1 + δ_s•(v)) / σ_sv`` to each predecessor in ``P_s(v)``;
a predecessor ``u`` accumulates ``δ_s•(u) += σ_su · m``.

Lemma 7 guarantees each vertex has received *all* successor contributions
by its own send round (``τ_sw > τ_sv`` for every successor ``w``, hence
``A_sw < A_sv``), and that at most one source fires per vertex per round
(send rounds ``τ`` are distinct per vertex).  Both facts are asserted.

The simulator's rounds are 1-based while the paper lets ``A_sv`` range
from 0, so this program fires in round ``A_sv + 1 = R − τ_sv + 1``.
"""

from __future__ import annotations

from typing import Any

from repro.congest.program import VertexContext, VertexProgram
from repro.core.apsp import APSPVertexState


def schedule_summary(programs: "list[AccumulationProgram]") -> dict[str, float]:
    """Telemetry summary of the timestamp-reversal fire schedule.

    Reports how many ``(vertex, source)`` dependency broadcasts Alg. 5
    scheduled, how many actually fired, and the densest round — recorded
    by the observability layer at the end of the accumulation phase.
    """
    scheduled = sum(len(p._fire) for p in programs)
    fired = sum(len(p._fired) for p in programs)
    per_round: dict[int, int] = {}
    for p in programs:
        for rnd in p._fire:
            per_round[rnd] = per_round.get(rnd, 0) + 1
    return {
        "vertices": len(programs),
        "fires_scheduled": scheduled,
        "fires_executed": fired,
        "max_fires_per_round": max(per_round.values()) if per_round else 0,
    }


class AccumulationProgram(VertexProgram):
    """CONGEST vertex program for the BC accumulation phase.

    Parameters
    ----------
    forward_state:
        The vertex's :class:`~repro.core.apsp.APSPVertexState` produced by
        the forward phase (τ, σ, predecessor sets).
    total_rounds:
        ``R``, the round at which the forward phase terminated.
    """

    def __init__(self, forward_state: APSPVertexState, total_rounds: int) -> None:
        self._fwd = forward_state
        self._R = total_rounds

    def setup(self, ctx: VertexContext) -> None:
        super().setup(ctx)
        fwd = self._fwd
        #: δ_s•(v) accumulators, one per reached source.
        self.delta: dict[int, float] = {s: 0.0 for s in fwd.dist}
        # Fire schedule: round -> source.  τ values are distinct per vertex
        # (one send per round in the forward phase), so this is injective.
        self._fire: dict[int, int] = {}
        for s, tau in fwd.tau.items():
            rnd = self._R - tau + 1
            assert rnd >= 1, f"accumulation round {rnd} < 1 (R={self._R}, tau={tau})"
            assert rnd not in self._fire, "two sources scheduled in one round"
            self._fire[rnd] = s
        self._fired: set[int] = set()

    def compute_sends(self, rnd: int) -> list[tuple[int, tuple[Any, ...]]]:
        s = self._fire.get(rnd)
        if s is None:
            return []
        self._fired.add(s)
        fwd = self._fwd
        preds = fwd.preds.get(s, ())
        if not preds:
            return []
        m = (1.0 + self.delta[s]) / fwd.sigma[s]
        return [(u, ("acc", s, m)) for u in sorted(preds)]

    def handle_message(self, rnd: int, sender: int, payload: tuple[Any, ...]) -> None:
        tag, s, m = payload
        assert tag == "acc", f"unexpected payload {payload!r}"
        # Lemma 7: the contribution must arrive strictly before our own
        # fire round for s (messages received in round r are usable from
        # round r+1; our fire for s must therefore be > rnd).
        my_fire = self._R - self._fwd.tau[s] + 1
        assert my_fire > rnd, (
            f"late dependency for source {s} at vertex {self.ctx.vid}: "
            f"received in round {rnd}, fires in round {my_fire}"
        )
        self.delta[s] += self._fwd.sigma[s] * m

    def has_pending_work(self, rnd: int) -> bool:
        return len(self._fired) < len(self._fire)

    def bc_contribution(self) -> float:
        """This vertex's BC value: ``Σ_{s ≠ v} δ_s•(v)``."""
        return sum(d for s, d in self.delta.items() if s != self.ctx.vid)
