"""Communication-volume observability: the CommLedger, the CONGEST
bandwidth-bound checker, the conformance suite, and the persistence
surfaces (manifest ``comm`` section, bench comm gating, ``repro comm``).
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro import obs
from repro.analysis.commcheck import (
    CommCheckCase,
    check_congest_bound,
    run_case_checks,
    run_conformance,
)
from repro.cli import main as cli_main
from repro.cluster.model import ClusterModel
from repro.congest.network import CongestNetwork
from repro.congest.program import VertexProgram
from repro.core.mrbc import mrbc_engine
from repro.core.sampling import sample_sources
from repro.graph import generators as gen
from repro.graph.builders import from_edges
from repro.obs.bench import compare_bench
from repro.obs.comm import (
    PLANE_CONGEST,
    PLANE_GLUON,
    CommLedger,
    congest_bound_words,
)
from repro.obs.manifest import build_manifest, load_manifest, write_manifest
from repro.runtime.errors import ChannelBandwidthError


def rs_stub(phase: str, round_index: int) -> SimpleNamespace:
    """The two RoundStats fields record_pair_message reads."""
    return SimpleNamespace(effective_phase=phase, round_index=round_index)


class TestCommLedger:
    def test_totals_phases_and_ops(self):
        led = CommLedger()
        led.record_pair_message(rs_stub("forward", 1), 0, 1, 2, 24, "reduce")
        led.record_pair_message(rs_stub("forward", 1), 1, 0, 1, 8, "reduce")
        led.record_pair_message(rs_stub("backward", 2), 0, 2, 3, 40, "broadcast")
        tot = led.totals(PLANE_GLUON)
        assert (tot.messages, tot.values, tot.payload_bytes) == (3, 6, 72)
        assert list(led.phase_totals(PLANE_GLUON)) == ["forward", "backward"]
        ops = led.op_totals(PLANE_GLUON)
        assert ops["reduce"].payload_bytes == 32
        assert ops["broadcast"].payload_bytes == 40

    def test_word_rounding_is_ceiling(self):
        led = CommLedger()
        led.record_pair_message(rs_stub("forward", 1), 0, 1, 1, 9, "reduce")
        assert led.totals(PLANE_GLUON).words == 2

    def test_epochs_keep_restarting_round_counters_apart(self):
        led = CommLedger()
        led.begin_epoch(PLANE_CONGEST)
        led.record(PLANE_CONGEST, "congest", 1, 0, 1,
                   values=1, words=2, payload_bytes=16)
        led.begin_epoch(PLANE_CONGEST)
        led.record(PLANE_CONGEST, "congest", 1, 0, 1,
                   values=1, words=2, payload_bytes=16)
        rounds = led.rounds(PLANE_CONGEST)
        assert len(rounds) == 2
        assert [rc.epoch for rc in rounds] == [1, 2]
        assert led.totals(PLANE_CONGEST).words == 4

    def test_top_channels_orders_by_bytes_then_pair(self):
        led = CommLedger()
        led.record_pair_message(rs_stub("forward", 1), 0, 1, 1, 8, "reduce")
        led.record_pair_message(rs_stub("forward", 1), 2, 3, 1, 64, "reduce")
        led.record_pair_message(rs_stub("forward", 1), 1, 2, 1, 8, "reduce")
        top = led.top_channels(PLANE_GLUON, 3)
        assert [pair for pair, _ in top] == [(2, 3), (0, 1), (1, 2)]

    def test_bench_counts_split_reduce_and_broadcast(self):
        led = CommLedger()
        led.record_pair_message(rs_stub("forward", 1), 0, 1, 2, 24, "reduce")
        led.record_pair_message(rs_stub("backward", 2), 1, 0, 1, 16, "broadcast")
        counts = led.bench_counts()
        assert counts == {
            "messages": 2,
            "values": 3,
            "payload_bytes": 40,
            "reduce_bytes": 24,
            "broadcast_bytes": 16,
        }

    def test_summary_is_versioned_and_json_safe(self):
        led = CommLedger(bound_words=4)
        led.record_pair_message(rs_stub("forward", 1), 0, 1, 1, 8, "reduce")
        led.record(PLANE_CONGEST, "congest", 1, 0, 1,
                   values=1, words=2, payload_bytes=16)
        doc = led.summary()
        assert doc["schema"] == 1
        assert set(doc["planes"]) == {PLANE_GLUON, PLANE_CONGEST}
        assert doc["planes"][PLANE_CONGEST]["bound_words"] == 4
        json.dumps(doc)  # must be serializable as-is

    def test_bound_violation_returned_only_on_congest_plane(self):
        led = CommLedger(bound_words=2)
        ok = led.record_pair_message(rs_stub("forward", 1), 0, 1, 1, 800, "reduce")
        assert ok is None and not led.violations
        v = led.record(PLANE_CONGEST, "congest", 3, 4, 5,
                       values=1, words=7, payload_bytes=56)
        assert v is not None and (v.words, v.bound_words) == (7, 2)
        assert led.violations == [v]


class Oversized(VertexProgram):
    """Deliberately violates CONGEST: one 30-value payload in one round."""

    def compute_sends(self, rnd):
        if self.ctx.vid == 0 and rnd == 1:
            return [(1, (7,) * 30)]
        return []

    def handle_message(self, rnd, sender, payload):
        pass

    def has_pending_work(self, rnd):
        return False


class TestBandwidthBound:
    def test_congest_bound_words(self):
        assert congest_bound_words(2) == 4
        assert congest_bound_words(60) == 24
        assert congest_bound_words(60, factor=1) == 6
        with pytest.raises(ValueError):
            congest_bound_words(60, factor=0)

    def test_oversized_message_is_flagged(self):
        g = from_edges(2, [(0, 1)])
        ledger = CommLedger(bound_words=congest_bound_words(2))
        net = CongestNetwork(g, lambda v: Oversized())
        with obs.session(comm=ledger):
            net.run(2, detect_quiescence=True)
        assert len(ledger.violations) == 1
        v = ledger.violations[0]
        assert (v.src, v.dst, v.words) == (0, 1, 29)
        res = check_congest_bound("oversized", ledger, ledger.bound_words)
        assert not res.ok  # the conformance check must FAIL on this run

    def test_oversized_message_hard_fails(self):
        g = from_edges(2, [(0, 1)])
        ledger = CommLedger(
            bound_words=congest_bound_words(2), hard_fail=True
        )
        net = CongestNetwork(g, lambda v: Oversized())
        with obs.session(comm=ledger):
            with pytest.raises(ChannelBandwidthError):
                net.run(2)

    def test_legal_traffic_stays_under_bound(self):
        g = gen.erdos_renyi(30, 3.0, seed=5)
        ledger = CommLedger(bound_words=congest_bound_words(30))
        from repro.core.mrbc_congest import mrbc_congest

        srcs = sample_sources(g, 4, seed=3)
        with obs.session(comm=ledger):
            mrbc_congest(g, sources=srcs)
        assert not ledger.violations
        words, _ = ledger.max_channel_words()
        assert 0 < words <= ledger.bound_words


class TestConformance:
    def test_small_suite_passes_end_to_end(self):
        cases = [
            CommCheckCase("t-mrbc", "mrbc", "er:30:3",
                          hosts=4, sources=4, batch=4, seed=3),
            CommCheckCase("t-congest", "mrbc-congest", "er:30:3",
                          hosts=4, sources=4, batch=4, seed=3),
        ]
        report = run_conformance(cases)
        bad = [r for r in report.results if not r.ok]
        assert report.ok, bad
        doc = report.to_dict()
        assert doc["verdict"] == "PASS"
        checks = {r.check for r in report.results}
        assert {"ledger-bytes-vs-run", "alpha-beta-wire",
                "delayed-sync-savings", "congest-channel-bound"} <= checks

    def test_sbbc_case_checks(self):
        results = run_case_checks(
            CommCheckCase("t-sbbc", "sbbc", "er:30:3",
                          hosts=4, sources=4, batch=4, seed=3)
        )
        assert results and all(r.ok for r in results)


class TestPersistence:
    def _engine_manifest(self, tmp_path):
        g = gen.erdos_renyi(30, 3.0, seed=11)
        ledger = CommLedger()
        srcs = sample_sources(g, 4, seed=3)
        with obs.session(comm=ledger):
            res = mrbc_engine(
                g, sources=srcs, batch_size=4, num_hosts=4
            )
        man = build_manifest(
            "mrbc", res.run, ClusterModel(4), ledger=ledger,
            graph_spec="er:30:3", num_hosts=4,
        )
        return res, man

    def test_manifest_carries_comm_summary(self, tmp_path):
        res, man = self._engine_manifest(tmp_path)
        gl = man.comm["planes"][PLANE_GLUON]
        assert gl["payload_bytes"] == res.run.total_bytes
        assert gl["messages"] == res.run.total_pair_messages
        path = tmp_path / "manifest.json"
        write_manifest(man, path)
        loaded = load_manifest(path)
        assert loaded.comm == man.comm

    def test_pre_ledger_manifest_still_loads(self, tmp_path):
        _, man = self._engine_manifest(tmp_path)
        path = tmp_path / "old.json"
        doc = man.to_dict()
        del doc["comm"]  # a snapshot written before the ledger existed
        path.write_text(json.dumps(doc), encoding="utf-8")
        loaded = load_manifest(path)
        assert loaded.comm == {}
        assert loaded.algorithm == man.algorithm

    @staticmethod
    def _snap(comm):
        case = {
            "name": "c",
            "deterministic": {"bytes": 10, "rounds": 2},
            "wall_s": {"median": 0.01, "iqr": 0.001},
        }
        if comm is not None:
            case["comm"] = comm
        return {"cases": [case]}

    COMM = {"messages": 5, "values": 9, "payload_bytes": 80,
            "reduce_bytes": 48, "broadcast_bytes": 32}

    def test_bench_gates_comm_counts(self):
        assert compare_bench(
            self._snap(dict(self.COMM)), self._snap(dict(self.COMM)),
            wall="never",
        ).ok
        drift = dict(self.COMM, payload_bytes=81)
        cmp = compare_bench(
            self._snap(drift), self._snap(dict(self.COMM)), wall="never"
        )
        assert not cmp.ok
        assert any("comm.payload_bytes" in f
                   for f in cmp.cases[0].failures)

    def test_bench_tolerates_pre_ledger_baseline(self):
        cmp = compare_bench(
            self._snap(dict(self.COMM)), self._snap(None), wall="never"
        )
        assert cmp.ok
        assert any("no baseline yet" in n for n in cmp.cases[0].notes)

    def test_bench_rejects_dropped_comm_section(self):
        cmp = compare_bench(
            self._snap(None), self._snap(dict(self.COMM)), wall="never"
        )
        assert not cmp.ok


class TestCommCLI:
    def test_breakdown_json(self, capsys):
        rc = cli_main([
            "comm", "mrbc", "--graph", "er:30:3", "-k", "4",
            "--hosts", "4", "--batch", "4", "--format", "json",
            "--per-round", "--matrix",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["planes"][PLANE_GLUON]["messages"] > 0
        assert len(doc["host_matrix"]) == 4
        assert doc["per_round"]

    def test_congest_breakdown_reports_bound(self, capsys):
        rc = cli_main([
            "comm", "mrbc-congest", "--graph", "er:30:3", "-k", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "max channel load" in out
        assert "violations: 0" in out

    def test_check_single_case_with_report(self, tmp_path, capsys):
        report = tmp_path / "comm-report.json"
        rc = cli_main([
            "comm", "mrbc", "--graph", "er:30:3", "-k", "4",
            "--batch", "4", "--check", "--report", str(report),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "commcheck verdict: PASS" in out
        doc = json.loads(report.read_text(encoding="utf-8"))
        assert doc["verdict"] == "PASS"
