"""The Lenzen-Peleg distributed APSP algorithm (paper §3.2).

MRBC's forward phase refines the APSP algorithm of Lenzen & Peleg
(PODC 2013).  The original, as the paper describes it:

  "In each round r ... each vertex v sends along its outgoing edges the
  pair with smallest index in L_v^r whose status (a conditional flag) is
  set to ready; v then sets the status of this pair to sent.  As noted
  in [38] this approach can result in multiple messages being sent from v
  for the same source s (in different rounds)."

i.e. whenever a pair's distance improves, its flag flips back to *ready*
and it will be retransmitted.  Theorem 1's message-count improvement
("while sending a smaller number of messages ... up to 2mn messages" for
the original) is exactly the retransmission MRBC's position-based
schedule eliminates; :func:`lenzen_peleg_apsp` implements the original so
the claim can be measured (see ``tests/test_lenzen_peleg.py`` and
``benchmarks/bench_ablation_schedule.py``).

This implementation keeps the paper's framing: directed graphs, known
``n``, 2n-round cutoff (the "2n-round version [which] also works for
directed graphs", §3).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.congest.messages import MessageStats
from repro.congest.network import CongestNetwork
from repro.congest.program import VertexContext, VertexProgram
from repro.graph.digraph import DiGraph


class LenzenPelegProgram(VertexProgram):
    """One vertex of the original (status-flag) pipelined APSP."""

    def __init__(self, sources: frozenset[int] | None = None) -> None:
        self._sources = sources

    def setup(self, ctx: VertexContext) -> None:
        super().setup(ctx)
        #: Sorted list of (d, s) pairs — L_v.
        self.entries: list[tuple[int, int]] = []
        self.dist: dict[int, int] = {}
        #: Pairs currently flagged *ready* (not yet (re)transmitted).
        self.ready: set[int] = set()
        self.sends = 0
        if self._sources is None or ctx.vid in self._sources:
            self.entries.append((0, ctx.vid))
            self.dist[ctx.vid] = 0
            self.ready.add(ctx.vid)

    def compute_sends(self, rnd: int) -> list[tuple[int, tuple[Any, ...]]]:
        # Smallest-index entry whose status is ready.
        for d, s in self.entries:
            if s in self.ready:
                self.ready.discard(s)  # status <- sent
                self.sends += 1
                payload = ("lp", d, s)
                return [(int(t), payload) for t in self.ctx.out_neighbors]
        return []

    def handle_message(self, rnd: int, sender: int, payload: tuple[Any, ...]) -> None:
        _tag, d_su, s = payload
        nd = d_su + 1
        cur = self.dist.get(s)
        if cur is None:
            insort(self.entries, (nd, s))
            self.dist[s] = nd
            self.ready.add(s)  # fresh pair: ready
        elif nd < cur:
            i = bisect_left(self.entries, (cur, s))
            del self.entries[i]
            insort(self.entries, (nd, s))
            self.dist[s] = nd
            self.ready.add(s)  # improved pair: ready again (retransmit!)

    def has_pending_work(self, rnd: int) -> bool:
        return bool(self.ready)


@dataclass
class LPResult:
    """Output of :func:`lenzen_peleg_apsp`."""

    dist: np.ndarray
    sources: np.ndarray
    rounds: int
    stats: MessageStats
    #: Per-vertex send counts (to quantify retransmissions).
    sends_per_vertex: np.ndarray

    @property
    def total_value_sends(self) -> int:
        """Vertex-level value transmissions (before per-edge fan-out)."""
        return int(self.sends_per_vertex.sum())


def lenzen_peleg_apsp(
    g: DiGraph,
    sources: np.ndarray | list[int] | None = None,
    detect_termination: bool = True,
) -> LPResult:
    """Run the original Lenzen-Peleg APSP (directed, 2n-round version)."""
    n = g.num_vertices
    if sources is None:
        src = np.arange(n, dtype=np.int64)
        source_set: frozenset[int] | None = None
    else:
        src = np.asarray(sources, dtype=np.int64).ravel()
        if src.size == 0:
            raise ValueError("source set must be non-empty")
        source_set = frozenset(int(s) for s in src)

    net = CongestNetwork(g, lambda v: LenzenPelegProgram(source_set))
    run = net.run(2 * n, detect_quiescence=detect_termination)

    row_of = {int(s): i for i, s in enumerate(src)}
    dist = np.full((src.size, n), -1, dtype=np.int64)
    sends = np.zeros(n, dtype=np.int64)
    for v, prog in enumerate(net.programs):
        assert isinstance(prog, LenzenPelegProgram)
        sends[v] = prog.sends
        for s, d in prog.dist.items():
            dist[row_of[s], v] = d
    return LPResult(
        dist=dist,
        sources=src,
        rounds=run.rounds_executed,
        stats=run.stats,
        sends_per_vertex=sends,
    )
