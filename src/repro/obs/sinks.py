"""Pluggable event sinks: null (default), in-memory, and JSONL file.

A sink receives every :class:`~repro.obs.events.Event` a telemetry
session emits.  The :class:`NullSink` advertises ``enabled = False``;
instrumented code paths consult that flag once per round (or coarser) and
skip event construction entirely, so the tier-1 tests pay essentially
nothing for the instrumentation.
"""

from __future__ import annotations

import os

from repro.obs.events import Event


class Sink:
    """Base sink: receives events until :meth:`close`.

    ``enabled`` is the cheap gate instrumented code checks before building
    any event objects; subclasses that actually record set it ``True``.
    """

    enabled: bool = True

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to durable storage (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullSink(Sink):
    """Discards everything; the default for library and test use."""

    enabled = False

    def emit(self, event: Event) -> None:
        pass


class MemorySink(Sink):
    """Keeps every event in a list (tests, programmatic analysis)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[Event]:
        """Recorded events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]


class FileSink(Sink):
    """Appends events to a JSONL file, one line per event.

    Usable as a context manager (``with FileSink(p) as sink: ...``).  The
    buffer is pushed to the OS every ``flush_every`` events (default:
    every event — the stream is O(rounds), so the cost is negligible), so
    a crashed run leaves a readable events.jsonl prefix instead of an
    empty file; :meth:`flush` forces it at any point.
    """

    def __init__(self, path: str | os.PathLike, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = os.fspath(path)
        self.flush_every = flush_every
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.events_written = 0
        self._unflushed = 0

    def emit(self, event: Event) -> None:
        if self._fh is None:
            raise RuntimeError("FileSink is closed")
        self._fh.write(event.to_json_line() + "\n")
        self.events_written += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None
