"""Tests for engine statistics aggregation and the cluster time model."""

import pytest

from repro.cluster.model import ClusterModel, CostConstants, SimulatedTime
from repro.engine.stats import EngineRun


def make_run(H=4, rounds=3, ops=(10, 20, 30, 40), nbytes=100):
    run = EngineRun(num_hosts=H)
    for _ in range(rounds):
        rs = run.new_round("forward")
        for h, o in enumerate(ops):
            rs.compute[h].edge_ops = o
        rs.bytes_out[:] = nbytes
        rs.bytes_in[:] = nbytes
        rs.msgs_out[:] = 2
        rs.msgs_in[:] = 2
        rs.pair_messages = 2 * H
        rs.items_synced = 5
        rs.proxies_synced = 5
    return run


class TestEngineRun:
    def test_aggregates(self):
        run = make_run()
        assert run.num_rounds == 3
        assert run.total_bytes == 3 * 4 * 100
        assert run.total_pair_messages == 24
        assert run.total_items_synced == 15
        assert run.total_proxies_synced == 15
        assert run.per_host_compute().tolist() == [30, 60, 90, 120]

    def test_load_imbalance(self):
        run = make_run(ops=(10, 10, 10, 10))
        assert run.load_imbalance() == pytest.approx(1.0)
        run2 = make_run(ops=(0, 0, 0, 100))
        assert run2.load_imbalance() == pytest.approx(4.0)

    def test_load_imbalance_skips_empty_rounds(self):
        run = EngineRun(num_hosts=2)
        run.new_round("forward")  # all-zero compute
        assert run.load_imbalance() == 1.0

    def test_rounds_in_phase(self):
        run = EngineRun(num_hosts=1)
        run.new_round("forward")
        run.new_round("backward")
        run.new_round("backward")
        assert run.rounds_in_phase("forward") == 1
        assert run.rounds_in_phase("backward") == 2

    def test_merge(self):
        a = make_run(rounds=2)
        b = make_run(rounds=3)
        a.merge(b)
        assert a.num_rounds == 5
        assert [r.round_index for r in a.rounds] == [1, 2, 3, 4, 5]

    def test_merge_host_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_run(H=2, ops=(1, 2)).merge(make_run(H=4))

    def test_merge_leaves_other_run_intact(self):
        """Regression: merge used to renumber the *other* run's rounds in
        place, corrupting the merged-from run."""
        a = make_run(rounds=2)
        b = make_run(rounds=3)
        a.merge(b)
        assert [r.round_index for r in b.rounds] == [1, 2, 3]
        # The appended rounds are independent copies: mutating the merged
        # run must not leak back into the source run.
        a.rounds[2].bytes_out[:] = 0
        a.rounds[2].compute[0].edge_ops = 999
        a.rounds[2].pair_messages = 0
        assert b.rounds[0].bytes_out.tolist() == [100] * 4
        assert b.rounds[0].compute[0].edge_ops == 10
        assert b.rounds[0].pair_messages == 8

    def test_merge_twice_numbers_contiguously(self):
        a = make_run(rounds=1)
        b = make_run(rounds=2)
        a.merge(b)
        a.merge(b)  # merging the same run twice must still work
        assert [r.round_index for r in a.rounds] == [1, 2, 3, 4, 5]
        assert [r.round_index for r in b.rounds] == [1, 2]

    def test_round_copy_is_deep(self):
        run = make_run(rounds=1)
        rs = run.rounds[0]
        cp = rs.copy(round_index=7)
        assert cp.round_index == 7 and rs.round_index == 1
        cp.bytes_out[:] = 0
        cp.compute[0].edge_ops = 0
        assert rs.bytes_out.tolist() == [100] * 4
        assert rs.compute[0].edge_ops == 10

    def test_phases_in_first_execution_order(self):
        run = EngineRun(num_hosts=1)
        run.new_round("forward")
        run.new_round("backward")
        run.new_round("forward")
        assert run.phases() == ["forward", "backward"]


class TestClusterModel:
    def test_round_time_components(self):
        run = make_run()
        model = ClusterModel(4)
        t = model.time_round(run.rounds[0])
        c = model.constants
        assert t.computation == pytest.approx(40 * c.edge_op)
        assert t.barrier > 0
        assert t.wire == pytest.approx(200 * c.wire_per_byte)
        assert t.num_rounds == 1
        assert t.total == t.computation + t.communication

    def test_single_host_has_no_comm(self):
        run = make_run(H=1, ops=(10,), nbytes=0)
        t = ClusterModel(1).time_run(run)
        assert t.communication == 0.0
        assert t.computation > 0

    def test_run_time_sums_rounds(self):
        run = make_run(rounds=5)
        model = ClusterModel(4)
        total = model.time_run(run)
        single = model.time_round(run.rounds[0])
        assert total.total == pytest.approx(5 * single.total)
        assert total.num_rounds == 5

    def test_more_rounds_cost_more_barrier(self):
        """The core MRBC-vs-SBBC effect: same volume in fewer rounds wins."""
        model = ClusterModel(8)
        few = EngineRun(num_hosts=8)
        many = EngineRun(num_hosts=8)
        rs = few.new_round("f")
        rs.bytes_out[:] = 1000
        rs.bytes_in[:] = 1000
        for _ in range(10):
            rs = many.new_round("f")
            rs.bytes_out[:] = 100
            rs.bytes_in[:] = 100
        assert model.time_run(few).total < model.time_run(many).total

    def test_struct_ops_cost_more(self):
        c = CostConstants()
        assert c.struct_op > c.edge_op

    def test_host_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClusterModel(2).time_run(make_run(H=4))

    def test_barrier_grows_with_hosts(self):
        assert ClusterModel(256).barrier_latency() > ClusterModel(2).barrier_latency()

    def test_simulated_time_add(self):
        a = SimulatedTime(computation=1.0, communication=2.0, num_rounds=3)
        b = SimulatedTime(computation=0.5, communication=0.5, num_rounds=1)
        a.add(b)
        assert a.total == pytest.approx(4.0)
        assert a.num_rounds == 4

    def test_determinism(self):
        run = make_run()
        t1 = ClusterModel(4).time_run(run)
        t2 = ClusterModel(4).time_run(run)
        assert t1.total == t2.total

    def test_time_by_phase_partitions_time_run(self):
        run = make_run(rounds=2)
        for _ in range(3):
            rs = run.new_round("backward")
            rs.bytes_out[:] = 50
            rs.bytes_in[:] = 50
            rs.compute[1].vertex_ops = 7
        model = ClusterModel(4)
        by_phase = model.time_by_phase(run)
        assert list(by_phase) == ["forward", "backward"]
        assert by_phase["forward"].num_rounds == 2
        assert by_phase["backward"].num_rounds == 3
        total = model.time_run(run)
        assert sum(t.computation for t in by_phase.values()) == pytest.approx(
            total.computation, rel=1e-12
        )
        assert sum(t.communication for t in by_phase.values()) == pytest.approx(
            total.communication, rel=1e-12
        )

    def test_time_by_phase_host_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClusterModel(2).time_by_phase(make_run(H=4))
