"""Tests for Algorithm 4 (APSP-Finalizer): BFS tree, n-computation,
diameter convergecast, and the min{2n, n+5D} round bound."""

import pytest

from repro.core.mrbc_congest import directed_apsp
from repro.graph import generators as gen
from repro.graph.properties import directed_diameter, is_strongly_connected


class TestDiameterComputation:
    def test_diameter_exact(self, er_dense_sc):
        """5·D < n, so Algorithm 4 completes and reports the exact diameter."""
        g = er_dense_sc
        assert is_strongly_connected(g)
        res = directed_apsp(g, use_finalizer=True, detect_termination=False)
        assert res.diameter == directed_diameter(g)

    def test_diameter_on_small_world(self):
        g = gen.small_world(64, k=4, rewire_prob=0.15, seed=33)
        if not is_strongly_connected(g):  # pragma: no cover - seed-dependent
            pytest.skip("generated small-world not strongly connected")
        D = directed_diameter(g)
        res = directed_apsp(g, use_finalizer=True, detect_termination=False)
        if 5 * D < g.num_vertices:
            assert res.diameter == D

    def test_diameter_with_unknown_n(self, er_dense_sc):
        res = directed_apsp(
            er_dense_sc, use_finalizer=True, known_n=False, detect_termination=False
        )
        assert res.diameter == directed_diameter(er_dense_sc)

    def test_single_vertex(self):
        g = gen.DiGraph if False else gen.path_graph(1)
        res = directed_apsp(g, use_finalizer=True, detect_termination=False)
        assert res.rounds <= 2


class TestRoundBound:
    def test_early_termination_when_5d_small(self, er_dense_sc):
        """D << n/5 ⇒ the finalizer stops the run before 2n rounds."""
        g = er_dense_sc
        n = g.num_vertices
        D = directed_diameter(g)
        assert 5 * D < n  # precondition for the interesting case
        res = directed_apsp(g, use_finalizer=True, detect_termination=False)
        assert res.terminated_by == "stopped"
        assert res.rounds <= n + 5 * D
        assert res.rounds < 2 * n

    def test_2n_fallback_when_diameter_large(self, dicycle):
        """On a cycle 5D >= n, so the run ends at the 2n limit instead."""
        g = dicycle
        res = directed_apsp(g, use_finalizer=True, detect_termination=False)
        assert res.rounds <= 2 * g.num_vertices

    def test_not_strongly_connected_falls_back_to_2n(self):
        g = gen.path_graph(10, bidirectional=False)
        res = directed_apsp(g, use_finalizer=True, detect_termination=False)
        # |L_v| = n never holds at unreachable vertices: no early stop,
        # but correctness is unaffected.
        assert res.rounds <= 2 * g.num_vertices
        assert res.dist[0, 9] == 9

    def test_results_identical_with_and_without_finalizer(self, er_dense_sc):
        import numpy as np

        a = directed_apsp(er_dense_sc, use_finalizer=True, detect_termination=False)
        b = directed_apsp(er_dense_sc, use_finalizer=False, detect_termination=False)
        assert np.array_equal(a.dist, b.dist)
        assert np.allclose(a.sigma, b.sigma)


class TestControlMessageOverhead:
    def test_control_traffic_is_linear_not_quadratic(self, er_dense_sc):
        """BFS + finalizer traffic is O(m + n), far below the mn APSP term."""
        res = directed_apsp(
            er_dense_sc, use_finalizer=True, known_n=False, detect_termination=False
        )
        g = er_dense_sc
        control = sum(
            res.stats.count_for_tag(t)
            for t in ("bfs", "bfs_child", "cnt", "nval", "dstar", "diam")
        )
        # BFS floods both channel directions once (≤ 2·2m values) plus tree
        # convergecasts/broadcasts (≤ 4n values).
        assert control <= 4 * g.num_edges + 4 * g.num_vertices
        assert control > 0
