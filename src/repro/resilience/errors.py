"""Exception types raised by the resilience subsystem.

The exception hierarchy encodes the contract of the fault modes: in
``detect`` mode any materialized fault surfaces as a
:class:`FaultDetectedError` (or :class:`InvariantViolation` when caught by
a state check rather than the channel guard) instead of poisoning the
computation silently; in ``repair`` mode only :class:`HostCrashError`
escapes the communication layer — the driver catches it and restarts from
a checkpoint — and :class:`UnrecoverableFaultError` signals that bounded
recovery (retransmits, restarts) was exhausted.
"""

from __future__ import annotations

from repro.runtime.errors import ReproRuntimeError


class ResilienceError(ReproRuntimeError):
    """Base class for all resilience-subsystem errors.

    Part of the unified :class:`~repro.runtime.errors.ReproRuntimeError`
    hierarchy, so ``except ReproRuntimeError`` catches resilience faults
    alongside plane/engine errors.
    """


class FaultDetectedError(ResilienceError):
    """The channel integrity guard caught a corrupted/lost/duplicated
    message (``detect`` mode fails loudly rather than computing garbage)."""

    def __init__(
        self,
        kinds: list[str],
        round_index: int,
        sender: int,
        receiver: int,
        op: str,
    ) -> None:
        self.kinds = list(kinds)
        self.round_index = round_index
        self.sender = sender
        self.receiver = receiver
        self.op = op
        super().__init__(
            f"fault(s) {self.kinds} detected on channel "
            f"{sender}->{receiver} during {op!r} in round {round_index}"
        )


class InvariantViolation(ResilienceError):
    """A self-checking round invariant failed (state-level detection)."""

    def __init__(self, invariant: str, round_index: int, detail: str) -> None:
        self.invariant = invariant
        self.round_index = round_index
        super().__init__(
            f"invariant {invariant!r} violated in round {round_index}: {detail}"
        )


class HostCrashError(ResilienceError):
    """An injected host crash: the host's in-memory state is lost.

    Raised out of the communication substrate; resilient drivers catch it,
    restore from the last checkpoint, and replay.
    """

    def __init__(self, host: int, round_index: int) -> None:
        self.host = host
        self.round_index = round_index
        super().__init__(f"host {host} crashed in round {round_index}")


class HostTimeoutError(HostCrashError):
    """A stalled host exceeded the recovery policy's round deadline.

    Subclass of :class:`HostCrashError` on purpose: once the deadline
    declares the host failed, the restart machinery treats it exactly
    like a crash (BSP cannot distinguish a dead host from an arbitrarily
    slow one — the deadline is what *makes* the stall detectable).
    """

    def __init__(self, host: int, round_index: int, deadline_rounds: int) -> None:
        self.deadline_rounds = deadline_rounds
        ResilienceError.__init__(
            self,
            f"host {host} stalled past the {deadline_rounds}-round deadline "
            f"in round {round_index}; declaring it failed",
        )
        self.host = host
        self.round_index = round_index


class CheckpointCorruptError(ResilienceError):
    """A checkpoint failed its content-digest verification on load.

    The supervisor's restore path treats this as a damaged snapshot and
    falls back to the previous retained tag instead of restoring garbage.
    """

    def __init__(self, tag: str, detail: str) -> None:
        self.tag = tag
        super().__init__(f"checkpoint {tag!r} is corrupt: {detail}")


class UnrecoverableFaultError(ResilienceError):
    """Bounded recovery (retransmits / restarts) was exhausted."""
