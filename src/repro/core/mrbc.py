"""Min-Rounds BC on the D-Galois-style engine (paper §4).

This is the implementation the paper's evaluation measures: MRBC executed
as a vertex program over a partitioned graph, computing betweenness scores
for a batch of ``k`` sources simultaneously, with the §4.3 optimizations:

- **Batched sources with dense per-source arrays** — every proxy holds
  ``(dist, σ, δ)`` for all ``k`` sources of the batch in flat arrays
  (O(1) access, spatial locality).
- **Flat-map scheduling** — each master orders its ``(d, s)`` pairs
  lexicographically and derives the send round of a pair from its distance
  and list position (``r = d + position``), instead of storing explicit
  per-source round numbers.
- **Delayed synchronization** — a vertex's ``(d_sv, σ_sv)`` label is
  broadcast to its mirrors exactly once, in the round the pipelining
  schedule proves it final (the proxy synchronization rule of §4.3).

Realization of the §4.3 proxy rule
----------------------------------
The paper evaluates the send condition per proxy; we realize the identical
schedule with a *master-authoritative* variant: mirrors reduce their local
``(d, σ)`` candidates to the master whenever they improve, the master
maintains the authoritative list ``L_v`` and evaluates the CONGEST send
rule ``r = d_sv + ℓ(d_sv, s)`` on it, and fires exactly one broadcast per
``(v, s)`` pair.  Because Gluon's reduce and broadcast happen in the same
communication step, a candidate created by a round-``r`` fire is on the
master at the start of round ``r+1`` — exactly when the CONGEST message
would be in ``L_v`` — so the engine executes the same round schedule as
Algorithm 3 and Lemma 8's ``k + H`` forward-round bound carries over
(validated in the tests against :mod:`repro.core.mrbc_congest`).

The accumulation phase reverses the timestamps exactly as Algorithm 5:
vertex ``v`` fires its dependency broadcast for source ``s`` in round
``A_sv = R − τ_sv + 1``, targeted at the hosts owning in-edges of ``v``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.batching import iter_batches
from repro.core.sampling import sample_sources
from repro.engine.gluon import TARGET_ALL_PROXIES, TARGET_IN_EDGES
from repro.engine.partition import PartitionedGraph
from repro.engine.stats import EngineRun, RoundStats
from repro.graph.digraph import DiGraph
from repro.resilience.checkpoint import (
    mrbc_forward_snapshot,
    restore_mrbc_forward,
)
from repro.runtime.arrays import (
    BIG,
    ColumnBlock,
    HostArena,
    MasterColumns,
    RowStateView,
    expand_csr,
)
from repro.runtime.plane import GluonArrayPlane, GluonPlane, resolve_partition
from repro.runtime.superstep import SuperstepRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.context import ResilienceContext
    from repro.resilience.supervisor import PartialResult, RecoveryPolicy

#: "Infinite" distance sentinel in the dense candidate arrays.
INF = np.iinfo(np.int32).max

#: Forward payload: dist (4B) + sigma (8B); the source slot is charged as
#: metadata by Gluon's batched-source model.
FWD_PAYLOAD_BYTES = 12
#: Backward payload: dependency coefficient (8B) + dist (4B).
BWD_PAYLOAD_BYTES = 12


class MasterVertexState:
    """Authoritative ``L_v`` at a master, with per-host contributions.

    Each contributing host ``h`` reports its best local candidate
    ``(d_h, σ_h)`` where ``σ_h`` sums shortest paths arriving over
    ``h``-local in-edges.  The authoritative value is
    ``d* = min_h d_h`` and ``σ* = Σ_{h: d_h = d*} σ_h`` — every in-edge of
    the vertex lives on exactly one host, so this counts each predecessor
    contribution once.
    """

    __slots__ = ("entries", "best", "contrib", "tau", "sent_prefix")

    def __init__(self) -> None:
        self.entries: list[tuple[int, int]] = []  # sorted (d, source_idx)
        self.best: dict[int, tuple[int, float]] = {}
        self.contrib: dict[int, dict[int, tuple[int, float]]] = {}
        self.tau: dict[int, int] = {}
        self.sent_prefix = 0

    def initialize_source(self, si: int) -> None:
        """Seed the list with ``(0, si)`` — this master is a batch source."""
        self.entries.append((0, si))
        self.best[si] = (0, 1.0)
        # Recorded as a virtual contribution (host −1) so that later real
        # contributions can never displace the source's own zero distance.
        self.contrib[si] = {-1: (0, 1.0)}

    def apply_contribution(self, si: int, host: int, d: int, sigma: float) -> None:
        """Merge one reduced candidate into the authoritative state."""
        per_host = self.contrib.setdefault(si, {})
        old = per_host.get(host)
        if old is not None and old[0] < d:
            return  # stale (the host already reported something better)
        per_host[host] = (d, sigma)
        d_star = min(dh for dh, _ in per_host.values())
        sigma_star = sum(sg for dh, sg in per_host.values() if dh == d_star)
        cur = self.best.get(si)
        if cur is None:
            pos = bisect_left(self.entries, (d_star, si))
            assert pos >= self.sent_prefix, "insertion below sent prefix"
            self.entries.insert(pos, (d_star, si))
        elif d_star < cur[0]:
            old_pos = bisect_left(self.entries, (cur[0], si))
            assert old_pos >= self.sent_prefix, "replacing a fired entry"
            del self.entries[old_pos]
            pos = bisect_left(self.entries, (d_star, si))
            assert pos >= self.sent_prefix, "replacement below sent prefix"
            self.entries.insert(pos, (d_star, si))
        elif d_star == cur[0] and sigma_star != cur[1]:
            pos = bisect_left(self.entries, (d_star, si))
            assert pos >= self.sent_prefix, "sigma update after fire"
        self.best[si] = (d_star, sigma_star)

    def next_fire(self, rnd: int) -> tuple[int, int, float] | None:
        """Entry due to fire in ``rnd``: ``(d, si, σ)``, or None.

        Same prefix logic as the CONGEST implementation: send rounds are
        strictly increasing along the list, so fired entries form a stable
        prefix.
        """
        if self.sent_prefix >= len(self.entries):
            return None
        d, si = self.entries[self.sent_prefix]
        due = d + self.sent_prefix + 1
        if due == rnd:
            self.sent_prefix += 1
            self.tau[si] = rnd
            return d, si, self.best[si][1]
        assert due > rnd, f"missed fire: entry {(d, si)} was due in round {due}"
        return None

    def all_fired(self) -> bool:
        """True when every current entry has fired."""
        return self.sent_prefix == len(self.entries)


@dataclass
class HostState:
    """Per-host dense arrays for one batch (the §4.3 label layout)."""

    #: Local candidate distances / path counts (mirror-side accumulation).
    cand_dist: np.ndarray
    cand_sigma: np.ndarray
    #: Finalized values received via broadcast (needed for relaxation and
    #: for the backward phase's predecessor test).
    fin_dist: np.ndarray
    fin_sigma: np.ndarray
    #: Dirty flags for candidates to reduce at the next sync.
    dirty: np.ndarray
    #: Backward-phase partial dependency accumulator (flushed every round).
    partial_delta: np.ndarray
    delta_dirty: np.ndarray
    #: Delayed-sync bookkeeping: per local vertex, the lexicographically
    #: sorted list of candidate ``(d, si)`` pairs (the proxy's local
    #: ``L_v``), and per (lid, si) the distance at which the candidate was
    #: last reduced to the master (−1 = never).
    local_lists: dict[int, list[tuple[int, int]]] = None  # type: ignore[assignment]
    sent_d: np.ndarray = None  # type: ignore[assignment]
    #: Local vertices that still have unsent candidate pairs.
    unsent: set[int] = None  # type: ignore[assignment]


@dataclass
class MRBCEngineResult:
    """Output of :func:`mrbc_engine`."""

    bc: np.ndarray
    dist: np.ndarray
    sigma: np.ndarray
    sources: np.ndarray
    batch_size: int
    run: EngineRun
    forward_rounds: int
    backward_rounds: int
    partition: PartitionedGraph
    #: Graceful-degradation record when a recovery policy dropped one or
    #: more source batches; None on a fully completed run.  When set,
    #: ``bc``/``dist``/``sigma`` cover only the completed batches (failed
    #: sources keep ``dist == -1``).
    partial: "PartialResult | None" = None

    @property
    def total_rounds(self) -> int:
        """All BSP rounds across batches and phases."""
        return self.forward_rounds + self.backward_rounds

    def rounds_per_source(self) -> float:
        """The paper's Table 1 metric."""
        return self.total_rounds / self.sources.size


class _BatchExecutor:
    """Runs one k-source batch (forward + backward) on the engine."""

    def __init__(
        self,
        pg: PartitionedGraph,
        gluon: GluonPlane,
        run: EngineRun,
        batch: np.ndarray,
        delayed_sync: bool,
        resilience: "ResilienceContext | None" = None,
    ) -> None:
        self.pg = pg
        self.gluon = gluon
        self.run = run
        self.batch = batch
        self.k = batch.size
        self.delayed_sync = delayed_sync
        self.H = pg.num_hosts
        #: Second line of defense behind the channel guard: per-round
        #: verification of the master state the correctness lemmas rely on.
        self.checker = (
            resilience.new_invariant_checker() if resilience is not None else None
        )

        self.hosts: list[HostState] = []
        for part in pg.parts:
            L = part.num_local
            shape = (L, self.k)
            self.hosts.append(
                HostState(
                    cand_dist=np.full(shape, INF, dtype=np.int64),
                    cand_sigma=np.zeros(shape, dtype=np.float64),
                    fin_dist=np.full(shape, INF, dtype=np.int64),
                    fin_sigma=np.zeros(shape, dtype=np.float64),
                    dirty=np.zeros(shape, dtype=bool),
                    partial_delta=np.zeros(shape, dtype=np.float64),
                    delta_dirty=np.zeros(shape, dtype=bool),
                    local_lists={},
                    sent_d=np.full(shape, -1, dtype=np.int64),
                    unsent=set(),
                )
            )

        # Master states, keyed by gid, living on master_of[gid].
        self.masters: dict[int, MasterVertexState] = {}
        for si, s in enumerate(batch):
            ms = self.masters.setdefault(int(s), MasterVertexState())
            ms.initialize_source(si)
        self.delta: dict[int, np.ndarray] = {}

    def _master(self, gid: int) -> MasterVertexState:
        ms = self.masters.get(gid)
        if ms is None:
            ms = MasterVertexState()
            self.masters[gid] = ms
        return ms

    # -- forward phase ---------------------------------------------------------

    def _update_local_list(
        self, st: HostState, lid: int, si: int, old_d: int, new_d: int
    ) -> None:
        """Maintain the proxy's sorted local pair list on a candidate update."""
        lst = st.local_lists.get(lid)
        if lst is None:
            lst = st.local_lists[lid] = []
        if old_d != INF and old_d != new_d:
            i = bisect_left(lst, (old_d, si))
            if i < len(lst) and lst[i] == (old_d, si):
                del lst[i]
        if old_d != new_d:
            lst.insert(bisect_left(lst, (new_d, si)), (new_d, si))
        st.unsent.add(lid)

    def _stage_delayed(
        self, rnd: int, pending_reduce: list[list[tuple]], rs: RoundStats
    ) -> bool:
        """Delayed synchronization (§4.3): reduce a proxy's ``(d, σ)`` label
        to the master only once its local pipelining condition
        ``r >= d + position`` holds — one reduce per (vertex, source) per
        host unless the value changes after it was sent.
        Returns whether anything is staged or still unsent."""
        any_work = False
        for h, st in enumerate(self.hosts):
            part = self.pg.parts[h]
            items = pending_reduce[h]
            oc = rs.compute[h]
            done: list[int] = []
            for lid in sorted(st.unsent):
                lst = st.local_lists[lid]
                gid = int(part.gids[lid])
                all_sent = True
                # Flat-map lookup: the per-round schedule evaluation is
                # the data-structure overhead §4.3/Figure 2 attribute to
                # MRBC (one map probe per pending vertex per round).
                oc.struct_ops += 1
                for pos, (d, si) in enumerate(lst):
                    if d + pos + 1 > rnd + 1:
                        # Due rounds are increasing along the list; the
                        # rest is not due yet.
                        if any(
                            st.sent_d[lid, si2] != d2 for d2, si2 in lst[pos:]
                        ):
                            all_sent = False
                        break
                    if st.sent_d[lid, si] != d:
                        items.append((gid, si, d, float(st.cand_sigma[lid, si])))
                        st.sent_d[lid, si] = d
                if all_sent:
                    done.append(lid)
            for lid in done:
                st.unsent.discard(lid)
            if items or st.unsent:
                any_work = True
        return any_work

    def _stage_eager(self, pending_reduce: list[list[tuple]]) -> bool:
        """Ablation path: reduce every updated candidate every round."""
        any_dirty = False
        for h, st in enumerate(self.hosts):
            part = self.pg.parts[h]
            rows, cols = np.nonzero(st.dirty)
            if rows.size:
                any_dirty = True
                gids = part.gids[rows]
                items = pending_reduce[h]
                cd = st.cand_dist[rows, cols]
                cs = st.cand_sigma[rows, cols]
                for g, si, d, sg in zip(
                    gids.tolist(), cols.tolist(), cd.tolist(), cs.tolist()
                ):
                    items.append((g, si, d, sg))
                st.dirty[:] = False
        return any_dirty

    def run_forward(self, runtime: "SuperstepRuntime | None" = None) -> int:
        if runtime is None:
            runtime = SuperstepRuntime(run=self.run)
        pg, gluon = self.pg, self.gluon
        rledger = obs.current().rounds
        pending_reduce: list[list[tuple]] = [[] for _ in range(self.H)]

        def step(rnd: int, rs: RoundStats) -> bool:
            nonlocal pending_reduce

            # -- sync: reduce candidates, then evaluate fires at masters.
            inbox = gluon.reduce_to_masters(
                pending_reduce, FWD_PAYLOAD_BYTES, self.k, rs
            )
            pending_reduce = [[] for _ in range(self.H)]
            for h, items in enumerate(inbox):
                oc = rs.compute[h]
                for gid, sender, si, d, sigma in items:
                    self._master(gid).apply_contribution(si, sender, d, sigma)
                    oc.struct_ops += 2  # flat-map lookup + update

            fires: list[list[tuple]] = [[] for _ in range(self.H)]
            any_pending = False
            for gid, ms in self.masters.items():
                h = int(pg.master_of[gid])
                due = ms.next_fire(rnd)
                if due is not None:
                    d, si, sigma = due
                    fires[h].append((gid, si, d, sigma))
                    rs.compute[h].struct_ops += 1
                if not ms.all_fired():
                    any_pending = True

            if self.checker is not None:
                self.checker.check_master_round(rnd, self.masters)

            if rledger is not None:
                # Round-complexity state: a forward fire settles one
                # (v, s) pair; unfired schedule entries are the stage
                # occupancy behind Alg. 3's stable-prefix argument, and
                # ``unsent`` is the delayed-sync staging depth (§4.3).
                fired = sum(len(f) for f in fires)
                entries = 0
                sent = 0
                active_si: set[int] = set()
                for ms in self.masters.values():
                    entries += len(ms.entries)
                    sent += ms.sent_prefix
                    for _d, si in ms.entries[ms.sent_prefix:]:
                        active_si.add(si)
                rledger.note(
                    frontier=fired,
                    settled=fired,
                    active_sources=len(active_si),
                    stage_entries=entries,
                    stage_fired=sent,
                    stage_depth=sum(len(st.unsent) for st in self.hosts),
                )

            # Finalized labels broadcast to every proxy, as Gluon does —
            # out-edge hosts relax, candidate-holding hosts learn the
            # final value (suppressing stale longer-path reductions).
            deliveries = gluon.broadcast_from_masters(
                fires, TARGET_ALL_PROXIES, FWD_PAYLOAD_BYTES, self.k, rs
            )

            # -- compute: relax local out-edges of fired vertices.
            for h, items in enumerate(deliveries):
                part = pg.parts[h]
                st = self.hosts[h]
                oc = rs.compute[h]
                for gid, si, d, sigma in items:
                    lid = int(np.searchsorted(part.gids, gid))
                    st.fin_dist[lid, si] = d
                    st.fin_sigma[lid, si] = sigma
                    if self.delayed_sync:
                        # The broadcast value supersedes this host's own
                        # candidate: record it as already synchronized.  A
                        # worse local candidate can never become a valid
                        # min-distance contribution (every predecessor at
                        # d-1 fired before v), so its σ is dropped.
                        old = int(st.cand_dist[lid, si])
                        if old != INF:
                            self._update_local_list(st, lid, si, old, d)
                            if old > d:
                                st.cand_dist[lid, si] = d
                                st.cand_sigma[lid, si] = 0.0
                        st.sent_d[lid, si] = d
                        oc.struct_ops += 1  # local-list reconciliation
                    nbrs = part.out_neighbors_local(lid)
                    oc.vertex_ops += 1
                    oc.edge_ops += nbrs.size
                    if nbrs.size == 0:
                        continue
                    nd = d + 1
                    cd = st.cand_dist[nbrs, si]
                    # Suppress relaxations the finalized value already beats.
                    open_mask = st.fin_dist[nbrs, si] >= nd
                    better = (nd < cd) & open_mask
                    equal = (nd == cd) & open_mask
                    if np.any(better):
                        tgt = nbrs[better]
                        old_ds = st.cand_dist[tgt, si].tolist()
                        st.cand_dist[tgt, si] = nd
                        st.cand_sigma[tgt, si] = sigma
                        st.dirty[tgt, si] = True
                        oc.struct_ops += int(better.sum())
                        if self.delayed_sync:
                            oc.struct_ops += int(better.sum())  # list upkeep
                            for w, od in zip(tgt.tolist(), old_ds):
                                self._update_local_list(st, w, si, od, nd)
                    if np.any(equal):
                        tgt = nbrs[equal]
                        st.cand_sigma[tgt, si] += sigma
                        st.dirty[tgt, si] = True
                        oc.struct_ops += int(equal.sum())
                        if self.delayed_sync:
                            for w in tgt.tolist():
                                # σ grew at the same distance: if the label
                                # was already reduced, it must be re-sent
                                # (rare; see module docstring).
                                if st.sent_d[w, si] == nd:
                                    st.sent_d[w, si] = -1
                                st.unsent.add(w)

            # -- stage reductions for the next round's sync.
            if self.delayed_sync:
                for st in self.hosts:
                    st.dirty[:] = False
                any_work = self._stage_delayed(rnd, pending_reduce, rs)
            else:
                any_work = self._stage_eager(pending_reduce)

            return any_work or any_pending

        return runtime.run_loop("forward", step)

    # -- backward phase ----------------------------------------------------------

    def run_backward(self, runtime: "SuperstepRuntime | None" = None) -> int:
        if runtime is None:
            runtime = SuperstepRuntime(run=self.run)
        pg, gluon = self.pg, self.gluon
        R = max((max(ms.tau.values()) for ms in self.masters.values() if ms.tau), default=1)
        # Fire schedule per master: round -> list of source idx.
        schedule: dict[int, dict[int, int]] = {}
        for gid, ms in self.masters.items():
            for si, tau in ms.tau.items():
                if int(self.batch[si]) == gid:
                    continue  # the source itself has no predecessors
                schedule.setdefault(gid, {})[R - tau + 1] = si
            self.delta[gid] = np.zeros(self.k, dtype=np.float64)
        # Sources with no schedule entry still need delta rows for output.
        for gid in self.masters:
            self.delta.setdefault(gid, np.zeros(self.k, dtype=np.float64))

        pending_reduce: list[list[tuple]] = [[] for _ in range(self.H)]
        rledger = obs.current().rounds

        def step(rnd: int, rs: RoundStats) -> bool:
            nonlocal pending_reduce

            # -- sync: reduce partial dependencies, then fire broadcasts.
            inbox = gluon.reduce_to_masters(
                pending_reduce, BWD_PAYLOAD_BYTES, self.k, rs
            )
            pending_reduce = [[] for _ in range(self.H)]
            for h, items in enumerate(inbox):
                oc = rs.compute[h]
                for gid, _sender, si, pd in items:
                    self.delta[gid][si] += pd
                    oc.struct_ops += 1

            fires: list[list[tuple]] = [[] for _ in range(self.H)]
            for gid, by_round in schedule.items():
                si = by_round.get(rnd)
                if si is None:
                    continue
                ms = self.masters[gid]
                d, sigma = ms.best[si]
                m = (1.0 + self.delta[gid][si]) / sigma
                h = int(pg.master_of[gid])
                fires[h].append((gid, si, m, d))
                rs.compute[h].struct_ops += 1

            if rledger is not None:
                # A backward fire finalizes one (v, s) dependency; the
                # reverse schedule A_sv = R - tau_sv + 1 fires each
                # exactly once, so the settled series sums to the
                # schedule size.
                fired = sum(len(f) for f in fires)
                rledger.note(frontier=fired, settled=fired)

            deliveries = gluon.broadcast_from_masters(
                fires, TARGET_IN_EDGES, BWD_PAYLOAD_BYTES, self.k, rs
            )

            # -- compute: credit local predecessors.
            for h, items in enumerate(deliveries):
                part = pg.parts[h]
                st = self.hosts[h]
                oc = rs.compute[h]
                for gid, si, m, d in items:
                    lid = int(np.searchsorted(part.gids, gid))
                    preds = part.in_neighbors_local(lid)
                    oc.vertex_ops += 1
                    oc.edge_ops += preds.size
                    if preds.size == 0:
                        continue
                    is_pred = st.fin_dist[preds, si] == d - 1
                    if np.any(is_pred):
                        tgt = preds[is_pred]
                        st.partial_delta[tgt, si] += st.fin_sigma[tgt, si] * m
                        st.delta_dirty[tgt, si] = True
                        oc.struct_ops += int(is_pred.sum())

            # -- stage dirty partials (flushed, delta-style).
            any_dirty = False
            for h, st in enumerate(self.hosts):
                part = pg.parts[h]
                rows, cols = np.nonzero(st.delta_dirty)
                if rows.size:
                    any_dirty = True
                    gids = part.gids[rows]
                    pd = st.partial_delta[rows, cols]
                    items = pending_reduce[h]
                    for g, si, v in zip(gids.tolist(), cols.tolist(), pd.tolist()):
                        items.append((g, si, v))
                    st.partial_delta[rows, cols] = 0.0
                    st.delta_dirty[:] = False

            return any_dirty

        return runtime.run_loop("backward", step, min_rounds=R)

    # -- uniform executor interface (shared with the array twin) -----------

    def flatmap_entry_counts(self) -> list[int]:
        """Per master, |L_v| — the flat-map occupancy histogram input."""
        return [len(ms.entries) for ms in self.masters.values()]


class _ArrayBatchExecutor:
    """Columnar twin of :class:`_BatchExecutor` (``plane="array"``).

    Replaces the per-vertex dicts with the dense state in
    :mod:`repro.runtime.arrays` and each per-item Python loop with a
    whole-column sweep, while producing *byte-identical* engine counts,
    ledger entries and floating-point results.  The contract rests on
    three structural facts about the dict plane:

    - **Derived local lists** — a proxy's sorted ``(d, si)`` list always
      equals the sorted view of its candidate-distance row (a candidate
      is never displaced to a worse distance), so delayed-sync staging
      recomputes the due prefix from ``cand_dist`` each round instead of
      maintaining lists incrementally.
    - **Per-cell sequencing** — within one relax sweep, items interact
      only through per-``(vertex, source)`` cells.  Cells touched by a
      single event this round (the vast majority) are handled with array
      ops; multi-event cells replay the dict plane's exact per-item
      order via an event sort (``lexsort`` on (cell, item, kind)).
    - **Order-pinned masters** — everywhere the dict plane depends on
      dict insertion order (fire emission, backward schedule, banking),
      ``MasterColumns.master_seq`` reproduces it explicitly.

    σ path counts are integers in float64, so reassociated sums are
    exact; δ accumulations use ``np.add.at`` with events in the dict
    plane's order, making them bit-identical too.
    """

    def __init__(
        self,
        pg: PartitionedGraph,
        gluon: GluonArrayPlane,
        run: EngineRun,
        batch: np.ndarray,
        delayed_sync: bool,
        resilience: "ResilienceContext | None" = None,
    ) -> None:
        self.pg = pg
        self.gluon = gluon
        self.run = run
        self.batch = batch
        self.k = batch.size
        self.delayed_sync = delayed_sync
        self.H = pg.num_hosts
        self.n = int(pg.master_of.size)
        self.checker = (
            resilience.new_invariant_checker() if resilience is not None else None
        )
        self.arena = HostArena(pg.parts, self.k, self.n)
        self.masters = MasterColumns(self.k, self.n, self.H)
        for si, s in enumerate(batch):
            self.masters.initialize_source(si, int(s))
        self.delta: np.ndarray | None = None

    # -- forward phase -----------------------------------------------------

    def _apply_contribution_scalar(
        self, host: int, si: int, gid: int, d: int, sigma: float
    ) -> None:
        """Sequential merge for duplicate-keyed inbox items (fault plans)."""
        M = self.masters
        if int(M.contrib_d[host, si, gid]) < d:
            return  # stale (the host already reported something better)
        M.contrib_d[host, si, gid] = d
        M.contrib_sigma[host, si, gid] = sigma

    def _apply_forward_inbox(self, inbox, rs: RoundStats) -> None:
        """Merge reduced candidates into the master columns.

        Vectorized form of ``apply_contribution`` over all inbox items:
        the per-host stale filter touches only each sender's own past
        contribution, and (sender, si, gid) keys are unique within a
        fault-free round, so a scatter write is exact; the authoritative
        ``(d*, σ*)`` is then recomputed once per touched cell (the dict
        plane recomputes per item, but the final state is a pure
        function of the contribution table).
        """
        M = self.masters
        present = [
            (h, blk) for h, blk in enumerate(inbox)
            if blk is not None and len(blk)
        ]
        if not present:
            return
        for h, blk in present:
            rs.compute[h].struct_ops += 2 * len(blk)  # flat-map lookup + update
        gids = np.concatenate([blk.gids for _h, blk in present])
        snd = np.concatenate([blk.cols[0] for _h, blk in present]).astype(np.int64, copy=False)
        si = np.concatenate([blk.cols[1] for _h, blk in present]).astype(np.int64, copy=False)
        d = np.concatenate([blk.cols[2] for _h, blk in present]).astype(np.int64, copy=False)
        sg = np.concatenate([blk.cols[3] for _h, blk in present]).astype(np.float64, copy=False)
        M.register_new(gids)
        key = np.sort((snd * self.k + si) * self.n + gids)
        if key.size > 1 and (key[1:] == key[:-1]).any():
            for j in range(gids.size):
                self._apply_contribution_scalar(
                    int(snd[j]), int(si[j]), int(gids[j]), int(d[j]), float(sg[j])
                )
        else:
            old = M.contrib_d[snd, si, gids]
            keep = old >= d
            sw, iw, gw, dw, gg = snd[keep], si[keep], gids[keep], d[keep], sg[keep]
            M.contrib_d[sw, iw, gw] = dw
            M.contrib_sigma[sw, iw, gw] = gg
        # Recompute (d*, σ*) for every delivered cell — idempotent for
        # the stale-filtered ones, so the full set is safe.
        cells = np.unique(si * self.n + gids)
        si_u = cells // self.n
        g_u = cells % self.n
        sub_d = M.contrib_d[:, si_u, g_u]
        d_star = sub_d.min(axis=0)
        sig_star = np.where(
            sub_d == d_star, M.contrib_sigma[:, si_u, g_u], 0.0
        ).sum(axis=0)
        fired_worse = M.fired[si_u, g_u] & (d_star < M.ent_d[si_u, g_u])
        assert not fired_worse.any(), "replacing a fired entry"
        M.ent_d[si_u, g_u] = d_star
        M.best_sigma[si_u, g_u] = sig_star

    def _emit_fires(self, rnd: int, rs: RoundStats):
        """Evaluate the CONGEST send rule over all masters at once.

        The head of each master's unfired schedule is the min of
        ``d*(k+1)+si`` over unfired present cells; it fires when
        ``d + sent_prefix + 1 == rnd``, exactly ``next_fire``.
        Returns (per-host fire blocks, fired count, any_pending).
        """
        M = self.masters
        kmin = M.schedule_key().min(axis=0)
        has = kmin < BIG
        due = np.where(has, kmin // (self.k + 1), 0) + M.sent_prefix + 1
        fire = has & (due == rnd)
        missed = has & (due < rnd)
        assert not missed.any(), "missed fire: an entry was due earlier"
        g = np.nonzero(fire)[0]
        blocks = [None] * self.H
        if g.size:
            g = g[M.order_by_seq(g)]
            si_f = (kmin[g] % (self.k + 1)).astype(np.int64, copy=False)
            d_f = (kmin[g] // (self.k + 1)).astype(np.int64, copy=False)
            M.fired[si_f, g] = True
            M.tau[si_f, g] = rnd
            M.sent_prefix[g] += 1
            hosts_f = self.pg.master_of[g]
            blocks = GluonArrayPlane._split_by_dest(
                g, hosts_f, [si_f, d_f, M.best_sigma[si_f, g]], self.H
            )
            for h, c in enumerate(np.bincount(hosts_f, minlength=self.H)):
                if c:
                    rs.compute[h].struct_ops += int(c)
        any_pending = bool(((M.ent_d != INF) & ~M.fired).any())
        return blocks, int(g.size), any_pending

    def _relax_forward(self, deliveries, rs: RoundStats) -> None:
        """Relax local out-edges of this round's fired vertices — one
        arena-wide sweep over every host's delivery block.

        The dict plane processes delivery items one by one per host;
        every intra-round read-after-write runs through either the
        finalized row (unique writes — reconstructed exactly from the
        post-state plus the per-cell fire position ``fpos``) or a
        candidate cell.  Hosts never share cells (arena rows are
        per-host), so concatenating the blocks in host order preserves
        each host's item order and changes nothing else.  Cells with one
        event this round take the vectorized path; multi-event cells
        replay events in item order.
        """
        present = [
            (h, blk) for h, blk in enumerate(deliveries)
            if blk is not None and len(blk)
        ]
        if not present:
            return
        A = self.arena
        delayed = self.delayed_sync
        k = self.k
        lens = np.array([len(blk) for _h, blk in present], dtype=np.int64)
        hs = np.repeat(
            np.array([h for h, _blk in present], dtype=np.int64), lens
        )
        gids = np.concatenate([blk.gids for _h, blk in present])
        si = np.concatenate([blk.cols[0] for _h, blk in present]).astype(np.int64, copy=False)
        d = np.concatenate([blk.cols[1] for _h, blk in present]).astype(np.int64, copy=False)
        sg = np.concatenate([blk.cols[2] for _h, blk in present]).astype(np.float64, copy=False)
        m = int(gids.size)
        lid = A.lut[hs, gids]
        A.fin_dist[lid, si] = d
        A.fin_sigma[lid, si] = sg
        A.fpos[lid, si] = np.arange(m, dtype=np.int64)
        for (h, blk), cnt in zip(present, lens.tolist()):
            oc = rs.compute[h]
            oc.vertex_ops += cnt
            if delayed:
                oc.struct_ops += cnt  # local-list reconciliation probes
        deg = A.out_offsets[lid + 1] - A.out_offsets[lid]
        # Delivery blocks are host-contiguous, so per-host edge totals are
        # segment sums at the block starts (int all the way, no bincount
        # float round-trip).
        block_starts = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=block_starts[1:])
        for (h, _blk), e in zip(
            present, np.add.reduceat(deg, block_starts).tolist()
        ):
            if e:
                rs.compute[h].edge_ops += int(e)
        item_of, w = expand_csr(A.out_offsets, A.out_targets, lid)
        if w.size:
            sie = si[item_of]
            nd = d[item_of] + 1
            # Open ⟺ the finalized value does not already beat the
            # relaxation *at the time the item runs*: final after this
            # round, or finalized by a later item than this one.
            # Called from the step loop right after broadcast delivery,
            # so the finalized columns are post-synchronization here.
            open_ = (A.fin_dist[w, sie] >= nd) | (A.fpos[w, sie] > item_of)  # repro-lint: disable=RL301
            r_sel = np.nonzero(open_)[0]
        else:
            sie = nd = np.empty(0, dtype=np.int64)
            r_sel = np.empty(0, dtype=np.int64)
        if delayed:
            cells = np.concatenate([lid * k + si, w[r_sel] * k + sie[r_sel]])
            js = np.concatenate([np.arange(m, dtype=np.int64), item_of[r_sel]])
            kinds = np.concatenate(
                [np.zeros(m, dtype=np.int8), np.ones(r_sel.size, dtype=np.int8)]
            )
        else:
            cells = w[r_sel] * k + sie[r_sel] if r_sel.size else r_sel
            js = item_of[r_sel] if r_sel.size else r_sel
            kinds = np.ones(r_sel.size, dtype=np.int8)
        n_better = np.zeros(self.H, dtype=np.int64)
        n_equal = np.zeros(self.H, dtype=np.int64)
        if cells.size:
            # Stable sort on one composite key ≡ lexsort((kinds, js,
            # cells)): js < m and kinds < 2, so the packing is injective.
            order = np.argsort(
                (cells * m + js) * 2 + kinds, kind="stable"
            )
            cs = cells[order]
            first = np.ones(cs.size, dtype=bool)
            first[1:] = cs[1:] != cs[:-1]
            run_len = np.bincount(np.cumsum(first) - 1)
            single = np.repeat(run_len == 1, run_len)
            ev = order[single]
            if delayed:
                fe = ev[ev < m]
                re_ = ev[ev >= m] - m
            else:
                fe = np.empty(0, dtype=np.int64)
                re_ = ev
            if fe.size:
                # F events: the broadcast value supersedes this host's
                # own candidate (see the dict plane for the rationale).
                fl, fs, fd = lid[fe], si[fe], d[fe]
                old = A.cand_dist[fl, fs]
                has_old = old != INF
                upd = has_old & (old > fd)
                A.cand_dist[fl[upd], fs[upd]] = fd[upd]
                A.cand_sigma[fl[upd], fs[upd]] = 0.0
                A.unsent.set_many(fl[has_old])
                A.sent_d[fl, fs] = fd
            if re_.size:
                idx = r_sel[re_]
                wt, ws, wnd = w[idx], sie[idx], nd[idx]
                wsg = sg[item_of[idx]]
                ev_h = hs[item_of[idx]]
                cd = A.cand_dist[wt, ws]
                bet = wnd < cd
                eq = wnd == cd
                if bet.any():
                    bw, bs = wt[bet], ws[bet]
                    A.cand_dist[bw, bs] = wnd[bet]
                    A.cand_sigma[bw, bs] = wsg[bet]
                    if delayed:
                        A.unsent.set_many(bw)
                    else:
                        A.dirty[bw, bs] = True
                    n_better += np.bincount(ev_h[bet], minlength=self.H)
                if eq.any():
                    ew, es = wt[eq], ws[eq]
                    A.cand_sigma[ew, es] += wsg[eq]
                    if delayed:
                        reset = A.sent_d[ew, es] == wnd[eq]
                        A.sent_d[ew[reset], es[reset]] = -1
                        A.unsent.set_many(ew)
                    else:
                        A.dirty[ew, es] = True
                    n_equal += np.bincount(ev_h[eq], minlength=self.H)
            multi = order[~single]
            if multi.size:
                self._replay_multi(
                    multi, m, lid, si, d, r_sel, w, sie, nd, sg, item_of,
                    hs, n_better, n_equal,
                )
        sfac = 2 if delayed else 1
        for h in range(self.H):
            ops = sfac * int(n_better[h]) + int(n_equal[h])
            if ops:
                rs.compute[h].struct_ops += ops
        A.fpos[lid, si] = -1

    def _replay_multi(
        self, multi, m, lid, si, d, r_sel, w, sie, nd, sg, item_of,
        hs, n_better, n_equal,
    ) -> None:
        """Replay multi-event cells in the dict plane's per-item order.

        Cell state is gathered into Python dicts once, replayed with
        pure-Python arithmetic (float64 in, float64 out — bit-identical
        to the in-array sequence), and scattered back; per-event NumPy
        scalar indexing is the thing this avoids.
        """
        A = self.arena
        delayed = self.delayed_sync
        k = self.k
        if delayed:
            isf = multi < m
            idx_f = np.where(isf, multi, 0)
            idx_r = r_sel[np.where(isf, 0, multi - m)]
            rows = np.where(isf, lid[idx_f], w[idx_r])
            srcs = np.where(isf, si[idx_f], sie[idx_r])
            vals = np.where(isf, d[idx_f], nd[idx_r])
            sgv = np.where(isf, 0.0, sg[item_of[idx_r]])
            hostv = hs[np.where(isf, idx_f, item_of[idx_r])]
            kinds_l = isf.tolist()
        else:
            idx_r = r_sel[multi]
            rows = w[idx_r]
            srcs = sie[idx_r]
            vals = nd[idx_r]
            sgv = sg[item_of[idx_r]]
            hostv = hs[item_of[idx_r]]
            kinds_l = [False] * int(multi.size)
        cells = rows * k + srcs
        ucells, pos = np.unique(cells, return_inverse=True)
        ua, us = ucells // k, ucells % k
        cd_l = A.cand_dist[ua, us].tolist()
        sg_l = A.cand_sigma[ua, us].tolist()
        sd_l = A.sent_d[ua, us].tolist()
        nb = [0] * self.H
        ne = [0] * self.H
        unsent_rows: list[int] = []
        dirty_pos: list[int] = []
        for isf_, p, a_, v_, s_, h_ in zip(
            kinds_l, pos.tolist(), rows.tolist(), vals.tolist(),
            sgv.tolist(), hostv.tolist(),
        ):
            cd_ = cd_l[p]
            if isf_:
                if cd_ != INF:
                    if cd_ > v_:
                        cd_l[p] = v_
                        sg_l[p] = 0.0
                    unsent_rows.append(a_)
                sd_l[p] = v_
            elif v_ < cd_:
                cd_l[p] = v_
                sg_l[p] = s_
                if delayed:
                    unsent_rows.append(a_)
                else:
                    dirty_pos.append(p)
                nb[h_] += 1
            elif v_ == cd_:
                sg_l[p] = sg_l[p] + s_
                if delayed:
                    if sd_l[p] == v_:
                        sd_l[p] = -1
                    unsent_rows.append(a_)
                else:
                    dirty_pos.append(p)
                ne[h_] += 1
        A.cand_dist[ua, us] = cd_l
        A.cand_sigma[ua, us] = sg_l
        n_better += np.array(nb, dtype=np.int64)
        n_equal += np.array(ne, dtype=np.int64)
        if delayed:
            A.sent_d[ua, us] = sd_l
            if unsent_rows:
                A.unsent.set_many(np.array(unsent_rows, dtype=np.int64))
        elif dirty_pos:
            dp = np.array(dirty_pos, dtype=np.int64)
            A.dirty[ua[dp], us[dp]] = True

    def _stage_delayed(self, rnd: int, rs: RoundStats):
        """Vectorized §4.3 staging: derive each pending vertex's sorted
        pair list from its candidate row, send the due prefix.

        One arena-wide sweep: the unsent bitset's sorted index vector is
        exactly the dict plane's (host asc, lid asc) iteration order, so
        slicing the row-major result at the arena's host offsets yields
        the per-host blocks in the dict plane's staging order.
        """
        blocks: list = [None] * self.H
        A = self.arena
        lids = A.unsent.indices()
        if lids.size == 0:
            return blocks, False
        for h, c in enumerate(
            np.bincount(A.host_of[lids], minlength=self.H)
        ):
            if c:
                rs.compute[h].struct_ops += int(c)  # flat-map probes
        pos = np.arange(self.k, dtype=np.int64)[None, :]
        sub_d = A.cand_dist[lids]
        present = sub_d != INF
        key = np.where(present, sub_d * (self.k + 1) + pos, BIG)
        order = np.argsort(key, axis=1)
        rix = np.arange(lids.size, dtype=np.int64)[:, None]
        d_sorted = sub_d[rix, order]
        p_sorted = present[rix, order]
        sent_sorted = A.sent_d[lids][rix, order]
        # Due rounds are strictly increasing along each sorted list,
        # so the due test per position yields the dict plane's
        # break-at-first-not-due prefix automatically.
        due = p_sorted & (d_sorted + pos <= rnd)
        need = due & (sent_sorted != d_sorted)
        rows, cols = np.nonzero(need)
        if rows.size:
            l_sel = lids[rows]  # non-decreasing: row-major over sorted lids
            si_sel = order[rows, cols]
            d_sel = d_sorted[rows, cols]
            A.sent_d[l_sel, si_sel] = d_sel
            sg_sel = A.cand_sigma[l_sel, si_sel]
            g_sel = A.gids[l_sel]
            bounds = np.searchsorted(l_sel, A.off)
            for h in range(self.H):
                a, b = int(bounds[h]), int(bounds[h + 1])
                if b > a:
                    blocks[h] = ColumnBlock.raw(
                        g_sel[a:b], (si_sel[a:b], d_sel[a:b], sg_sel[a:b])
                    )
        remain = p_sorted & ~due & (sent_sorted != d_sorted)
        A.unsent.clear_many(lids[~remain.any(axis=1)])
        any_work = rows.size > 0 or A.unsent.any()
        return blocks, any_work

    def _stage_eager(self):
        """Ablation path: reduce every updated candidate every round."""
        blocks: list = [None] * self.H
        A = self.arena
        rows, cols = np.nonzero(A.dirty)
        if rows.size == 0:
            return blocks, False
        cols = cols.astype(np.int64, copy=False)
        d_sel = A.cand_dist[rows, cols]
        sg_sel = A.cand_sigma[rows, cols]
        g_sel = A.gids[rows]
        bounds = np.searchsorted(rows, A.off)
        for h in range(self.H):
            a, b = int(bounds[h]), int(bounds[h + 1])
            if b > a:
                blocks[h] = ColumnBlock.raw(
                    g_sel[a:b], (cols[a:b], d_sel[a:b], sg_sel[a:b])
                )
        A.dirty[:] = False
        return blocks, True

    def run_forward(self, runtime: "SuperstepRuntime | None" = None) -> int:
        if runtime is None:
            runtime = SuperstepRuntime(run=self.run)
        gluon = self.gluon
        rledger = obs.current().rounds
        pending: list = [None] * self.H

        def step(rnd: int, rs: RoundStats) -> bool:
            nonlocal pending

            inbox = gluon.reduce_to_masters(pending, FWD_PAYLOAD_BYTES, self.k, rs)
            pending = [None] * self.H
            self._apply_forward_inbox(inbox, rs)
            fires, fired_total, any_pending = self._emit_fires(rnd, rs)

            if self.checker is not None:
                self.checker.check_master_round(rnd, self.masters.to_rows())

            if rledger is not None:
                M = self.masters
                present = M.ent_d != INF
                rledger.note(
                    frontier=fired_total,
                    settled=fired_total,
                    active_sources=int(
                        np.count_nonzero((present & ~M.fired).any(axis=1))
                    ),
                    stage_entries=int(present.sum()),
                    stage_fired=int(M.sent_prefix.sum()),
                    stage_depth=self.arena.unsent.count(),
                )

            deliveries = gluon.broadcast_from_masters(
                fires, TARGET_ALL_PROXIES, FWD_PAYLOAD_BYTES, self.k, rs
            )
            self._relax_forward(deliveries, rs)

            if self.delayed_sync:
                pending, any_work = self._stage_delayed(rnd, rs)
            else:
                pending, any_work = self._stage_eager()
            return any_work or any_pending

        return runtime.run_loop("forward", step)

    # -- backward phase ----------------------------------------------------

    def run_backward(self, runtime: "SuperstepRuntime | None" = None) -> int:
        if runtime is None:
            runtime = SuperstepRuntime(run=self.run)
        gluon = self.gluon
        M = self.masters
        R = int(M.tau[M.fired].max()) if M.fired.any() else 1
        src_self = np.zeros((self.k, self.n), dtype=bool)
        src_self[np.arange(self.k), self.batch] = True
        sched = M.fired & ~src_self
        self.delta = np.zeros((self.k, self.n), dtype=np.float64)
        pending: list = [None] * self.H
        rledger = obs.current().rounds

        def step(rnd: int, rs: RoundStats) -> bool:
            nonlocal pending

            inbox = gluon.reduce_to_masters(pending, BWD_PAYLOAD_BYTES, self.k, rs)
            pending = [None] * self.H
            got = [
                (h, blk) for h, blk in enumerate(inbox)
                if blk is not None and len(blk)
            ]
            if got:
                for h, blk in got:
                    rs.compute[h].struct_ops += len(blk)
                gi = np.concatenate([blk.gids for _h, blk in got])
                si = np.concatenate(
                    [blk.cols[1] for _h, blk in got]
                ).astype(np.int64, copy=False)
                pd = np.concatenate(
                    [blk.cols[2] for _h, blk in got]
                ).astype(np.float64, copy=False)
                # Sequential accumulation in inbox order (host asc, item
                # order within) — bit-identical to the dict plane's
                # per-item `+=`.
                np.add.at(self.delta, (si, gi), pd)

            fr = sched & (M.tau == R - rnd + 1)
            si_f, g_f = np.nonzero(fr)
            blocks = [None] * self.H
            if g_f.size:
                ordp = M.order_by_seq(g_f)
                g_f, si_f = g_f[ordp], si_f[ordp]
                sg = M.best_sigma[si_f, g_f]
                coeff = (1.0 + self.delta[si_f, g_f]) / sg
                hosts_f = self.pg.master_of[g_f]
                blocks = GluonArrayPlane._split_by_dest(
                    g_f, hosts_f, [si_f, coeff, M.ent_d[si_f, g_f]], self.H
                )
                for h, c in enumerate(np.bincount(hosts_f, minlength=self.H)):
                    if c:
                        rs.compute[h].struct_ops += int(c)

            if rledger is not None:
                rledger.note(frontier=int(g_f.size), settled=int(g_f.size))

            deliveries = gluon.broadcast_from_masters(
                blocks, TARGET_IN_EDGES, BWD_PAYLOAD_BYTES, self.k, rs
            )
            self._credit_backward(deliveries, rs)

            pending = [None] * self.H
            A = self.arena
            rows, cols = np.nonzero(A.delta_dirty)
            if rows.size == 0:
                return False
            cols = cols.astype(np.int64, copy=False)
            pd_sel = A.partial_delta[rows, cols]
            g_sel = A.gids[rows]
            bounds = np.searchsorted(rows, A.off)
            for h in range(self.H):
                a, b = int(bounds[h]), int(bounds[h + 1])
                if b > a:
                    pending[h] = ColumnBlock.raw(
                        g_sel[a:b], (cols[a:b], pd_sel[a:b])
                    )
            A.partial_delta[rows, cols] = 0.0
            A.delta_dirty[:] = False
            return True

        return runtime.run_loop("backward", step, min_rounds=R)

    def _credit_backward(self, deliveries, rs: RoundStats) -> None:
        present = [
            (h, blk) for h, blk in enumerate(deliveries)
            if blk is not None and len(blk)
        ]
        if not present:
            return
        A = self.arena
        lens = np.array([len(blk) for _h, blk in present], dtype=np.int64)
        hs = np.repeat(
            np.array([h for h, _blk in present], dtype=np.int64), lens
        )
        gids = np.concatenate([blk.gids for _h, blk in present])
        si = np.concatenate([blk.cols[0] for _h, blk in present]).astype(np.int64, copy=False)
        coeff = np.concatenate(
            [blk.cols[1] for _h, blk in present]
        ).astype(np.float64, copy=False)
        d = np.concatenate([blk.cols[2] for _h, blk in present]).astype(np.int64, copy=False)
        lid = A.lut[hs, gids]
        for (h, blk), cnt in zip(present, lens.tolist()):
            rs.compute[h].vertex_ops += cnt
        deg = A.in_offsets[lid + 1] - A.in_offsets[lid]
        block_starts = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=block_starts[1:])
        for (h, _blk), e in zip(
            present, np.add.reduceat(deg, block_starts).tolist()
        ):
            if e:
                rs.compute[h].edge_ops += int(e)
        item_of, wp = expand_csr(A.in_offsets, A.in_sources, lid)
        if wp.size == 0:
            return
        sie = si[item_of]
        # Called from the step loop right after broadcast delivery, so
        # the finalized columns are post-synchronization here.
        is_pred = A.fin_dist[wp, sie] == d[item_of] - 1  # repro-lint: disable=RL301
        sel = np.nonzero(is_pred)[0]
        if sel.size == 0:
            return
        wt, ws = wp[sel], sie[sel]
        vals = A.fin_sigma[wt, ws] * coeff[item_of[sel]]  # repro-lint: disable=RL301
        # np.add.at accumulates in event order = (host, item,
        # predecessor) order — the dict plane's exact float sequence
        # per cell (cells never span hosts).
        np.add.at(A.partial_delta, (wt, ws), vals)
        A.delta_dirty[wt, ws] = True
        for h, c in enumerate(
            np.bincount(hs[item_of[sel]], minlength=self.H)
        ):
            if c:
                rs.compute[h].struct_ops += int(c)

    # -- uniform executor interface ----------------------------------------

    def flatmap_entry_counts(self) -> list[int]:
        """Per master, |L_v| — the flat-map occupancy histogram input."""
        counts = (self.masters.ent_d != INF).sum(axis=0)
        return [int(counts[g]) for g in self.masters.master_order]

    def to_rows(self) -> RowStateView:
        """Dict-plane-shaped view for checkpoints/invariant checks."""
        return RowStateView(
            masters=self.masters.to_rows(),
            hosts=[self.arena.host_view(h) for h in range(self.H)],
            batch=self.batch,
        )

    def from_rows(self, masters, arrays) -> None:
        """Load a dict-plane forward snapshot (checkpoint restore)."""
        self.masters = MasterColumns(self.k, self.n, self.H)
        self.masters.from_rows(masters)
        self.delta = None
        for h in range(self.H):
            view = self.arena.host_view(h)
            view.fin_dist[:] = arrays[f"fin_dist_{h}"]
            view.fin_sigma[:] = arrays[f"fin_sigma_{h}"]


def mrbc_engine(
    g: DiGraph,
    sources: np.ndarray | list[int] | None = None,
    num_sources: int | None = None,
    batch_size: int = 32,
    num_hosts: int = 8,
    policy: str = "cvc",
    partition: PartitionedGraph | None = None,
    delayed_sync: bool = True,
    forward_only: bool = False,
    seed: int | None = None,
    resilience: "ResilienceContext | None" = None,
    recovery_policy: "RecoveryPolicy | str | None" = None,
    plane: str = "dict",
) -> MRBCEngineResult:
    """Run Min-Rounds BC on the simulated D-Galois engine.

    Parameters
    ----------
    sources:
        Explicit source vertices; if ``None``, ``num_sources`` are sampled
        (contiguous chunk, the paper's §5.1 protocol; default: all
        vertices).
    batch_size:
        Sources per simultaneous batch (the paper's ``k``; Figure 1).
    num_hosts, policy, partition:
        Partitioning configuration; pass a prebuilt ``partition`` to share
        it across algorithms (as the benchmarks do).
    forward_only:
        Run only the k-SSP forward phase (distances and σ; BC stays zero)
        — used by :func:`repro.core.kssp.kssp`.
    delayed_sync:
        Disable only for the ablation benchmark — eagerly broadcasts
        provisional values, inflating communication exactly as §4.3 says
        the optimization avoids.
    resilience:
        Optional :class:`~repro.resilience.context.ResilienceContext`.
        Attaches the fault-plan channel guard to the Gluon substrate,
        enables per-round master-state invariant checks, snapshots each
        batch's post-forward state, and (in ``repair`` mode) recovers
        from injected host crashes: a forward-phase crash restarts the
        batch's forward pass, a backward-phase crash restores the
        forward checkpoint and replays only the backward rounds.
        Replayed rounds are marked as recovery overhead.
    recovery_policy:
        A :class:`~repro.resilience.supervisor.RecoveryPolicy` (or preset
        name) governing retry/backoff/deadline/restart budgets and
        checkpoint retention.  (Named ``recovery_policy`` because
        ``policy`` is this driver's partition policy.)  A degrading
        policy makes each source batch a failure domain: an
        unrecoverable batch is dropped and the result carries a
        :class:`~repro.resilience.supervisor.PartialResult` salvaging
        the completed batches.  With no faults, attaching a policy is
        neutral — the deterministic signature is byte-identical.
    plane:
        ``"dict"`` (default) runs the per-vertex reference executor on
        the tuple-exchanging :class:`~repro.runtime.plane.GluonPlane`;
        ``"array"`` runs the columnar executor on the
        :class:`~repro.runtime.plane.GluonArrayPlane`.  Both produce
        byte-identical results, engine counts and ledger entries; the
        array plane is the fast path (see docs/PERFORMANCE.md).

    Returns per-vertex BC (summed over the sampled sources), per-source
    distances and path counts, and the full engine statistics.
    """
    from repro.resilience.supervisor import attach_policy

    pg = resolve_partition(g, partition, num_hosts, policy)
    if sources is None:
        if num_sources is None:
            src = np.arange(g.num_vertices, dtype=np.int64)
        else:
            src = sample_sources(g, num_sources, seed=seed)
    else:
        src = np.asarray(sources, dtype=np.int64).ravel()
    if src.size == 0:
        raise ValueError("need at least one source")

    resilience, supervisor = attach_policy(resilience, recovery_policy)
    if plane == "dict":
        exec_cls = _BatchExecutor
        plane_obj = GluonPlane(pg, resilience=resilience)
    elif plane == "array":
        exec_cls = _ArrayBatchExecutor
        plane_obj = GluonArrayPlane(pg, resilience=resilience)
    else:
        raise ValueError(f"unknown plane {plane!r} (expected 'dict' or 'array')")
    runtime = SuperstepRuntime(plane=plane_obj, resilience=resilience)
    gluon = runtime.plane
    run = runtime.run
    n = g.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    dist = np.full((src.size, n), -1, dtype=np.int64)
    sigma = np.zeros((src.size, n), dtype=np.float64)
    fwd_rounds = 0
    bwd_rounds = 0

    tele = obs.current()

    def execute_batch(b0: int, batch: np.ndarray) -> tuple[_BatchExecutor, int, int]:
        # -- forward, restarting the batch from scratch on a host crash
        # (redone rounds are charged to the recovery phase by the runtime).
        def fwd_prepare(attempt: int) -> _BatchExecutor:
            return exec_cls(pg, gluon, run, batch, delayed_sync, resilience)

        def fwd_body(ex: _BatchExecutor) -> int:
            with runtime.phase("forward", batch=b0, k=int(batch.size)):
                return ex.run_forward(runtime)

        ex, f = runtime.run_with_restart(fwd_prepare, fwd_body)
        if resilience is not None:
            meta, arrays = mrbc_forward_snapshot(ex)
            resilience.checkpoints.save(f"batch{b0:04d}-forward", meta, arrays)
        if tele.enabled:
            # Flat-map occupancy: |L_v| across this batch's masters (the
            # data structure whose maintenance cost Figure 2 charges to
            # MRBC's computation time).
            hist = tele.metrics.histogram("mrbc.flatmap_entries")
            for cnt in ex.flatmap_entry_counts():
                hist.observe(cnt)
        b = 0
        if not forward_only:
            # -- backward, resuming from the forward checkpoint on a crash.
            def bwd_prepare(attempt: int, first: _BatchExecutor = ex) -> _BatchExecutor:
                if attempt == 1:
                    return first
                fresh = exec_cls(
                    pg, gluon, run, batch, delayed_sync, resilience
                )
                meta, arrays = resilience.checkpoints.load(
                    f"batch{b0:04d}-forward"
                )
                restore_mrbc_forward(fresh, meta, arrays)
                return fresh

            def bwd_body(ex: _BatchExecutor) -> int:
                with runtime.phase("backward", batch=b0, k=int(batch.size)):
                    return ex.run_backward(runtime)

            ex, b = runtime.run_with_restart(bwd_prepare, bwd_body)
        return ex, f, b

    for b0, batch in enumerate(iter_batches(src, batch_size)):
        # Each batch is a failure domain: under a degrading policy an
        # unrecoverable batch is skipped (nothing banked) and the
        # remaining batches still contribute exact per-source results.
        if supervisor is not None:
            out, completed = supervisor.run_unit(
                b0, batch, lambda b0=b0, batch=batch: execute_batch(b0, batch)
            )
            if not completed:
                continue
        else:
            out = execute_batch(b0, batch)
        ex, f, b = out
        fwd_rounds += f
        bwd_rounds += b
        base = b0 * batch_size
        if plane == "array":
            # Same banking, columnar: (si, gid) cells are disjoint, and
            # the per-gid BC accumulation runs si-ascending with zero
            # contributions from non-masters (float identity), so the
            # result is bit-identical to the dict loop below.
            M = ex.masters
            si_p, g_p = np.nonzero(M.ent_d != INF)
            dist[base + si_p, g_p] = M.ent_d[si_p, g_p]
            sigma[base + si_p, g_p] = M.best_sigma[si_p, g_p]
            if not forward_only:
                registered = M.master_seq >= 0
                for si in range(batch.size):
                    row = np.where(registered, ex.delta[si], 0.0)
                    row[int(batch[si])] = 0.0
                    bc += row
        else:
            for gid, ms in ex.masters.items():
                for si, (d, sg) in ms.best.items():
                    dist[base + si, gid] = d
                    sigma[base + si, gid] = sg
            if not forward_only:
                for gid, dl in ex.delta.items():
                    for si in range(batch.size):
                        if int(batch[si]) != gid:
                            bc[gid] += dl[si]

    partial = (
        supervisor.partial_result(bc, requested_sources=int(src.size), num_vertices=n)
        if supervisor is not None
        else None
    )
    return MRBCEngineResult(
        bc=bc,
        dist=dist,
        sigma=sigma,
        sources=src,
        batch_size=batch_size,
        run=run,
        forward_rounds=fwd_rounds,
        backward_rounds=bwd_rounds,
        partition=pg,
        partial=partial,
    )
