"""Tests for the ABBC (async) and MFBC (sparse-matrix) baselines."""

import numpy as np
import pytest

from repro.baselines.abbc import abbc, abbc_simulated_time
from repro.baselines.brandes import brandes_bc
from repro.baselines.mfbc import mfbc
from repro.graph import generators as gen
from repro.graph.properties import bfs_distances
from tests.conftest import some_sources


class TestABBC:
    @pytest.mark.parametrize(
        "fixture", ["diamond", "er_graph", "powerlaw_graph", "road_graph"]
    )
    def test_matches_brandes(self, fixture, request):
        g = request.getfixturevalue(fixture)
        srcs = some_sources(g)
        res = abbc(g, sources=srcs)
        assert np.allclose(res.bc, brandes_bc(g, sources=srcs))

    def test_exact_all_sources(self, er_graph):
        res = abbc(er_graph)
        assert np.allclose(res.bc, brandes_bc(er_graph))

    def test_counts_wasted_work(self, powerlaw_graph):
        res = abbc(powerlaw_graph, sources=some_sources(powerlaw_graph))
        assert res.useful_ops > 0
        assert res.total_ops == res.useful_ops + res.wasted_ops

    def test_oom_model(self, er_graph):
        res = abbc(er_graph, sources=[0], memory_limit_words=10)
        assert res.out_of_memory
        assert np.isnan(res.bc).all()
        assert abbc_simulated_time(res, er_graph) == float("inf")

    def test_fits_when_limit_generous(self, er_graph):
        res = abbc(er_graph, sources=[0], memory_limit_words=10**9)
        assert not res.out_of_memory

    def test_contention_model_prefers_road(self):
        """§5.3: ABBC's parallel efficiency is worse on power-law graphs."""
        road = gen.grid_road(10, 10, seed=1)
        plaw = gen.rmat(7, 8, seed=1)
        r_road = abbc(road, sources=[0])
        r_plaw = abbc(plaw, sources=[0])
        t_road = abbc_simulated_time(r_road, road)
        t_plaw = abbc_simulated_time(r_plaw, plaw)
        # Per useful op, the road graph is cheaper (less contention).
        assert t_road / max(1, r_road.total_ops) < t_plaw / max(
            1, r_plaw.total_ops
        )

    def test_empty_sources_rejected(self, er_graph):
        with pytest.raises(ValueError):
            abbc(er_graph, sources=[])

    def test_distances_exact(self, er_graph):
        srcs = some_sources(er_graph, 3)
        res = abbc(er_graph, sources=srcs)
        for i, s in enumerate(srcs):
            assert np.array_equal(res.dist[i], bfs_distances(er_graph, s))


class TestMFBC:
    @pytest.mark.parametrize(
        "fixture", ["diamond", "er_graph", "powerlaw_graph", "road_graph", "webcrawl_graph"]
    )
    def test_matches_brandes(self, fixture, request):
        g = request.getfixturevalue(fixture)
        srcs = some_sources(g)
        res = mfbc(g, sources=srcs, batch_size=4, num_hosts=4)
        assert np.allclose(res.bc, brandes_bc(g, sources=srcs))

    def test_exact_all_sources(self, er_graph):
        res = mfbc(er_graph, batch_size=16, num_hosts=1)
        assert np.allclose(res.bc, brandes_bc(er_graph))

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_batch_size_invariant(self, er_graph, k):
        srcs = some_sources(er_graph, 6)
        res = mfbc(er_graph, sources=srcs, batch_size=k)
        assert np.allclose(res.bc, brandes_bc(er_graph, sources=srcs))

    def test_iterations_track_levels(self, road_graph):
        """One SpMM per level, forward and backward, per batch."""
        srcs = [0]
        res = mfbc(road_graph, sources=srcs, batch_size=1)
        ecc = int(bfs_distances(road_graph, 0).max())
        assert ecc <= res.iterations <= 2 * ecc + 2

    def test_distances_and_sigma(self, er_graph):
        srcs = some_sources(er_graph, 4)
        res = mfbc(er_graph, sources=srcs, batch_size=4)
        from repro.baselines.brandes import brandes_sssp

        for i, s in enumerate(srcs):
            dist, sigma, _, _ = brandes_sssp(er_graph, s)
            assert np.array_equal(res.dist[i], dist)
            assert np.allclose(res.sigma[i], sigma)

    def test_run_statistics_populated(self, er_graph):
        res = mfbc(er_graph, sources=some_sources(er_graph), batch_size=4, num_hosts=4)
        assert res.run.num_rounds == res.iterations
        assert res.run.total_bytes > 0

    def test_empty_sources_rejected(self, er_graph):
        with pytest.raises(ValueError):
            mfbc(er_graph, sources=[])

    def test_disconnected(self, disconnected_graph):
        res = mfbc(disconnected_graph, sources=[0], batch_size=1)
        assert np.allclose(res.bc, brandes_bc(disconnected_graph, sources=[0]))
