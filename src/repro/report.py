"""``python -m repro.report`` — check exported benchmark artifacts
against the paper's expectations (see repro.analysis.expectations)."""

from __future__ import annotations

import sys

from repro.analysis.expectations import check_results, render_report


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    results_dir = args[0] if args else "benchmarks/results"
    results = check_results(results_dir)
    print(render_report(results))
    return 1 if any(r.status == "FAIL" for r in results) else 0


if __name__ == "__main__":
    raise SystemExit(main())
