"""Cross-snapshot benchmark trajectory (``repro trend``): lineage
ordering, step classification, heterogeneous-suite grouping, CLI.
"""

from __future__ import annotations

import json

from repro.analysis import trend as trend_mod
from repro.analysis.trend import build_trend, order_snapshots, render_trend
from repro.cli import main as cli_main

DET = {"rounds": 2, "bytes": 10, "pair_messages": 3}


def case(name, wall, det=None, iqr=0.0005, rounds=None, comm=None):
    c = {
        "name": name,
        "deterministic": dict(det if det is not None else DET),
        "wall_s": {"median": wall, "iqr": iqr},
    }
    if rounds is not None:
        c["rounds"] = dict(rounds)
    if comm is not None:
        c["comm"] = dict(comm)
    return c


def write_snap(tmp_path, fname, created, cases, sha=None,
               env=None, suite="smoke"):
    doc = {
        "bench_version": 1,
        "suite": suite,
        "git_sha": sha or f"deadbeef{fname}",
        "created_unix": created,
        "repeats": 3,
        "warmup": 1,
        "environment": env or {"python": "3.12", "machine": "x86_64"},
        "cases": cases,
    }
    path = tmp_path / fname
    path.write_text(json.dumps(doc), encoding="utf-8")
    return str(path)


def series_paths(tmp_path):
    """Six snapshots exercising every step classification once."""
    return [
        write_snap(tmp_path, "BENCH_1.json", 100, [case("c", 0.010)]),
        # Same counts, small wall move: steady. The rounds section
        # appears here; vs a section-less predecessor it is not compared.
        write_snap(tmp_path, "BENCH_2.json", 200,
                   [case("c", 0.011, rounds={"total": 5})]),
        # A gated deterministic count drifts: change.
        write_snap(tmp_path, "BENCH_3.json", 300,
                   [case("c", 0.011, det=dict(DET, bytes=11),
                         rounds={"total": 5})]),
        # Only the round-ledger count drifts: change (both sides carry it).
        write_snap(tmp_path, "BENCH_4.json", 400,
                   [case("c", 0.011, det=dict(DET, bytes=11),
                         rounds={"total": 6}),
                    case("late", 0.002)]),
        # Counts steady, wall blows through 3 x max(IQR, floor): regression.
        write_snap(tmp_path, "BENCH_5.json", 500,
                   [case("c", 0.2, det=dict(DET, bytes=11),
                         rounds={"total": 6}),
                    case("late", 0.002)],
                   env={"python": "3.13", "machine": "arm64"}),
        # ... and back down: improvement.
        write_snap(tmp_path, "BENCH_6.json", 600,
                   [case("c", 0.011, det=dict(DET, bytes=11),
                         rounds={"total": 6})],
                   env={"python": "3.13", "machine": "arm64"}),
    ]


class TestOrdering:
    def test_unknown_shas_fall_back_to_created_unix(self, tmp_path):
        a = write_snap(tmp_path, "BENCH_a.json", 300, [case("c", 0.01)])
        b = write_snap(tmp_path, "BENCH_b.json", 100, [case("c", 0.01)])
        docs = [(p, json.loads(open(p, encoding="utf-8").read()))
                for p in (a, b)]
        # tmp_path is not a git repo: every SHA is unknown.
        ordered = order_snapshots(docs, root=str(tmp_path))
        assert [p for p, _ in ordered] == [b, a]

    def test_known_shas_sort_by_lineage_not_timestamp(self, tmp_path, monkeypatch):
        # "old" commit carries the *newer* timestamp (a rerun on an old
        # checkout): lineage position must win over created_unix.
        monkeypatch.setattr(
            trend_mod, "_rev_list_order", lambda root: {"old": 0, "new": 1}
        )
        a = write_snap(tmp_path, "BENCH_a.json", 900, [case("c", 0.01)],
                       sha="old")
        b = write_snap(tmp_path, "BENCH_b.json", 100, [case("c", 0.01)],
                       sha="new")
        u = write_snap(tmp_path, "BENCH_u.json", 50, [case("c", 0.01)],
                       sha="unknown")
        docs = [(p, json.loads(open(p, encoding="utf-8").read()))
                for p in (b, u, a)]
        ordered = order_snapshots(docs, root=str(tmp_path))
        # Unknown commits land after every known one, by timestamp.
        assert [p for p, _ in ordered] == [a, b, u]


class TestClassification:
    def test_every_step_kind_over_the_series(self, tmp_path):
        report = build_trend(series_paths(tmp_path), root=str(tmp_path))
        steps = [pt.step for pt in report.cases["c"]]
        assert steps == [
            "first", "steady", "change", "change", "regression",
            "improvement",
        ]
        # The deltas name the counts that moved.
        assert report.cases["c"][2].deltas == ["bytes: 10 -> 11"]
        assert report.cases["c"][3].deltas == ["rounds.total: 5 -> 6"]

    def test_env_change_is_annotated(self, tmp_path):
        report = build_trend(series_paths(tmp_path), root=str(tmp_path))
        flags = [pt.env_changed for pt in report.cases["c"]]
        # Only the point where the fingerprint swapped is marked.
        assert flags == [False, False, False, False, True, False]

    def test_case_appearing_mid_series_starts_fresh(self, tmp_path):
        report = build_trend(series_paths(tmp_path), root=str(tmp_path))
        late = report.cases["late"]
        assert [pt.step for pt in late] == ["first", "steady"]
        assert late[0].order == 3  # first seen in the 4th snapshot

    def test_report_dict_counts_and_render(self, tmp_path):
        report = build_trend(series_paths(tmp_path), root=str(tmp_path))
        doc = report.to_dict()
        assert doc["schema"] == 1
        assert doc["regressions"] == 1
        assert doc["changes"] == 2
        assert len(doc["snapshots"]) == 6
        text = render_trend(report)
        assert "per-case trajectory" in text
        assert "1 wall regression(s)" in text
        assert "(env changed)" in text
        json.dumps(doc)

    def test_wall_threshold_is_tunable(self, tmp_path):
        paths = [
            write_snap(tmp_path, "BENCH_1.json", 100, [case("c", 0.010)]),
            write_snap(tmp_path, "BENCH_2.json", 200, [case("c", 0.018)]),
        ]
        lax = build_trend(paths, root=str(tmp_path))
        assert lax.cases["c"][1].step == "steady"
        strict = build_trend(paths, root=str(tmp_path), wall_threshold=1.0)
        assert strict.cases["c"][1].step == "regression"


class TestTrendCLI:
    def test_json_output(self, tmp_path, capsys):
        rc = cli_main(["trend", "--format", "json", *series_paths(tmp_path)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert set(doc["cases"]) == {"c", "late"}

    def test_case_filter(self, tmp_path, capsys):
        paths = series_paths(tmp_path)
        rc = cli_main(["trend", "--case", "late", *paths])
        out = capsys.readouterr().out
        assert rc == 0
        assert "late" in out
        assert cli_main(["trend", "--case", "no-such-case", *paths]) == 1

    def test_fail_on_regression(self, tmp_path):
        paths = series_paths(tmp_path)
        assert cli_main(["trend", *paths]) == 0  # a report, not a gate
        assert cli_main(["trend", "--fail-on-regression", *paths]) == 1
