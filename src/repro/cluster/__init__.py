"""Deterministic cluster performance model.

The paper's measurements were taken on Stampede2 (48-core Skylake hosts,
100 Gbps Omni-Path, up to 256 hosts).  We cannot run on such a cluster, so
per DESIGN.md §2 the engine collects *exact deterministic counts* — rounds,
per-host work units, per-host-pair bytes and messages — and this subpackage
converts them into simulated execution time with a linear cost model whose
constants are calibrated to that class of machine.

The model exposes exactly the quantities the paper reports: execution
time, computation time (max across hosts, summed over rounds), and
non-overlapped communication time (barrier waits + wire time +
(de)serialization), so every figure's time axis can be regenerated.
"""

from repro.cluster.model import ClusterModel, SimulatedTime

__all__ = ["ClusterModel", "SimulatedTime"]
