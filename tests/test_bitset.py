"""Unit tests for repro.utils.bitset."""

import numpy as np
import pytest

from repro.utils.bitset import Bitset


class TestConstruction:
    def test_empty(self):
        bs = Bitset(10)
        assert bs.capacity == 10
        assert bs.count() == 0
        assert not bs.any()

    def test_zero_capacity(self):
        bs = Bitset(0)
        assert bs.count() == 0
        assert list(bs) == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Bitset(-1)

    def test_from_indices(self):
        bs = Bitset.from_indices(100, [3, 64, 99])
        assert bs.count() == 3
        assert bs.test(64)

    def test_copy_is_independent(self):
        a = Bitset.from_indices(70, [0, 65])
        b = a.copy()
        b.clear(0)
        assert a.test(0)
        assert not b.test(0)


class TestElementOps:
    def test_set_test_clear(self):
        bs = Bitset(130)
        for i in (0, 63, 64, 127, 129):
            assert not bs.test(i)
            bs.set(i)
            assert bs.test(i)
        bs.clear(64)
        assert not bs.test(64)
        assert bs.count() == 4

    def test_set_idempotent(self):
        bs = Bitset(8)
        bs.set(3)
        bs.set(3)
        assert bs.count() == 1

    def test_out_of_range(self):
        bs = Bitset(8)
        with pytest.raises(IndexError):
            bs.set(8)
        with pytest.raises(IndexError):
            bs.test(-1)
        with pytest.raises(IndexError):
            bs.clear(100)

    def test_contains(self):
        bs = Bitset.from_indices(10, [2])
        assert 2 in bs
        assert 3 not in bs
        assert "x" not in bs
        assert 100 not in bs


class TestBulkOps:
    def test_indices_sorted_across_words(self):
        idx = [1, 5, 63, 64, 65, 190]
        bs = Bitset.from_indices(200, idx)
        assert bs.indices().tolist() == idx
        assert list(bs) == idx

    def test_clear_all(self):
        bs = Bitset.from_indices(128, range(0, 128, 3))
        bs.clear_all()
        assert bs.count() == 0

    def test_len_matches_count(self):
        bs = Bitset.from_indices(90, [1, 2, 3, 70])
        assert len(bs) == 4

    def test_empty_indices_dtype(self):
        assert Bitset(10).indices().dtype == np.int64


class TestAlgebra:
    def test_ior(self):
        a = Bitset.from_indices(70, [1, 65])
        b = Bitset.from_indices(70, [2, 65])
        a.ior(b)
        assert sorted(a) == [1, 2, 65]

    def test_iand(self):
        a = Bitset.from_indices(70, [1, 2, 65])
        b = Bitset.from_indices(70, [2, 65, 69])
        a.iand(b)
        assert sorted(a) == [2, 65]

    def test_isub(self):
        a = Bitset.from_indices(70, [1, 2, 65])
        b = Bitset.from_indices(70, [2])
        a.isub(b)
        assert sorted(a) == [1, 65]

    def test_capacity_mismatch(self):
        with pytest.raises(ValueError):
            Bitset(10).ior(Bitset(11))

    def test_equality(self):
        a = Bitset.from_indices(66, [65])
        b = Bitset.from_indices(66, [65])
        assert a == b
        b.set(0)
        assert a != b
        assert (a == "nope") is False or True  # NotImplemented path

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitset(4))

    def test_repr_truncates(self):
        bs = Bitset.from_indices(64, range(32))
        r = repr(bs)
        assert "..." in r
