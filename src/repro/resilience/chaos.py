"""Seeded chaos campaigns: randomized fault sweeps with exactness checks.

A *campaign* is a deterministic grid of scenarios — engines × fault kinds
× recovery policies — each run through :func:`~repro.resilience.harness
.run_under_faults` under a per-scenario seed derived from the campaign
seed.  Every scenario is judged against the engine's fault-free run:

- **recoverable** scenarios (the policy's budgets cover the plan's
  faults) must complete *bit-identically* — ``np.array_equal`` on the BC
  vector, not a tolerance — because bounded recovery replays the exact
  same deterministic computation;
- **degradable** scenarios (``failfast`` against a crash, say) may
  instead salvage: the run yields a
  :class:`~repro.resilience.supervisor.PartialResult` whose BC must match
  exact Brandes over the covered sources, with coverage strictly below 1;
- **neutral** scenarios (policy attached, *no* faults) must reproduce the
  plain engine run byte-for-byte — BC bit-equal *and* equal
  :meth:`~repro.engine.stats.EngineRun.deterministic_signature` — the
  policy-attachment-is-free guarantee.

The result is a versioned :class:`CampaignReport` (JSON-able, persisted
by ``repro chaos --report``) carrying per-scenario verdicts plus MTTR and
detection-latency aggregates.  Same campaign + same seed ⇒ the same
faults, the same recoveries, the same report.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.resilience.harness import GLUON_ALGORITHMS, run_under_faults
from repro.resilience.plan import DEFAULT_PLANS, FaultPlan, get_plan
from repro.resilience.supervisor import get_policy

#: Bump when the report schema changes shape.
CAMPAIGN_REPORT_VERSION = 1

#: Fault plans every campaign sweeps, in deterministic order (message
#: kinds then host kinds — the order of ``repro.resilience.plan``).
CAMPAIGN_PLANS = ("drop", "duplicate", "reorder", "corrupt", "stall", "crash")

#: The CONGEST subset: a CONGEST channel carries one O(log n)-word
#: message per round, so a per-channel payload list is length ≤ 1 and
#: ``reorder`` (which permutes a multi-payload delivery) structurally
#: cannot fire — including it would make those scenarios vacuous.
CONGEST_CAMPAIGN_PLANS = tuple(p for p in CAMPAIGN_PLANS if p != "reorder")


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign grid: which engines meet which policies.

    The CONGEST engines have no per-batch failure domain (a phase restarts
    whole), so they only pair with policies whose budgets make every plan
    recoverable — degradation is a Gluon-engine capability.
    """

    name: str
    gluon_policies: tuple[str, ...]
    congest_policies: tuple[str, ...] = ()
    plans: tuple[str, ...] = CAMPAIGN_PLANS
    congest_plans: tuple[str, ...] = CONGEST_CAMPAIGN_PLANS


#: The named campaigns ``repro chaos`` accepts.
#:
#: - ``smoke`` — the CI gate: both Gluon engines × all six fault kinds ×
#:   {default, failfast} (24 fault scenarios) plus one neutral scenario
#:   per engine (26 total).  ``failfast`` × ``crash`` deterministically
#:   exercises graceful degradation.
#: - ``full`` — smoke plus the CONGEST engines × the five CONGEST-viable
#:   kinds × {default, patient} (the ``patient`` stall deadline converts
#:   the stall scenario into a timeout-restart).
CAMPAIGNS: dict[str, CampaignSpec] = {
    "smoke": CampaignSpec(
        name="smoke",
        gluon_policies=("default", "failfast"),
    ),
    "full": CampaignSpec(
        name="full",
        gluon_policies=("default", "failfast"),
        congest_policies=("default", "patient"),
    ),
}


def scenario_seed(campaign_seed: int, index: int) -> int:
    """Derive scenario ``index``'s fault seed from the campaign seed.

    A fixed affine-in-primes map: decorrelates neighboring scenarios
    while staying reproducible across platforms (pure integer math).
    """
    return (campaign_seed * 7919 + index * 104729 + 13) % (2**31)


@dataclass
class ScenarioResult:
    """Verdict and tallies for one campaign scenario."""

    index: int
    algorithm: str
    plan: str
    policy: str
    seed: int
    #: ``"fault"`` (plan injected) or ``"neutral"`` (no faults; checks
    #: policy-attachment neutrality).
    kind: str
    passed: bool
    #: Human-readable reason when ``passed`` is False, else the verdict
    #: path taken (``"exact"``, ``"degraded"``, ``"neutral"``).
    detail: str
    faults_injected: int = 0
    faults_detected: int = 0
    recoveries: int = 0
    recovery_rounds: int = 0
    detection_latency_rounds: int | None = None
    degraded: bool = False
    coverage: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "algorithm": self.algorithm,
            "plan": self.plan,
            "policy": self.policy,
            "seed": self.seed,
            "kind": self.kind,
            "passed": self.passed,
            "detail": self.detail,
            "faults_injected": self.faults_injected,
            "faults_detected": self.faults_detected,
            "recoveries": self.recoveries,
            "recovery_rounds": self.recovery_rounds,
            "detection_latency_rounds": self.detection_latency_rounds,
            "degraded": self.degraded,
            "coverage": self.coverage,
        }


@dataclass
class CampaignReport:
    """The persisted outcome of one chaos campaign."""

    campaign: str
    seed: int
    graph: str
    num_sources: int
    num_hosts: int
    batch_size: int
    scenarios: list[ScenarioResult] = field(default_factory=list)
    version: int = CAMPAIGN_REPORT_VERSION

    @property
    def passed(self) -> bool:
        return bool(self.scenarios) and all(s.passed for s in self.scenarios)

    @property
    def failures(self) -> list[ScenarioResult]:
        return [s for s in self.scenarios if not s.passed]

    def aggregates(self) -> dict[str, Any]:
        """Cross-scenario recovery statistics.

        MTTR is measured in *simulated rounds* (the only clock the
        deterministic engines have): mean recovery-round overhead over
        the scenarios that actually recovered at least one fault.
        """
        recovered = [s for s in self.scenarios if s.recoveries > 0]
        latencies = [
            s.detection_latency_rounds
            for s in self.scenarios
            if s.detection_latency_rounds is not None
        ]
        return {
            "scenarios_total": len(self.scenarios),
            "scenarios_passed": sum(1 for s in self.scenarios if s.passed),
            "scenarios_degraded": sum(1 for s in self.scenarios if s.degraded),
            "faults_injected": sum(s.faults_injected for s in self.scenarios),
            "faults_detected": sum(s.faults_detected for s in self.scenarios),
            "recoveries": sum(s.recoveries for s in self.scenarios),
            "mttr_rounds": (
                sum(s.recovery_rounds for s in recovered) / len(recovered)
                if recovered
                else None
            ),
            "detection_latency_mean_rounds": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "detection_latency_max_rounds": max(latencies) if latencies else None,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "campaign": self.campaign,
            "seed": self.seed,
            "graph": self.graph,
            "num_sources": self.num_sources,
            "num_hosts": self.num_hosts,
            "batch_size": self.batch_size,
            "passed": self.passed,
            "aggregates": self.aggregates(),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def save(self, path: str | os.PathLike) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _scenario_grid(spec: CampaignSpec) -> list[tuple[str, str | None, str]]:
    """Expand a spec into ``(algorithm, plan | None, policy)`` rows.

    ``plan=None`` marks a neutral scenario.  Order is deterministic:
    fault scenarios first (engine-major), then one neutral per Gluon
    engine — the scenario index feeds the per-scenario seed, so this
    order is part of the campaign's identity.
    """
    rows: list[tuple[str, str | None, str]] = []
    for algorithm in GLUON_ALGORITHMS:
        for plan in spec.plans:
            for policy in spec.gluon_policies:
                rows.append((algorithm, plan, policy))
    for algorithm in ("mrbc_congest", "sbbc_congest"):
        for plan in spec.congest_plans:
            for policy in spec.congest_policies:
                rows.append((algorithm, plan, policy))
    for algorithm in GLUON_ALGORITHMS:
        rows.append((algorithm, None, spec.gluon_policies[0]))
    return rows


def _neutral_scenario(
    index: int,
    algorithm: str,
    policy_name: str,
    g,
    sources,
    num_hosts: int,
    batch_size: int,
) -> ScenarioResult:
    """Policy-attachment neutrality: engine + policy, zero faults, must be
    byte-identical (BC bits and run signature) to the plain engine run."""
    if algorithm == "mrbc":
        from repro.core.mrbc import mrbc_engine

        def run(recovery_policy):
            return mrbc_engine(
                g,
                sources=sources,
                batch_size=batch_size,
                num_hosts=num_hosts,
                recovery_policy=recovery_policy,
            )

    else:
        from repro.baselines.sbbc import sbbc_engine

        def run(recovery_policy):
            return sbbc_engine(
                g, sources=sources, num_hosts=num_hosts,
                recovery_policy=recovery_policy,
            )

    plain = run(None)
    with_policy = run(policy_name)
    bc_equal = np.array_equal(plain.bc, with_policy.bc)
    sig_equal = (
        plain.run.deterministic_signature()
        == with_policy.run.deterministic_signature()
    )
    not_degraded = getattr(with_policy, "partial", None) is None
    passed = bc_equal and sig_equal and not_degraded
    if passed:
        detail = "neutral"
    elif not bc_equal:
        detail = "policy attachment changed BC bits"
    elif not sig_equal:
        detail = "policy attachment changed the deterministic signature"
    else:
        detail = "policy degraded a fault-free run"
    return ScenarioResult(
        index=index,
        algorithm=algorithm,
        plan="(none)",
        policy=policy_name,
        seed=0,
        kind="neutral",
        passed=passed,
        detail=detail,
    )


def _fault_scenario(
    index: int,
    algorithm: str,
    plan_name: str,
    policy_name: str,
    seed: int,
    g,
    sources,
    num_hosts: int,
    batch_size: int,
    reference_bc: np.ndarray,
    tol: float,
) -> ScenarioResult:
    """One seeded fault run, judged against the fault-free BC.

    Acceptance is two-armed: either bounded recovery carried the run to
    bit-exact completion, or the policy degraded and the salvage is exact
    over the covered sources (with coverage strictly below 1 — a
    "degraded" run that dropped nothing would be a bookkeeping bug).
    """
    plan = get_plan(plan_name).with_seed(seed)
    policy = get_policy(policy_name)
    report = run_under_faults(
        algorithm,
        g,
        sources=sources,
        plan=plan,
        mode="repair",
        num_hosts=num_hosts,
        batch_size=batch_size,
        tol=tol,
        policy=policy,
    )
    s = report.resilience
    coverage = None
    if report.completed and not report.degraded:
        exact = report.bc is not None and np.array_equal(report.bc, reference_bc)
        if exact and s["faults_injected"] == 0:
            passed, detail = False, "plan injected no faults (scenario is vacuous)"
        elif exact:
            passed, detail = True, "exact"
        else:
            passed, detail = False, "recovered run diverged from fault-free BC bits"
    elif report.degraded:
        coverage = report.partial.coverage
        if not policy.degrade:
            passed, detail = False, "degraded under a non-degrading policy"
        elif coverage >= 1.0:
            passed, detail = False, "degraded but claims full coverage"
        elif report.partial.covered_sources.size == 0:
            # Every failure domain was hit: nothing salvaged is still a
            # correct degradation as long as the BC claims nothing.
            if report.bc is not None and not np.any(report.bc):
                passed, detail = True, "degraded (zero coverage)"
            else:
                passed, detail = False, "zero coverage but nonzero salvaged BC"
        elif report.salvaged_correct(g):
            passed, detail = True, "degraded"
        else:
            passed, detail = False, "salvaged BC wrong over covered sources"
    else:
        passed, detail = False, f"aborted: {report.failure}"
    return ScenarioResult(
        index=index,
        algorithm=algorithm,
        plan=plan_name,
        policy=policy_name,
        seed=seed,
        kind="fault",
        passed=passed,
        detail=detail,
        faults_injected=s["faults_injected"],
        faults_detected=s["faults_detected"],
        recoveries=s["recoveries"],
        recovery_rounds=s["recovery_rounds"],
        detection_latency_rounds=s["detection_latency_rounds"],
        degraded=report.degraded,
        coverage=coverage,
    )


def run_campaign(
    g,
    sources,
    campaign: str = "smoke",
    seed: int = 7,
    num_hosts: int = 4,
    batch_size: int = 3,
    tol: float = 1e-9,
    graph_desc: str = "",
    progress: Callable[[ScenarioResult], None] | None = None,
) -> CampaignReport:
    """Run a named campaign and return its :class:`CampaignReport`.

    Fault-free reference BC vectors are computed once per engine (the
    engines are deterministic, so one run *is* the reference), then every
    scenario is judged against them.  ``progress`` (when given) receives
    each :class:`ScenarioResult` as it lands — the CLI's live ticker.
    """
    try:
        spec = CAMPAIGNS[campaign]
    except KeyError:
        raise KeyError(
            f"unknown campaign {campaign!r} "
            f"(campaigns: {', '.join(sorted(CAMPAIGNS))})"
        ) from None
    for plan in spec.plans + spec.congest_plans:
        if plan not in DEFAULT_PLANS:
            raise KeyError(f"campaign {campaign!r} names unknown plan {plan!r}")

    src = np.asarray(sources, dtype=np.int64).ravel()
    grid = _scenario_grid(spec)

    # One fault-free reference per engine: the deterministic ground truth
    # every recoverable scenario must reproduce bit-for-bit.
    references: dict[str, np.ndarray] = {}

    def reference_bc(algorithm: str) -> np.ndarray:
        if algorithm not in references:
            report = run_under_faults(
                algorithm,
                g,
                sources=src,
                plan=FaultPlan(name="fault-free", seed=0, specs=()),
                mode="repair",
                num_hosts=num_hosts,
                batch_size=batch_size,
                tol=tol,
            )
            if not report.completed or report.bc is None:
                raise RuntimeError(
                    f"fault-free reference run failed for {algorithm}: "
                    f"{report.failure}"
                )
            references[algorithm] = report.bc
        return references[algorithm]

    out = CampaignReport(
        campaign=campaign,
        seed=seed,
        graph=graph_desc or repr(g),
        num_sources=int(src.size),
        num_hosts=num_hosts,
        batch_size=batch_size,
    )
    for index, (algorithm, plan_name, policy_name) in enumerate(grid):
        if plan_name is None:
            rec = _neutral_scenario(
                index, algorithm, policy_name, g, src, num_hosts, batch_size
            )
        else:
            rec = _fault_scenario(
                index,
                algorithm,
                plan_name,
                policy_name,
                scenario_seed(seed, index),
                g,
                src,
                num_hosts,
                batch_size,
                reference_bc(algorithm),
                tol,
            )
        out.scenarios.append(rec)
        if progress is not None:
            progress(rec)
    return out
