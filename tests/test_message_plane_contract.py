"""Contract tests every ledger-recording MessagePlane must satisfy.

Both concrete planes — :class:`~repro.runtime.plane.GluonPlane`
(host-level reduce/broadcast) and :class:`~repro.runtime.plane
.CongestPlane` (per-edge channel exchange) — are driven through small
deterministic workloads and held to the same contract:

1. **Reconciliation** — :class:`CommLedger` totals equal the plane's own
   accounting (``RoundStats`` bytes / pair messages for Gluon,
   ``MessageStats`` messages / values / words for CONGEST) exactly, by
   construction rather than by sampling.
2. **Empty rounds** — a round that sends nothing across the wire records
   nothing in the ledger.
3. **Neutrality** — attaching a ledger changes no engine-visible
   accounting (deterministic signatures are identical with and without
   one), and termination detection (quiescence) is unaffected.

The shared assertions live in :class:`PlaneContractBase`; each plane
subclass provides ``drive()`` plus plane-specific reconciliation checks.

The same contract binds the :class:`~repro.obs.rounds.RoundLedger`
(:class:`RoundLedgerContractBase`): every round the plane executes
through :class:`~repro.runtime.superstep.SuperstepRuntime` appears in
the ledger exactly once (ledger totals == ``EngineRun`` round counts /
``rounds_executed``), units terminate by quiescence, and attachment is
signature-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.congest.network import CongestNetwork
from repro.congest.program import BROADCAST, VertexProgram
from repro.engine.gluon import TARGET_ALL_PROXIES
from repro.engine.partition import partition_graph
from repro.engine.stats import EngineRun
from repro.graph import generators as gen
from repro.graph.generators import path_graph
from repro.obs.comm import (
    PLANE_CONGEST,
    PLANE_GLUON,
    WORD_BYTES,
    CommLedger,
)
from repro.obs.rounds import RoundLedger
from repro.runtime.arrays import ColumnBlock
from repro.runtime.plane import GluonArrayPlane, GluonPlane
from repro.runtime.superstep import SuperstepRuntime

NUM_HOSTS = 4


def _blocks(per_host_items: list[list], payload_cols: int) -> list:
    """Tuple staging lists → per-host :class:`ColumnBlock`s (or None)."""
    import numpy as np

    out: list = [None] * len(per_host_items)
    for h, items in enumerate(per_host_items):
        if not items:
            continue
        gids = np.array([it[0] for it in items], dtype=np.int64)
        cols = tuple(
            np.array([it[1 + c] for it in items])
            for c in range(payload_cols)
        )
        out[h] = ColumnBlock.raw(gids, cols)
    return out


@dataclass
class Reference:
    """The plane's own accounting, for reconciliation with the ledger."""

    messages: int
    payload_bytes: int
    nonempty_rounds: int
    signature: dict[str, Any]
    extra: Any = None


class PlaneContractBase:
    """Assertions every ledger-recording plane must pass."""

    plane_label: str

    def drive(self, ledger: CommLedger | None) -> Reference:
        raise NotImplementedError

    def test_ledger_reconciles_with_plane_accounting(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        tot = ledger.totals(self.plane_label)
        assert tot.messages == ref.messages
        assert tot.payload_bytes == ref.payload_bytes
        # Pair totals decompose the same grand total.
        pair_bytes = sum(
            t.payload_bytes for t in ledger.pair_totals(self.plane_label).values()
        )
        assert pair_bytes == ref.payload_bytes

    def test_empty_rounds_record_nothing(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        rounds = ledger.rounds(self.plane_label)
        assert all(rc.totals.messages > 0 for rc in rounds)
        assert len(rounds) == ref.nonempty_rounds

    def test_ledger_attachment_is_neutral(self):
        with_ledger = self.drive(CommLedger())
        without = self.drive(None)
        assert with_ledger.signature == without.signature


class TestGluonPlaneContract(PlaneContractBase):
    plane_label = PLANE_GLUON

    def drive(self, ledger: CommLedger | None) -> Reference:
        g = gen.erdos_renyi(40, 3.0, seed=13)
        pg = partition_graph(g, NUM_HOSTS, "cvc")
        plane = GluonPlane(pg)
        run = EngineRun(num_hosts=NUM_HOSTS)
        with obs.session(comm=ledger):
            for step in range(3):
                rs = run.new_round("forward")
                items: list[list] = [[] for _ in range(NUM_HOSTS)]
                for v in range(step, g.num_vertices, 4):
                    for h in pg.hosts_with_proxy(v).tolist():
                        items[h].append((v, 1, float(v)))
                plane.reduce_to_masters(items, 12, 1, rs)
            rs = run.new_round("backward")
            items = [[] for _ in range(NUM_HOSTS)]
            for v in range(0, g.num_vertices, 3):
                items[int(pg.master_of[v])].append((v, 0, 1, float(v)))
            plane.broadcast_from_masters(
                items, TARGET_ALL_PROXIES, 16, 1, rs
            )
            # An empty round: nothing staged, nothing may be recorded.
            rs = run.new_round("forward")
            plane.reduce_to_masters(
                [[] for _ in range(NUM_HOSTS)], 12, 1, rs
            )
        return Reference(
            messages=run.total_pair_messages,
            payload_bytes=run.total_bytes,
            nonempty_rounds=sum(
                1 for r in run.rounds if r.pair_messages > 0
            ),
            signature=run.deterministic_signature(),
            extra=run,
        )

    def test_per_host_bytes_match_round_stats(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        run = ref.extra
        out, inn = ledger.per_host_bytes(NUM_HOSTS)
        for h in range(NUM_HOSTS):
            assert out[h] == sum(int(r.bytes_out[h]) for r in run.rounds)
            assert inn[h] == sum(int(r.bytes_in[h]) for r in run.rounds)

    def test_host_matrix_row_and_column_sums(self):
        ledger = CommLedger()
        self.drive(ledger)
        m = ledger.host_matrix(NUM_HOSTS)
        out, inn = ledger.per_host_bytes(NUM_HOSTS)
        assert [sum(row) for row in m] == out
        assert [sum(m[s][d] for s in range(NUM_HOSTS))
                for d in range(NUM_HOSTS)] == inn


class TestGluonArrayPlaneContract(PlaneContractBase):
    """The columnar plane under the exact same contract and workload.

    Drives :class:`GluonArrayPlane` with the same logical items as
    :class:`TestGluonPlaneContract` (staged as ColumnBlocks), so on top
    of the base contract we can assert its accounting is *identical* to
    the tuple plane's, byte for byte.
    """

    plane_label = PLANE_GLUON

    def drive(self, ledger: CommLedger | None) -> Reference:
        g = gen.erdos_renyi(40, 3.0, seed=13)
        pg = partition_graph(g, NUM_HOSTS, "cvc")
        plane = GluonArrayPlane(pg)
        run = EngineRun(num_hosts=NUM_HOSTS)
        with obs.session(comm=ledger):
            for step in range(3):
                rs = run.new_round("forward")
                items: list[list] = [[] for _ in range(NUM_HOSTS)]
                for v in range(step, g.num_vertices, 4):
                    for h in pg.hosts_with_proxy(v).tolist():
                        items[h].append((v, 1, float(v)))
                plane.reduce_to_masters(_blocks(items, 2), 12, 1, rs)
            rs = run.new_round("backward")
            items = [[] for _ in range(NUM_HOSTS)]
            for v in range(0, g.num_vertices, 3):
                items[int(pg.master_of[v])].append((v, 0, 1, float(v)))
            plane.broadcast_from_masters(
                _blocks(items, 3), TARGET_ALL_PROXIES, 16, 1, rs
            )
            # An empty round: nothing staged, nothing may be recorded.
            rs = run.new_round("forward")
            plane.reduce_to_masters([None] * NUM_HOSTS, 12, 1, rs)
        return Reference(
            messages=run.total_pair_messages,
            payload_bytes=run.total_bytes,
            nonempty_rounds=sum(
                1 for r in run.rounds if r.pair_messages > 0
            ),
            signature=run.deterministic_signature(),
            extra=run,
        )

    def test_accounting_identical_to_tuple_plane(self):
        array_ledger = CommLedger()
        array_ref = self.drive(array_ledger)
        tuple_ledger = CommLedger()
        tuple_ref = TestGluonPlaneContract().drive(tuple_ledger)
        assert array_ref.signature == tuple_ref.signature
        assert array_ledger.totals(PLANE_GLUON) == tuple_ledger.totals(
            PLANE_GLUON
        )
        assert array_ledger.pair_totals(PLANE_GLUON) == tuple_ledger.pair_totals(
            PLANE_GLUON
        )

    def test_per_host_bytes_match_round_stats(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        run = ref.extra
        out, inn = ledger.per_host_bytes(NUM_HOSTS)
        for h in range(NUM_HOSTS):
            assert out[h] == sum(int(r.bytes_out[h]) for r in run.rounds)
            assert inn[h] == sum(int(r.bytes_in[h]) for r in run.rounds)


class Flood(VertexProgram):
    """Vertex 0 starts a token; each holder broadcasts it exactly once."""

    def setup(self, ctx):
        super().setup(ctx)
        self.have = ctx.vid == 0
        self.sent = False

    def compute_sends(self, rnd):
        if self.have and not self.sent:
            self.sent = True
            return [(BROADCAST, ("tok", 1))]
        return []

    def handle_message(self, rnd, sender, payload):
        self.have = True

    def has_pending_work(self, rnd):
        return self.have and not self.sent


class TestCongestPlaneContract(PlaneContractBase):
    plane_label = PLANE_CONGEST

    def drive(self, ledger: CommLedger | None) -> Reference:
        net = CongestNetwork(
            path_graph(8, bidirectional=False), lambda v: Flood()
        )
        with obs.session(comm=ledger):
            res = net.run(20, detect_quiescence=True)
        return Reference(
            messages=res.stats.messages,
            payload_bytes=res.stats.words * WORD_BYTES,
            nonempty_rounds=sum(1 for c in res.sends_per_round if c),
            signature={
                "messages": res.stats.messages,
                "values": res.stats.values,
                "words": res.stats.words,
                "rounds_executed": res.rounds_executed,
                "terminated_by": res.terminated_by,
            },
            extra=res,
        )

    def test_values_and_words_match_message_stats(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        res = ref.extra
        tot = ledger.totals(PLANE_CONGEST)
        assert tot.values == res.stats.values
        assert tot.words == res.stats.words

    def test_quiescence_detection_with_ledger_attached(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        res = ref.extra
        assert res.terminated_by == "quiescence"
        # The quiet tail rounds after the last send left no ledger rows.
        assert all(
            rc.round_index <= res.last_send_round
            for rc in ledger.rounds(PLANE_CONGEST)
        )


# -- the round-ledger contract ------------------------------------------------


class RoundLedgerContractBase:
    """Assertions binding the :class:`RoundLedger` to a plane's rounds.

    Same shape as the comm contract: ``drive_rounds()`` runs a small
    deterministic workload through the plane's *runtime-owned* round
    loop with the given ledger attached and returns ``(ledger,
    signature, engine_result)``.
    """

    def drive_rounds(
        self, rledger: RoundLedger | None
    ) -> tuple[RoundLedger | None, dict[str, Any], Any]:
        raise NotImplementedError

    def test_round_ledger_attachment_is_neutral(self):
        _, with_sig, _ = self.drive_rounds(RoundLedger())
        _, without_sig, _ = self.drive_rounds(None)
        assert with_sig == without_sig

    def test_units_terminate_by_quiescence(self):
        rledger, _, _ = self.drive_rounds(RoundLedger())
        units = rledger.units()
        assert units
        assert all(
            u.terminated_by in ("quiescence", "stopped") for u in units
        )
        assert rledger.recovery_rounds() == 0


class TestGluonRoundLedgerContract(RoundLedgerContractBase):
    def drive_rounds(
        self, rledger: RoundLedger | None
    ) -> tuple[RoundLedger | None, dict[str, Any], Any]:
        g = gen.erdos_renyi(40, 3.0, seed=13)
        pg = partition_graph(g, NUM_HOSTS, "cvc")
        plane = GluonPlane(pg)
        runtime = SuperstepRuntime(plane=plane)

        def step(rnd, rs):
            items: list[list] = [[] for _ in range(NUM_HOSTS)]
            fired = 0
            for v in range(rnd - 1, g.num_vertices, 8):
                fired += 1
                for h in pg.hosts_with_proxy(v).tolist():
                    items[h].append((v, 1, float(v)))
            plane.reduce_to_masters(items, 12, 1, rs)
            rl = obs.current().rounds
            if rl is not None:
                rl.note(frontier=fired, settled=fired)
            return rnd < 3

        with obs.session(rounds=rledger):
            with runtime.phase("forward", batch=0):
                runtime.run_loop("forward", step)
            with runtime.phase("backward", batch=0):
                runtime.run_loop("backward", step)
        return rledger, runtime.run.deterministic_signature(), runtime.run

    def test_ledger_reconciles_with_engine_run(self):
        rledger, _, run = self.drive_rounds(RoundLedger())
        assert rledger.total_rounds() == run.num_rounds
        assert rledger.rounds_by_phase() == {
            "forward": run.rounds_in_phase("forward"),
            "backward": run.rounds_in_phase("backward"),
        }

    def test_units_carry_phase_span_attribution(self):
        rledger, _, _ = self.drive_rounds(RoundLedger())
        assert [
            (u.phase, u.label) for u in rledger.units()
        ] == [("forward", "batch=0"), ("backward", "batch=0")]

    def test_noted_state_accumulates_per_round(self):
        rledger, _, _ = self.drive_rounds(RoundLedger())
        (fwd,) = rledger.units("forward")
        # range(rnd-1, 40, 8) fires 5 pairs in each of the 3 rounds.
        assert fwd.convergence() == [5, 5, 5]
        assert fwd.total_settled == 15
        assert rledger.max_frontier() == 5


class TestGluonArrayRoundLedgerContract(TestGluonRoundLedgerContract):
    """The same runtime-owned round-loop contract on the columnar plane."""

    def drive_rounds(
        self, rledger: RoundLedger | None
    ) -> tuple[RoundLedger | None, dict[str, Any], Any]:
        g = gen.erdos_renyi(40, 3.0, seed=13)
        pg = partition_graph(g, NUM_HOSTS, "cvc")
        plane = GluonArrayPlane(pg)
        runtime = SuperstepRuntime(plane=plane)

        def step(rnd, rs):
            items: list[list] = [[] for _ in range(NUM_HOSTS)]
            fired = 0
            for v in range(rnd - 1, g.num_vertices, 8):
                fired += 1
                for h in pg.hosts_with_proxy(v).tolist():
                    items[h].append((v, 1, float(v)))
            plane.reduce_to_masters(_blocks(items, 2), 12, 1, rs)
            rl = obs.current().rounds
            if rl is not None:
                rl.note(frontier=fired, settled=fired)
            return rnd < 3

        with obs.session(rounds=rledger):
            with runtime.phase("forward", batch=0):
                runtime.run_loop("forward", step)
            with runtime.phase("backward", batch=0):
                runtime.run_loop("backward", step)
        return rledger, runtime.run.deterministic_signature(), runtime.run


class TestCongestRoundLedgerContract(RoundLedgerContractBase):
    def drive_rounds(
        self, rledger: RoundLedger | None
    ) -> tuple[RoundLedger | None, dict[str, Any], Any]:
        net = CongestNetwork(
            path_graph(8, bidirectional=False), lambda v: Flood()
        )
        with obs.session(rounds=rledger):
            res = net.run(20, detect_quiescence=True)
        sig = {
            "messages": res.stats.messages,
            "values": res.stats.values,
            "words": res.stats.words,
            "rounds_executed": res.rounds_executed,
            "terminated_by": res.terminated_by,
        }
        return rledger, sig, res

    def test_ledger_reconciles_with_network_result(self):
        rledger, _, res = self.drive_rounds(RoundLedger())
        assert rledger.total_rounds() == res.rounds_executed
        (unit,) = rledger.units("congest")
        # The plane's per-round channel counts are the network's own
        # sends-per-round series, row for row.
        assert [r.channels for r in unit.rounds] == res.sends_per_round
        assert sum(r.values for r in unit.rounds) == res.stats.values

    def test_comm_totals_unchanged_by_round_ledger(self):
        def run_with(comm, rounds):
            net = CongestNetwork(
                path_graph(8, bidirectional=False), lambda v: Flood()
            )
            with obs.session(comm=comm, rounds=rounds):
                net.run(20, detect_quiescence=True)

        alone = CommLedger()
        run_with(alone, None)
        both = CommLedger()
        run_with(both, RoundLedger())
        assert both.totals(PLANE_CONGEST) == alone.totals(PLANE_CONGEST)
