"""Contract tests every ledger-recording MessagePlane must satisfy.

Both concrete planes — :class:`~repro.runtime.plane.GluonPlane`
(host-level reduce/broadcast) and :class:`~repro.runtime.plane
.CongestPlane` (per-edge channel exchange) — are driven through small
deterministic workloads and held to the same contract:

1. **Reconciliation** — :class:`CommLedger` totals equal the plane's own
   accounting (``RoundStats`` bytes / pair messages for Gluon,
   ``MessageStats`` messages / values / words for CONGEST) exactly, by
   construction rather than by sampling.
2. **Empty rounds** — a round that sends nothing across the wire records
   nothing in the ledger.
3. **Neutrality** — attaching a ledger changes no engine-visible
   accounting (deterministic signatures are identical with and without
   one), and termination detection (quiescence) is unaffected.

The shared assertions live in :class:`PlaneContractBase`; each plane
subclass provides ``drive()`` plus plane-specific reconciliation checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.congest.network import CongestNetwork
from repro.congest.program import BROADCAST, VertexProgram
from repro.engine.gluon import TARGET_ALL_PROXIES
from repro.engine.partition import partition_graph
from repro.engine.stats import EngineRun
from repro.graph import generators as gen
from repro.graph.generators import path_graph
from repro.obs.comm import (
    PLANE_CONGEST,
    PLANE_GLUON,
    WORD_BYTES,
    CommLedger,
)
from repro.runtime.plane import GluonPlane

NUM_HOSTS = 4


@dataclass
class Reference:
    """The plane's own accounting, for reconciliation with the ledger."""

    messages: int
    payload_bytes: int
    nonempty_rounds: int
    signature: dict[str, Any]
    extra: Any = None


class PlaneContractBase:
    """Assertions every ledger-recording plane must pass."""

    plane_label: str

    def drive(self, ledger: CommLedger | None) -> Reference:
        raise NotImplementedError

    def test_ledger_reconciles_with_plane_accounting(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        tot = ledger.totals(self.plane_label)
        assert tot.messages == ref.messages
        assert tot.payload_bytes == ref.payload_bytes
        # Pair totals decompose the same grand total.
        pair_bytes = sum(
            t.payload_bytes for t in ledger.pair_totals(self.plane_label).values()
        )
        assert pair_bytes == ref.payload_bytes

    def test_empty_rounds_record_nothing(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        rounds = ledger.rounds(self.plane_label)
        assert all(rc.totals.messages > 0 for rc in rounds)
        assert len(rounds) == ref.nonempty_rounds

    def test_ledger_attachment_is_neutral(self):
        with_ledger = self.drive(CommLedger())
        without = self.drive(None)
        assert with_ledger.signature == without.signature


class TestGluonPlaneContract(PlaneContractBase):
    plane_label = PLANE_GLUON

    def drive(self, ledger: CommLedger | None) -> Reference:
        g = gen.erdos_renyi(40, 3.0, seed=13)
        pg = partition_graph(g, NUM_HOSTS, "cvc")
        plane = GluonPlane(pg)
        run = EngineRun(num_hosts=NUM_HOSTS)
        with obs.session(comm=ledger):
            for step in range(3):
                rs = run.new_round("forward")
                items: list[list] = [[] for _ in range(NUM_HOSTS)]
                for v in range(step, g.num_vertices, 4):
                    for h in pg.hosts_with_proxy(v).tolist():
                        items[h].append((v, 1, float(v)))
                plane.reduce_to_masters(items, 12, 1, rs)
            rs = run.new_round("backward")
            items = [[] for _ in range(NUM_HOSTS)]
            for v in range(0, g.num_vertices, 3):
                items[int(pg.master_of[v])].append((v, 0, 1, float(v)))
            plane.broadcast_from_masters(
                items, TARGET_ALL_PROXIES, 16, 1, rs
            )
            # An empty round: nothing staged, nothing may be recorded.
            rs = run.new_round("forward")
            plane.reduce_to_masters(
                [[] for _ in range(NUM_HOSTS)], 12, 1, rs
            )
        return Reference(
            messages=run.total_pair_messages,
            payload_bytes=run.total_bytes,
            nonempty_rounds=sum(
                1 for r in run.rounds if r.pair_messages > 0
            ),
            signature=run.deterministic_signature(),
            extra=run,
        )

    def test_per_host_bytes_match_round_stats(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        run = ref.extra
        out, inn = ledger.per_host_bytes(NUM_HOSTS)
        for h in range(NUM_HOSTS):
            assert out[h] == sum(int(r.bytes_out[h]) for r in run.rounds)
            assert inn[h] == sum(int(r.bytes_in[h]) for r in run.rounds)

    def test_host_matrix_row_and_column_sums(self):
        ledger = CommLedger()
        self.drive(ledger)
        m = ledger.host_matrix(NUM_HOSTS)
        out, inn = ledger.per_host_bytes(NUM_HOSTS)
        assert [sum(row) for row in m] == out
        assert [sum(m[s][d] for s in range(NUM_HOSTS))
                for d in range(NUM_HOSTS)] == inn


class Flood(VertexProgram):
    """Vertex 0 starts a token; each holder broadcasts it exactly once."""

    def setup(self, ctx):
        super().setup(ctx)
        self.have = ctx.vid == 0
        self.sent = False

    def compute_sends(self, rnd):
        if self.have and not self.sent:
            self.sent = True
            return [(BROADCAST, ("tok", 1))]
        return []

    def handle_message(self, rnd, sender, payload):
        self.have = True

    def has_pending_work(self, rnd):
        return self.have and not self.sent


class TestCongestPlaneContract(PlaneContractBase):
    plane_label = PLANE_CONGEST

    def drive(self, ledger: CommLedger | None) -> Reference:
        net = CongestNetwork(
            path_graph(8, bidirectional=False), lambda v: Flood()
        )
        with obs.session(comm=ledger):
            res = net.run(20, detect_quiescence=True)
        return Reference(
            messages=res.stats.messages,
            payload_bytes=res.stats.words * WORD_BYTES,
            nonempty_rounds=sum(1 for c in res.sends_per_round if c),
            signature={
                "messages": res.stats.messages,
                "values": res.stats.values,
                "words": res.stats.words,
                "rounds_executed": res.rounds_executed,
                "terminated_by": res.terminated_by,
            },
            extra=res,
        )

    def test_values_and_words_match_message_stats(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        res = ref.extra
        tot = ledger.totals(PLANE_CONGEST)
        assert tot.values == res.stats.values
        assert tot.words == res.stats.words

    def test_quiescence_detection_with_ledger_attached(self):
        ledger = CommLedger()
        ref = self.drive(ledger)
        res = ref.extra
        assert res.terminated_by == "quiescence"
        # The quiet tail rounds after the last send left no ledger rows.
        assert all(
            rc.round_index <= res.last_send_round
            for rc in ledger.rounds(PLANE_CONGEST)
        )
