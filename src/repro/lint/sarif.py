"""SARIF 2.1.0 export for repro-lint findings.

One run, one driver (``repro-lint``), one result per finding.  The
stable baseline fingerprint rides along as a ``partialFingerprints``
entry so SARIF consumers dedup across revisions the same way the
committed baseline does; pragma- and baseline-suppressed findings are
emitted with a ``suppressions`` record (``inSource`` / ``external``)
rather than dropped, matching the spec's model of "found but muted".

:func:`from_sarif` inverts the export (used by the round-trip tests and
by tooling that wants to diff two SARIF artifacts).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.lint.rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/"
    "sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
FINGERPRINT_KEY = "reproLint/v1"

_LEVEL = {SEVERITY_ERROR: "error", SEVERITY_WARNING: "warning"}
_SEVERITY = {
    "error": SEVERITY_ERROR,
    "warning": SEVERITY_WARNING,
    "note": SEVERITY_WARNING,
}
_SUPPRESSION_KIND = {"pragma": "inSource", "baseline": "external"}
_SUPPRESSED_BY = {v: k for k, v in _SUPPRESSION_KIND.items()}


def to_sarif(
    findings: Iterable[Finding], suppressed: Iterable[Finding] = ()
) -> dict:
    """Render findings as a SARIF 2.1.0 document (a plain dict)."""
    findings = list(findings)
    suppressed = list(suppressed)
    used_codes = sorted({f.code for f in findings + suppressed})
    rule_index = {code: i for i, code in enumerate(used_codes)}
    rules = []
    for code in used_codes:
        rule = RULES.get(code)
        rules.append(
            {
                "id": code,
                "name": rule.name if rule else "parse-error",
                "shortDescription": {
                    "text": rule.summary if rule else "file does not parse"
                },
                "defaultConfiguration": {
                    "level": _LEVEL.get(
                        rule.severity if rule else SEVERITY_ERROR, "error"
                    )
                },
            }
        )

    results = []
    for f in findings + suppressed:
        res: dict = {
            "ruleId": f.code,
            "ruleIndex": rule_index[f.code],
            "level": _LEVEL.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {FINGERPRINT_KEY: f.fingerprint()},
        }
        props: dict = {}
        if f.symbol:
            props["symbol"] = f.symbol
        if f.chain:
            props["chain"] = f.chain
        if props:
            res["properties"] = props
        if f.suppressed_by:
            res["suppressions"] = [
                {
                    "kind": _SUPPRESSION_KIND.get(
                        f.suppressed_by, "external"
                    )
                }
            ]
        results.append(res)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def from_sarif(doc: dict) -> list[Finding]:
    """Reconstruct findings from a SARIF document (inverse of export)."""
    out: list[Finding] = []
    for run in doc.get("runs", ()):
        for res in run.get("results", ()):
            loc = (res.get("locations") or [{}])[0].get("physicalLocation", {})
            region = loc.get("region", {})
            props = res.get("properties", {})
            suppressions = res.get("suppressions", ())
            suppressed_by = ""
            if suppressions:
                suppressed_by = _SUPPRESSED_BY.get(
                    suppressions[0].get("kind", "external"), "baseline"
                )
            out.append(
                Finding(
                    code=res.get("ruleId", ""),
                    severity=_SEVERITY.get(res.get("level", "error"),
                                           SEVERITY_ERROR),
                    path=loc.get("artifactLocation", {}).get("uri", ""),
                    line=int(region.get("startLine", 1)),
                    col=int(region.get("startColumn", 1)),
                    message=res.get("message", {}).get("text", ""),
                    symbol=str(props.get("symbol", "")),
                    chain=str(props.get("chain", "")),
                    suppressed_by=suppressed_by,
                )
            )
    return out


def write_sarif(
    path: str | Path,
    findings: Iterable[Finding],
    suppressed: Iterable[Finding] = (),
) -> None:
    doc = to_sarif(findings, suppressed)
    Path(path).write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
