"""``repro trace``: record a run with full telemetry."""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro import obs
from repro.analysis.reporting import render_phase_breakdown
from repro.baselines.sbbc import sbbc_engine
from repro.cli.common import (
    TRACEABLE,
    _load_graph_arg,
    add_logging_flags,
    log,
    setup_logging,
)
from repro.cluster.model import ClusterModel
from repro.core.mrbc import mrbc_engine
from repro.core.sampling import sample_sources


def trace_main(argv: list[str]) -> int:
    """``repro trace <algo>``: record a run with full telemetry.

    Writes ``events.jsonl`` (spans, per-round samples, metric snapshots)
    and ``manifest.json`` (versioned run manifest with per-phase totals)
    into ``--out``, then prints the per-phase computation/communication
    breakdown — the Figure 2 split — derived from the manifest.
    """
    p = argparse.ArgumentParser(
        prog="repro trace",
        description="Run an engine algorithm with telemetry recording on",
    )
    p.add_argument("algorithm", choices=TRACEABLE,
                   help="engine algorithm to trace")
    p.add_argument("--graph", required=True, metavar="SPEC",
                   help="edge-list file, or generator spec "
                        "(rmat:scale:ef | grid:r:c | webcrawl:core:tails | er:n:deg)")
    p.add_argument("--sources", "-k", type=int, default=None,
                   help="number of sampled sources (default: all vertices)")
    p.add_argument("--hosts", type=int, default=8, help="simulated hosts")
    p.add_argument("--batch", type=int, default=16, help="MRBC batch size")
    p.add_argument("--seed", type=int, default=0, help="sampling seed")
    p.add_argument("--out", "-o", default="trace-out", metavar="DIR",
                   help="output directory for events.jsonl + manifest.json")
    p.add_argument("--format", choices=("table", "json"), default="table",
                   help="phase breakdown output format (default: table)")
    p.add_argument("--chrome", metavar="PATH", default=None,
                   help="also export a Chrome trace-event file "
                        "(open at https://ui.perfetto.dev)")
    p.add_argument("--stragglers", action="store_true",
                   help="also print per-phase straggler/critical-path attribution")
    p.add_argument("--by", choices=("time", "bytes"), default="time",
                   help="straggler attribution metric: model-bound time "
                        "or byte volume (default: time)")
    add_logging_flags(p)
    args = p.parse_args(argv)
    setup_logging(args.verbose, args.quiet)

    g = _load_graph_arg(args.graph)
    log.info("graph: %s", g)
    if args.sources is None:
        sources = np.arange(g.num_vertices, dtype=np.int64)
    else:
        sources = sample_sources(g, args.sources, seed=args.seed)
    model = ClusterModel(args.hosts)
    os.makedirs(args.out, exist_ok=True)
    events_path = os.path.join(args.out, "events.jsonl")
    manifest_path = os.path.join(args.out, "manifest.json")

    sink = obs.FileSink(events_path)
    ledger = obs.CommLedger()
    rledger = obs.RoundLedger()
    with obs.session(sink, model=model, comm=ledger, rounds=rledger) as tele:
        with tele.span(
            f"run:{args.algorithm}",
            kind="run",
            algorithm=args.algorithm,
            graph=args.graph,
            hosts=args.hosts,
            sources=int(sources.size),
        ):
            if args.algorithm == "sbbc":
                res = sbbc_engine(g, sources=sources, num_hosts=args.hosts)
            else:
                res = mrbc_engine(
                    g,
                    sources=sources,
                    batch_size=args.batch,
                    num_hosts=args.hosts,
                )
        model.time_by_phase(res.run)  # emits per-phase sim_time events

    man = obs.build_manifest(
        args.algorithm,
        res.run,
        model,
        ledger=ledger,
        rounds=rledger,
        graph_spec=args.graph,
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        num_hosts=args.hosts,
        num_sources=int(sources.size),
        batch_size=args.batch if args.algorithm == "mrbc" else None,
        partition_policy="cvc",
        seed=args.seed,
    )
    obs.write_manifest(man, manifest_path)
    log.info("wrote %d events to %s", sink.events_written, events_path)
    log.info("wrote manifest to %s", manifest_path)
    if args.chrome:
        doc = obs.export_chrome_trace(events_path, args.chrome)
        log.info(
            "wrote Chrome trace (%d events) to %s — open at "
            "https://ui.perfetto.dev",
            len(doc["traceEvents"]), args.chrome,
        )
    if args.format == "json":
        from repro.analysis.reporting import phase_breakdown_dict

        doc = phase_breakdown_dict(man.to_dict())
        if args.stragglers:
            from repro.analysis.tracediff import phase_stragglers

            doc["stragglers"] = [
                s.to_dict()
                for s in phase_stragglers(
                    obs.read_events(events_path), by=args.by
                )
            ]
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_phase_breakdown(man.to_dict()))
        if args.stragglers:
            from repro.analysis.tracediff import phase_stragglers, render_stragglers

            print(render_stragglers(
                phase_stragglers(obs.read_events(events_path), by=args.by)
            ))
    return 0
