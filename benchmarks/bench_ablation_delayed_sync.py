"""Ablation: the delayed-synchronization optimization (paper §4.3).

"This delayed synchronization reduces the number of messages and
communication volume significantly."  We run MRBC with the optimization on
(labels reduced once, at the round the pipelining schedule proves them
final) and off (every updated candidate reduced every round) and compare
label traffic and volume.  BC output must be identical.
"""

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.core.mrbc import mrbc_engine
from repro.graph.suite import load_suite_graph

from conftest import COLLECTOR, batch_for, hosts_for, partition_for, simulated, sources_for

HEADERS = [
    "graph",
    "mode",
    "items synced",
    "volume (B)",
    "comm (s)",
    "volume reduction",
]

GRAPHS = ("livejournal", "gsh15", "road-europe")


@pytest.mark.parametrize("name", GRAPHS)
def test_delayed_sync_reduces_traffic(name, benchmark):
    g = load_suite_graph(name)
    H = hosts_for(name)
    pg = partition_for(name, H)
    srcs = sources_for(name)[:16]
    k = batch_for(name)

    def run_pair():
        delayed = mrbc_engine(g, sources=srcs, batch_size=k, partition=pg)
        eager = mrbc_engine(
            g, sources=srcs, batch_size=k, partition=pg, delayed_sync=False
        )
        return delayed, eager

    delayed, eager = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    # Identical output — the optimization is purely about communication.
    assert np.allclose(delayed.bc, eager.bc)
    ref = brandes_bc(g, sources=srcs)
    assert np.allclose(delayed.bc, ref)

    # "significantly" fewer messages and lower volume — strictly so on
    # power-law/web-crawl shapes where candidates improve repeatedly; on
    # the road grid most labels update exactly once, so the two modes
    # legitimately coincide.
    assert delayed.run.total_items_synced <= eager.run.total_items_synced
    assert delayed.run.total_bytes <= eager.run.total_bytes
    if name != "road-europe":
        assert delayed.run.total_items_synced < eager.run.total_items_synced
        assert delayed.run.total_bytes < eager.run.total_bytes
    reduction = eager.run.total_bytes / delayed.run.total_bytes

    for mode, res in (("delayed", delayed), ("eager", eager)):
        COLLECTOR.add(
            "Ablation: delayed synchronization (§4.3)",
            HEADERS,
            [
                name,
                mode,
                res.run.total_items_synced,
                res.run.total_bytes,
                f"{simulated(res.run, H).communication:.4f}",
                f"{reduction:.2f}x" if mode == "delayed" else "",
            ],
        )
