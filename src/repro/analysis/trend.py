"""Cross-snapshot benchmark trajectory (``repro trend``).

``repro bench`` leaves one ``BENCH_<sha12>.json`` snapshot per commit at
the repo root; ``repro bench --compare`` gates one snapshot against one
baseline.  This module reads the *whole committed series* and charts the
trajectory: per case, the wall-clock median and the deterministic /
comm-ledger / round-ledger counts across snapshots ordered by commit
lineage (``git rev-list`` position of each snapshot's ``git_sha``, with
``created_unix`` as the fallback for snapshots whose commit is unknown
to the local history).

Snapshots are heterogeneous by design — suites grew over time, the
``comm`` and ``rounds`` sections appeared mid-series — so the trend is
grouped per *case name*: a case contributes one point per snapshot that
ran it, and count columns are shown from the first snapshot that carried
them.  Between consecutive points of the same case the step is
classified:

- any gated deterministic / comm / rounds count change is a **change**
  (the behavioural drift ``--compare`` would have flagged at the time);
- a wall-clock median move beyond the noise budget (same rule as
  :func:`repro.obs.bench.compare_bench`: ``threshold × max(IQRs,
  floor)``) is a **regression** or **improvement**;
- anything else is steady.

Wall medians across snapshots come from whatever machine ran them;
points whose environment fingerprint differs from the previous point are
marked so a "regression" across a machine swap is not over-read.
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
from dataclasses import dataclass, field
from typing import Any

from repro.obs.bench import (
    GATED_COMM_COUNTS,
    GATED_COUNTS,
    GATED_ROUND_COUNTS,
    load_bench,
    repo_root,
)

#: Same noise rule as ``compare_bench``: a wall move must exceed
#: ``threshold × max(IQR_prev, IQR_cur, floor)`` to be a trend step.
WALL_THRESHOLD = 3.0
WALL_FLOOR_S = 0.005


@dataclass
class TrendPoint:
    """One case × snapshot observation."""

    sha: str  #: the snapshot's full git SHA (or "nogit")
    order: int  #: lineage position, 0 = oldest
    suite: str
    wall_median_s: float | None
    wall_iqr_s: float | None
    #: Columnar-tier speedup over the dict twin in the same snapshot
    #: (``@array`` cases from ``repro bench --plane both`` only).
    speedup_vs_dict: float | None = None
    deterministic: dict[str, Any] = field(default_factory=dict)
    comm: dict[str, Any] | None = None
    rounds: dict[str, Any] | None = None
    environment: dict[str, str] = field(default_factory=dict)
    #: Step classification vs the previous point of the same case:
    #: "first" | "steady" | "change" | "regression" | "improvement".
    step: str = "first"
    #: Human-readable step details (which counts moved, by how much).
    deltas: list[str] = field(default_factory=list)
    env_changed: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "sha": self.sha,
            "order": self.order,
            "suite": self.suite,
            "wall_median_s": self.wall_median_s,
            "wall_iqr_s": self.wall_iqr_s,
            "speedup_vs_dict": self.speedup_vs_dict,
            "deterministic": self.deterministic,
            "comm": self.comm,
            "rounds": self.rounds,
            "step": self.step,
            "deltas": self.deltas,
            "env_changed": self.env_changed,
        }


@dataclass
class TrendReport:
    """The full trajectory: snapshots in lineage order, cases over them."""

    snapshots: list[dict[str, Any]] = field(default_factory=list)
    cases: dict[str, list[TrendPoint]] = field(default_factory=dict)

    @property
    def regressions(self) -> list[tuple[str, TrendPoint]]:
        return [
            (name, pt)
            for name, pts in sorted(self.cases.items())
            for pt in pts
            if pt.step == "regression"
        ]

    @property
    def changes(self) -> list[tuple[str, TrendPoint]]:
        return [
            (name, pt)
            for name, pts in sorted(self.cases.items())
            for pt in pts
            if pt.step == "change"
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": 1,
            "snapshots": self.snapshots,
            "cases": {
                name: [pt.to_dict() for pt in pts]
                for name, pts in sorted(self.cases.items())
            },
            "regressions": len(self.regressions),
            "changes": len(self.changes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def find_snapshots(root: str | None = None) -> list[str]:
    """Committed ``BENCH_*.json`` files at the repo root (not baselines)."""
    root = root or repo_root()
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def _rev_list_order(root: str) -> dict[str, int]:
    """SHA → position in first-parent history, 0 = oldest."""
    try:
        out = subprocess.run(
            ["git", "rev-list", "--first-parent", "--reverse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return {}
    if out.returncode != 0:
        return {}
    return {sha: i for i, sha in enumerate(out.stdout.split())}


def order_snapshots(
    docs: list[tuple[str, dict[str, Any]]], root: str | None = None
) -> list[tuple[str, dict[str, Any]]]:
    """Sort (path, doc) pairs by commit lineage, oldest first.

    Snapshots whose ``git_sha`` is in the local history sort by their
    ``git rev-list`` position; unknown-SHA snapshots fall back to
    ``created_unix`` and interleave by timestamp rank against the known
    ones' timestamps (a snapshot from a rebased-away commit still lands
    roughly where it was taken).
    """
    root = root or repo_root()
    positions = _rev_list_order(root)

    def key(item: tuple[str, dict[str, Any]]) -> tuple[int, float]:
        _path, doc = item
        sha = doc.get("git_sha") or ""
        created = float(doc.get("created_unix") or 0.0)
        if sha in positions:
            return (positions[sha], created)
        # Unknown commit: order purely by timestamp, after any known
        # commit with an earlier timestamp (rank via a large base so the
        # two keyspaces cannot collide on the int component).
        return (len(positions), created)

    return sorted(docs, key=key)


def _fmt_delta(field_name: str, old: Any, new: Any) -> str:
    return f"{field_name}: {old} -> {new}"


def _classify(
    prev: TrendPoint,
    cur: TrendPoint,
    wall_threshold: float,
    wall_floor_s: float,
) -> None:
    """Stamp ``cur.step``/``cur.deltas`` from the previous point."""
    deltas: list[str] = []
    for f in GATED_COUNTS:
        if prev.deterministic.get(f) != cur.deterministic.get(f):
            deltas.append(
                _fmt_delta(f, prev.deterministic.get(f), cur.deterministic.get(f))
            )
    if prev.comm is not None and cur.comm is not None:
        for f in GATED_COMM_COUNTS:
            if prev.comm.get(f) != cur.comm.get(f):
                deltas.append(_fmt_delta(f"comm.{f}", prev.comm.get(f), cur.comm.get(f)))
    if prev.rounds is not None and cur.rounds is not None:
        for f in GATED_ROUND_COUNTS:
            if prev.rounds.get(f) != cur.rounds.get(f):
                deltas.append(
                    _fmt_delta(f"rounds.{f}", prev.rounds.get(f), cur.rounds.get(f))
                )
    cur.env_changed = prev.environment != cur.environment
    if deltas:
        cur.step = "change"
        cur.deltas = deltas
        return
    pm, cm = prev.wall_median_s, cur.wall_median_s
    if pm is None or cm is None:
        cur.step = "steady"
        return
    floor = max(wall_floor_s, 0.1 * pm)
    noise = max(prev.wall_iqr_s or 0.0, cur.wall_iqr_s or 0.0, floor)
    budget = wall_threshold * noise
    if cm > pm + budget:
        cur.step = "regression"
        cur.deltas = [f"wall median {pm:.4f}s -> {cm:.4f}s"]
    elif cm < pm - budget:
        cur.step = "improvement"
        cur.deltas = [f"wall median {pm:.4f}s -> {cm:.4f}s"]
    else:
        cur.step = "steady"


def build_trend(
    paths: list[str] | None = None,
    root: str | None = None,
    wall_threshold: float = WALL_THRESHOLD,
    wall_floor_s: float = WALL_FLOOR_S,
) -> TrendReport:
    """Load, order, and classify the committed snapshot series."""
    root = root or repo_root()
    if paths is None:
        paths = find_snapshots(root)
    docs = [(p, load_bench(p)) for p in paths]
    ordered = order_snapshots(docs, root)
    report = TrendReport()
    for i, (path, doc) in enumerate(ordered):
        sha = doc.get("git_sha") or "nogit"
        report.snapshots.append(
            {
                "path": os.path.basename(path),
                "sha": sha,
                "suite": doc.get("suite", "?"),
                "order": i,
                "cases": len(doc.get("cases", [])),
                "created_unix": doc.get("created_unix"),
            }
        )
        for case in doc.get("cases", []):
            wall = case.get("wall_s", {})
            pt = TrendPoint(
                sha=sha,
                order=i,
                suite=doc.get("suite", "?"),
                wall_median_s=wall.get("median"),
                wall_iqr_s=wall.get("iqr"),
                speedup_vs_dict=wall.get("speedup_vs_dict"),
                deterministic=case.get("deterministic", {}),
                comm=case.get("comm"),
                rounds=case.get("rounds"),
                environment=doc.get("environment", {}),
            )
            series = report.cases.setdefault(case["name"], [])
            if series:
                _classify(series[-1], pt, wall_threshold, wall_floor_s)
            series.append(pt)
    return report


def render_trend(report: TrendReport) -> str:
    """Text tables: the snapshot series, then one row per case × point."""
    from repro.analysis.reporting import format_table

    lines = [
        format_table(
            ["order", "snapshot", "suite", "cases", "sha"],
            [
                [s["order"], s["path"], s["suite"], s["cases"], s["sha"][:12]]
                for s in report.snapshots
            ],
            title="bench snapshots (commit-lineage order)",
        )
    ]
    rows: list[list[object]] = []
    for name, pts in sorted(report.cases.items()):
        for pt in pts:
            wall = (
                f"{pt.wall_median_s:.4f}s" if pt.wall_median_s is not None else "-"
            )
            if pt.speedup_vs_dict is not None:
                wall += f" ({pt.speedup_vs_dict:.2f}x vs dict)"
            rounds = pt.rounds.get("total") if pt.rounds else "-"
            comm = pt.comm.get("payload_bytes") if pt.comm else "-"
            step = pt.step + (" (env changed)" if pt.env_changed else "")
            rows.append(
                [
                    name,
                    pt.sha[:12],
                    wall,
                    pt.deterministic.get("rounds", "-"),
                    comm,
                    rounds,
                    step,
                    "; ".join(pt.deltas) or "-",
                ]
            )
    lines.append(
        format_table(
            ["case", "sha", "wall median", "engine rounds", "comm bytes",
             "ledger rounds", "step", "detail"],
            rows,
            title="per-case trajectory",
        )
    )
    n_reg, n_chg = len(report.regressions), len(report.changes)
    lines.append(
        f"trend: {len(report.snapshots)} snapshots, "
        f"{len(report.cases)} cases, "
        f"{n_chg} count change(s), {n_reg} wall regression(s)"
    )
    return "\n".join(lines)
