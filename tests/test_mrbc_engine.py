"""Tests for MRBC on the simulated D-Galois engine (paper §4)."""

import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.core.mrbc import MasterVertexState, mrbc_engine
from repro.core.mrbc_congest import mrbc_congest
from repro.engine.partition import partition_graph
from tests.conftest import some_sources


class TestBCCorrectness:
    @pytest.mark.parametrize(
        "fixture", ["diamond", "er_graph", "powerlaw_graph", "road_graph", "webcrawl_graph"]
    )
    @pytest.mark.parametrize("H", [1, 4])
    def test_matches_brandes(self, fixture, H, request):
        g = request.getfixturevalue(fixture)
        srcs = some_sources(g)
        res = mrbc_engine(g, sources=srcs, batch_size=4, num_hosts=H)
        assert np.allclose(res.bc, brandes_bc(g, sources=srcs))

    @pytest.mark.parametrize("policy", ["oec", "iec", "cvc", "random"])
    def test_all_partition_policies(self, er_graph, policy):
        srcs = some_sources(er_graph)
        res = mrbc_engine(
            er_graph, sources=srcs, batch_size=8, num_hosts=4, policy=policy
        )
        assert np.allclose(res.bc, brandes_bc(er_graph, sources=srcs))

    @pytest.mark.parametrize("k", [1, 2, 3, 8])
    def test_batch_size_does_not_change_result(self, er_graph, k):
        srcs = some_sources(er_graph, 6)
        res = mrbc_engine(er_graph, sources=srcs, batch_size=k, num_hosts=4)
        assert np.allclose(res.bc, brandes_bc(er_graph, sources=srcs))

    def test_all_sources_exact_bc(self, er_graph):
        res = mrbc_engine(er_graph, batch_size=16, num_hosts=2)
        assert np.allclose(res.bc, brandes_bc(er_graph))

    def test_sampled_sources_via_num_sources(self, er_graph):
        res = mrbc_engine(er_graph, num_sources=5, batch_size=5, seed=3)
        assert res.sources.size == 5
        assert np.allclose(res.bc, brandes_bc(er_graph, sources=res.sources))

    def test_distances_and_sigma(self, er_graph):
        srcs = some_sources(er_graph, 4)
        res = mrbc_engine(er_graph, sources=srcs, batch_size=4, num_hosts=4)
        ref = mrbc_congest(er_graph, sources=srcs)
        assert np.array_equal(res.dist, ref.dist)
        assert np.allclose(res.sigma, ref.sigma)


class TestScheduleEquivalence:
    """The engine must execute the CONGEST round schedule (Lemma 8)."""

    @pytest.mark.parametrize("fixture", ["er_graph", "road_graph", "webcrawl_graph"])
    def test_rounds_match_congest_within_detector_slack(self, fixture, request):
        g = request.getfixturevalue(fixture)
        srcs = some_sources(g, 6)
        eng = mrbc_engine(g, sources=srcs, batch_size=len(srcs), num_hosts=4)
        con = mrbc_congest(g, sources=srcs)
        assert abs(eng.forward_rounds - con.forward_rounds) <= 1
        assert abs(eng.backward_rounds - con.backward_rounds) <= 1

    def test_forward_round_bound(self, webcrawl_graph):
        g = webcrawl_graph
        srcs = some_sources(g, 8)
        res = mrbc_engine(g, sources=srcs, batch_size=len(srcs), num_hosts=4)
        H = int(res.dist.max())
        assert res.forward_rounds <= len(srcs) + H + 1

    def test_larger_batches_reduce_rounds(self, webcrawl_graph):
        """Figure 1's mechanism: fewer batches ⇒ fewer total rounds."""
        g = webcrawl_graph
        srcs = some_sources(g, 8)
        small = mrbc_engine(g, sources=srcs, batch_size=2, num_hosts=4)
        large = mrbc_engine(g, sources=srcs, batch_size=8, num_hosts=4)
        assert large.total_rounds < small.total_rounds
        assert large.rounds_per_source() < small.rounds_per_source()


class TestDelayedSync:
    def test_each_pair_broadcast_once(self, er_graph):
        """Delayed sync: one forward broadcast per reached (v, s) pair —
        verified indirectly: eager mode strictly inflates traffic."""
        srcs = some_sources(er_graph, 6)
        pg = partition_graph(er_graph, 4, "cvc")
        delayed = mrbc_engine(
            er_graph, sources=srcs, batch_size=6, partition=pg, delayed_sync=True
        )
        eager = mrbc_engine(
            er_graph, sources=srcs, batch_size=6, partition=pg, delayed_sync=False
        )
        assert np.allclose(delayed.bc, eager.bc)
        assert delayed.run.total_bytes < eager.run.total_bytes
        assert delayed.run.total_items_synced < eager.run.total_items_synced


class TestMasterVertexState:
    def test_source_seeding_fires_round_one(self):
        ms = MasterVertexState()
        ms.initialize_source(3)
        assert ms.next_fire(1) == (0, 3, 1.0)
        assert ms.all_fired()

    def test_contributions_aggregate_across_hosts(self):
        ms = MasterVertexState()
        ms.apply_contribution(0, host=1, d=2, sigma=3.0)
        ms.apply_contribution(0, host=2, d=2, sigma=4.0)
        assert ms.best[0] == (2, 7.0)

    def test_shorter_distance_replaces(self):
        ms = MasterVertexState()
        ms.apply_contribution(0, host=1, d=3, sigma=5.0)
        ms.apply_contribution(0, host=2, d=2, sigma=1.0)
        assert ms.best[0] == (2, 1.0)
        assert ms.entries == [(2, 0)]

    def test_stale_host_report_ignored(self):
        ms = MasterVertexState()
        ms.apply_contribution(0, host=1, d=2, sigma=1.0)
        ms.apply_contribution(0, host=1, d=5, sigma=9.0)
        assert ms.best[0] == (2, 1.0)

    def test_fire_schedule_positions(self):
        ms = MasterVertexState()
        ms.apply_contribution(0, host=1, d=1, sigma=1.0)  # pos 1 → round 2
        ms.apply_contribution(1, host=1, d=1, sigma=1.0)  # pos 2 → round 3
        assert ms.next_fire(1) is None
        assert ms.next_fire(2) == (1, 0, 1.0)
        assert ms.next_fire(3) == (1, 1, 1.0)
        assert ms.tau == {0: 2, 1: 3}


class TestInputValidation:
    def test_empty_sources_rejected(self, er_graph):
        with pytest.raises(ValueError):
            mrbc_engine(er_graph, sources=[])

    def test_foreign_partition_rejected(self, er_graph, road_graph):
        pg = partition_graph(road_graph, 2, "oec")
        with pytest.raises(ValueError):
            mrbc_engine(er_graph, sources=[0], partition=pg)

    def test_stats_populated(self, er_graph):
        res = mrbc_engine(er_graph, sources=[0, 1], batch_size=2, num_hosts=4)
        assert res.run.num_rounds == res.total_rounds
        assert res.run.total_bytes > 0
        assert res.run.load_imbalance() >= 1.0
